#!/usr/bin/env python
"""Battlefield scenario: an event-driven squad under reactive jamming.

A 10-node squad deploys in a 600 x 600 m area with 2 captured radios.
Every node runs the *full* JR-SND protocol on the discrete-event kernel:
real pre-distributed spread codes, ECC-framed messages, pairwise
ID-based keys, MACs, signed M-NDP chains, and session spread-code
derivation — with a reactive jammer that knows the captured radios'
codes and attacks every pool-code transmission it can identify.

Shows which pairs discovered each other directly, which needed the
multi-hop protocol, and which stayed dark.

Usage:
    python examples/battlefield_discovery.py [--seed S] [--nu H]
"""

import argparse

from repro import JRSNDConfig
from repro.adversary.jammer import JammerStrategy
from repro.experiments.scenarios import build_event_network


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--nu", type=int, default=3,
                        help="M-NDP hop budget")
    args = parser.parse_args()

    config = JRSNDConfig(
        n_nodes=10,
        codes_per_node=4,
        share_count=4,
        n_compromised=2,
        field_width=600.0,
        field_height=600.0,
        tx_range=300.0,
        rho=1e-9,  # modest receivers: keeps lambda event-simulatable
        nu=args.nu,
    )
    net = build_event_network(
        config, seed=args.seed, jammer_strategy=JammerStrategy.REACTIVE
    )

    captured = sorted(net.compromise.nodes)
    print(f"Squad of {config.n_nodes}; radios of nodes {captured} "
          f"captured -> {net.compromise.n_codes} of "
          f"{config.pool_size} pool codes compromised")

    physical = set(net.node_pairs_in_range())
    print(f"{len(physical)} physical-neighbor pairs in range\n")

    print("Phase 1: D-NDP (direct discovery under jamming)...")
    for node in net.nodes:
        node.initiate_dndp()
    net.simulator.run(until=60.0)
    direct = set(net.logical_pairs())
    print(f"  {len(direct)}/{len(physical)} pairs discovered directly; "
          f"jammer fired {net.jammer.effective} effective jams")

    print(f"Phase 2: M-NDP (multi-hop recovery, nu = {args.nu})...")
    start = net.simulator.now
    for node in net.nodes:
        node.initiate_mndp()
    net.simulator.run(until=start + 300.0)
    logical = net.logical_pairs()
    recovered = logical - direct
    dark = physical - logical
    print(f"  {len(recovered)} pairs recovered via relays; "
          f"{len(dark)} still dark\n")

    print("Pair-by-pair outcome:")
    for a, b in sorted(physical):
        shared = net.assignment.shared_codes(a, b)
        safe = [c for c in shared if not net.compromise.knows_code(c)]
        if (a, b) in direct:
            how = "D-NDP"
        elif (a, b) in logical:
            how = "M-NDP"
        else:
            how = "DARK"
        print(f"  {a:>2}-{b:<2}  shared codes {len(shared)} "
              f"(safe {len(safe)})  -> {how}")

    latencies = net.trace.samples("dndp.latency")
    if latencies:
        print(f"\nMean D-NDP handshake latency: "
              f"{sum(latencies)/len(latencies):.3f} s over "
              f"{len(latencies)} handshakes")


if __name__ == "__main__":
    main()

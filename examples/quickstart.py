#!/usr/bin/env python
"""Quickstart: reproduce the paper's headline numbers in one script.

Runs a Table I-default Monte Carlo field snapshot (2000 nodes,
5000 x 5000 m, q = 20 compromised, reactive jamming) and compares the
measured discovery probabilities and latencies against the closed forms
of Theorems 1-4.

Usage:
    python examples/quickstart.py [--runs N] [--seed S]
"""

import argparse

from repro import JRSNDConfig, NetworkExperiment
from repro.adversary.jammer import JammerStrategy
from repro.analysis.combined import combined_latency
from repro.analysis.dndp_theory import (
    dndp_expected_latency,
    dndp_probability_bounds,
)
from repro.analysis.mndp_theory import (
    mndp_expected_latency,
    mndp_two_hop_bound,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2011)
    args = parser.parse_args()

    config = JRSNDConfig()  # the exact Table I defaults
    print("JR-SND quickstart — Table I defaults")
    print(f"  n={config.n_nodes}  m={config.codes_per_node}  "
          f"l={config.share_count}  q={config.n_compromised}  "
          f"N={config.code_length}  nu={config.nu}")
    print(f"  code pool s = {config.pool_size}, "
          f"expected degree g = {config.expected_degree:.1f}")

    print(f"\nRunning {args.runs} field snapshot(s) under reactive "
          "jamming (the paper's worst case)...")
    experiment = NetworkExperiment(
        config, seed=args.seed, strategy=JammerStrategy.REACTIVE
    )
    result = experiment.run(args.runs)

    p_d = result.discovery_probability("dndp")
    p_m = result.discovery_probability("mndp")
    p_j = result.discovery_probability("jrsnd")
    low, high = dndp_probability_bounds(config, config.n_compromised)

    print("\nDiscovery probability (measured vs theory)")
    print(f"  D-NDP   P = {p_d:.4f}   Theorem 1 bounds "
          f"[P^- = {low:.4f}, P^+ = {high:.4f}]")
    print(f"  M-NDP   P = {p_m:.4f}   Theorem 3 (2-hop, independence "
          f"bound) >= {mndp_two_hop_bound(low, result.mean_degree()):.4f}")
    print(f"  JR-SND  P = {p_j:.4f}   (= P_D + (1 - P_D) P_M)")

    print("\nLatency (Theorems 2 and 4)")
    print(f"  D-NDP   T = {dndp_expected_latency(config):.3f} s")
    print(f"  M-NDP   T = {mndp_expected_latency(config):.3f} s  (nu = 2)")
    print(f"  JR-SND  T = {combined_latency(config):.3f} s  "
          "(paper: under 2 s at m = 100)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Mobility scenario: periodic discovery with neighbor expiry.

The paper's motivation: due to node mobility, neighbor discovery must
run *periodically*, and a node that hears nothing from a logical
neighbor for a threshold time assumes it moved away and stops
monitoring its code.  This example moves a squad with the
random-waypoint model in discrete epochs; each epoch the nodes expire
stale neighbors, re-run D-NDP + M-NDP, and we report how well the
logical graph tracks the changing physical one.

Usage:
    python examples/mobility_rounds.py [--epochs E] [--seed S]
"""

import argparse

from repro import JRSNDConfig
from repro.experiments.scenarios import build_event_network
from repro.sim.field import RectangularField
from repro.sim.mobility import RandomWaypointModel
from repro.utils.rng import derive_rng


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=12)
    args = parser.parse_args()

    config = JRSNDConfig(
        n_nodes=8,
        codes_per_node=3,
        share_count=4,
        n_compromised=0,
        field_width=800.0,
        field_height=800.0,
        tx_range=300.0,
        rho=1e-9,
        nu=3,
    )
    field = RectangularField(
        config.field_width, config.field_height, config.tx_range
    )
    mobility = RandomWaypointModel(
        field,
        config.n_nodes,
        speed_range=(20.0, 40.0),  # fast movers: links churn per epoch
        pause_time=0.0,
        rng=derive_rng(args.seed, "mobility"),
    )
    net = build_event_network(
        config, seed=args.seed, positions=mobility.positions_at(0.0)
    )

    epoch_gap = 30.0  # seconds of movement between discovery rounds
    print(f"{config.n_nodes} nodes, random waypoint 20-40 m/s, "
          f"{args.epochs} discovery epochs {epoch_gap:.0f} s apart\n")

    for epoch in range(args.epochs):
        wall = epoch * epoch_gap
        # Teleport everyone to their trajectory position for this epoch.
        for index, node in enumerate(net.nodes):
            node.position = mobility.position(index, wall)
        physical = set(net.node_pairs_in_range())

        # Expire neighbors not heard from since the last epoch.
        expired = sum(
            len(node.expire_stale_neighbors(threshold=epoch_gap / 2))
            for node in net.nodes
        ) // 2

        for node in net.nodes:
            node.initiate_dndp()
        net.simulator.run(until=net.simulator.now + 40.0)
        for node in net.nodes:
            node.initiate_mndp()
        net.simulator.run(until=net.simulator.now + 200.0)

        logical = net.logical_pairs()
        tracked = logical & physical
        stale = logical - physical  # moved-away pairs not yet expired
        coverage = len(tracked) / len(physical) if physical else 1.0
        print(f"epoch {epoch}: physical={len(physical):>2}  "
              f"tracked={len(tracked):>2} ({coverage:5.0%})  "
              f"stale={len(stale):>2}  expired_before_round={expired:>2}")

    counters = net.trace.counters()
    print(f"\ntotals: D-NDP establishments "
          f"{counters.get('dndp.established', 0)}, "
          f"M-NDP {counters.get('mndp.established', 0)}, "
          f"expiries {counters.get('neighbors.expired', 0)}")


if __name__ == "__main__":
    main()

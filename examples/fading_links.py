#!/usr/bin/env python
"""Fading demo: JR-SND over a log-normal shadowing radio.

The paper (and the figure experiments) use the unit-disk model: two
nodes hear each other iff they are within 300 m.  Real links fade.
This example runs the same event-driven squad twice — once on the disk,
once with log-normal shadowing (the configured range becoming the
*median* range) — and shows how discovery changes: fading both breaks
some "guaranteed" close links and occasionally lets discovery succeed
past the nominal range.

Usage:
    python examples/fading_links.py [--sigma DB] [--seed S]
"""

import argparse

from repro import JRSNDConfig
from repro.experiments.scenarios import build_event_network
from repro.sim.field import RectangularField
from repro.sim.links import DiskLinkModel, LogNormalShadowingModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sigma", type=float, default=6.0,
                        help="shadowing std-dev in dB")
    parser.add_argument("--seed", type=int, default=9)
    args = parser.parse_args()

    config = JRSNDConfig(
        n_nodes=8,
        codes_per_node=3,
        share_count=4,
        n_compromised=0,
        field_width=900.0,
        field_height=900.0,
        tx_range=300.0,
        rho=1e-9,
        nu=3,
    )

    results = {}
    for label, model in (
        ("disk", DiskLinkModel(config.tx_range)),
        (
            f"shadowing σ={args.sigma} dB",
            LogNormalShadowingModel(
                config.tx_range, path_loss_exponent=3.0,
                sigma_db=args.sigma,
            ),
        ),
    ):
        net = build_event_network(config, seed=args.seed, link_model=model)
        for node in net.nodes:
            node.initiate_dndp()
        net.simulator.run(until=60.0)
        start = net.simulator.now
        for node in net.nodes:
            node.initiate_mndp()
        net.simulator.run(until=start + 200.0)
        results[label] = net

    field = RectangularField(
        config.field_width, config.field_height, config.tx_range
    )
    disk_net = results["disk"]
    positions = [n.position for n in disk_net.nodes]
    disk_pairs = set(field.neighbor_pairs(positions))

    print(f"{config.n_nodes} nodes, nominal range "
          f"{config.tx_range:.0f} m; {len(disk_pairs)} disk-range "
          "pairs\n")
    for label, net in results.items():
        logical = net.logical_pairs()
        inside = logical & disk_pairs
        beyond = logical - disk_pairs
        print(f"{label:24} discovered {len(logical):>2} pairs "
              f"({len(inside)} within nominal range, "
              f"{len(beyond)} beyond it)")
    print("\nUnder fading, border-distance links flicker: some "
          "nominal neighbors are lost, while occasionally a pair past "
          "300 m completes discovery — the disk model the paper uses "
          "is the σ → 0 limit.")


if __name__ == "__main__":
    main()

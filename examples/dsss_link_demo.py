#!/usr/bin/env python
"""Chip-level DSSS link demo (the physical layer of Section III).

Walks one HELLO message through the full physical pipeline with real
chips: ECC framing, spreading with a 512-chip code, a superposition
channel carrying noise + concurrent foreign traffic + a jammer, the
sliding-window synchronizer, threshold de-spreading, and Reed-Solomon
recovery of the jam-erased bits — then shows what happens when the
jammer knows the correct code.

Usage:
    python examples/dsss_link_demo.py [--seed S]
"""

import argparse

import numpy as np

from repro.dsss.channel import ChipChannel
from repro.dsss.frame import Frame, FrameCodec, MessageType
from repro.dsss.spread_code import CodePool
from repro.dsss.synchronizer import SlidingWindowSynchronizer
from repro.errors import DecodeError
from repro.utils.bitstring import bits_from_int, bits_to_int
from repro.utils.rng import derive_rng


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    rng = derive_rng(args.seed, "link-demo")

    pool = CodePool.generate(size=8, code_length=512, seed=args.seed)
    codec = FrameCodec(mu=1.0)
    sender_id = 0x2A7
    frame = Frame(MessageType.HELLO, bits_from_int(sender_id, 16))
    coded = codec.encode(frame)
    print(f"HELLO from node {sender_id:#x}: "
          f"{frame.plain_bits} plain bits -> {coded.size} coded bits "
          f"-> {coded.size * 512} chips at N = 512")

    # ------------------------------------------------------------------
    print("\n[1] Clean-ish channel: noise + foreign traffic + "
          "wrong-code jammer")
    channel = ChipChannel(noise_std=0.3)
    channel.add_message(coded, pool.code(0), offset=1500, label="hello")
    channel.add_message(
        rng.integers(0, 2, coded.size).astype(np.int8), pool.code(5),
        offset=0, label="foreign",
    )
    channel.add_jamming(pool.code(6), offset=1500, n_bits=coded.size,
                        rng=rng, amplitude=1.5, label="wrong-code jam")
    buffer = channel.render(rng=rng)
    print(f"    rendered {buffer.size} superposed chips")

    sync = SlidingWindowSynchronizer(
        pool.subset([0, 1, 2]), tau=0.15, message_bits=int(coded.size)
    )
    decoded = sync.scan_validated(
        buffer, lambda res: codec.decode(res.bits, payload_bits=16)
    )
    value = bits_to_int(decoded.payload)
    print(f"    receiver locked and decoded: type={decoded.message_type.name} "
          f"id={value:#x}  ({'OK' if value == sender_id else 'WRONG'})")

    # ------------------------------------------------------------------
    print("\n[2] Reactive jammer with the CORRECT code "
          "(covers the last 70% of the message)")
    channel = ChipChannel(noise_std=0.3)
    channel.add_message(coded, pool.code(0), offset=0)
    n_jam = int(coded.size * 0.7)
    channel.add_jamming(pool.code(0), offset=(coded.size - n_jam) * 512,
                        n_bits=n_jam, rng=rng, amplitude=2.0)
    buffer = channel.render(rng=rng)
    result = sync.scan(buffer)
    if result is None:
        print("    synchronizer could not even lock: message destroyed")
    else:
        erased = sum(1 for b in result.bits if b is None)
        print(f"    locked at chip {result.position}; {erased}/"
              f"{len(result.bits)} bits erased by the jam")
        try:
            codec.decode(result.bits, payload_bits=16)
            print("    decode unexpectedly succeeded")
        except DecodeError as exc:
            print(f"    Reed-Solomon gave up, as Theorem 1 assumes: {exc}")

    # ------------------------------------------------------------------
    print("\n[3] Same jam but only 30% of the message "
          "(below the mu/(1+mu) = 50% ECC tolerance)")
    channel = ChipChannel(noise_std=0.3)
    channel.add_message(coded, pool.code(0), offset=0)
    n_jam = int(coded.size * 0.3)
    channel.add_jamming(pool.code(0), offset=(coded.size - n_jam) * 512,
                        n_bits=n_jam, rng=rng)
    buffer = channel.render(rng=rng)
    decoded = sync.scan_validated(
        buffer, lambda res: codec.decode(res.bits, payload_bits=16)
    )
    if decoded is not None:
        print(f"    decoded id={bits_to_int(decoded.payload):#x}: the ECC "
              "absorbed the partial jam, as the protocol design relies on")
    else:
        print("    decode failed (unexpected at this jam fraction)")


if __name__ == "__main__":
    main()

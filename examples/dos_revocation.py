#!/usr/bin/env python
"""DoS resilience demo: the (l-1)*gamma revocation bound (Section V-D).

An adversary holding compromised spread codes floods fake
neighbor-discovery requests.  Without revocation every fake costs its
victims a signature verification forever; with the gamma-counter
defense, each compromised code is locally revoked by every holder on
its gamma-th invalid request, capping the total damage per code.

The script measures wasted verifications with and without the defense
and checks the paper's bound.

Usage:
    python examples/dos_revocation.py [--gamma G] [--flood N]
"""

import argparse

from repro.adversary.compromise import CompromiseModel
from repro.adversary.dos import DoSAttacker
from repro.predistribution.authority import PreDistributor
from repro.predistribution.revocation import RevocationList
from repro.utils.rng import derive_rng


def build_victims(assignment, gamma):
    return {
        node: RevocationList(codes, gamma)
        for node, codes in enumerate(assignment.node_codes)
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gamma", type=int, default=5)
    parser.add_argument("--flood", type=int, default=500,
                        help="fake requests per compromised code")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    n, m, l, q = 400, 10, 8, 4
    rng = derive_rng(args.seed, "dos-demo")
    distributor = PreDistributor(n, codes_per_node=m, share_count=l)
    assignment = distributor.assign(rng)
    compromise = CompromiseModel(assignment).compromise_random(q, rng)
    print(f"{n} nodes, {distributor.pool_size} pool codes, "
          f"{q} nodes captured -> {compromise.n_codes} codes compromised")

    attacker = DoSAttacker(sorted(compromise.codes))
    holders = {
        code: sorted(assignment.holders_of(code))
        for code in attacker.codes
    }

    print(f"\nFlooding {args.flood} fakes per compromised code...")
    undefended = attacker.flood(
        build_victims(assignment, gamma=10**9),  # effectively no defense
        holders, args.flood, derive_rng(args.seed, "flood-1"),
    )
    defended = attacker.flood(
        build_victims(assignment, gamma=args.gamma),
        holders, args.flood, derive_rng(args.seed, "flood-2"),
    )

    bound = l * args.gamma  # per code: every holder revokes on its gamma-th
    print(f"\n{'':26}{'no defense':>12}{'gamma=' + str(args.gamma):>12}")
    print(f"{'fakes injected':26}{undefended.injected:>12}"
          f"{defended.injected:>12}")
    print(f"{'wasted verifications':26}{undefended.verifications:>12}"
          f"{defended.verifications:>12}")
    print(f"{'worst single code':26}"
          f"{undefended.worst_code_verifications():>12}"
          f"{defended.worst_code_verifications():>12}")
    print(f"{'codes revoked':26}{undefended.revocations:>12}"
          f"{defended.revocations:>12}")

    assert defended.worst_code_verifications() <= bound, "bound violated!"
    saved = 1 - defended.verifications / undefended.verifications
    print(f"\nPer-code bound l*gamma = {bound} holds; the defense "
          f"eliminated {saved:.1%} of the wasted work.")
    print("A second flood would now cost the victims nothing: every "
          "compromised code is already revoked.")


if __name__ == "__main__":
    main()

"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-use-pep517 --no-build-isolation` uses this legacy
path; normal environments can use plain `pip install -e .`.
"""
from setuptools import setup

setup()

"""Flow analyses over the :class:`~repro.lint.graph.ProjectIndex`.

These are the interprocedural halves of the JRS008–JRS011 rules:
thread-target reachability inside a class (JRS008), fixpoint
propagation of pool-boundary parameters through helper functions
(JRS009), import-cycle detection via Tarjan's SCC algorithm (JRS010),
and taint of fresh-generator producers (JRS011).  Each analysis is a
pure function over the summaries — no AST access — so results are
reproducible from cached phase-1 data alone.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.lint.graph import (
    POOL_BOUNDARY_FUNCTIONS,
    POOL_BOUNDARY_KEYWORDS,
    POOL_BOUNDARY_METHODS,
    ClassSummary,
    FunctionSummary,
    ProjectIndex,
    RNG_CONSTRUCTORS,
)

__all__ = [
    "find_import_cycles",
    "reachable_methods",
    "tainted_boundary_params",
    "tainted_rng_producers",
]


def reachable_methods(
    cls: ClassSummary, roots: Sequence[str]
) -> FrozenSet[str]:
    """Methods of ``cls`` reachable from ``roots`` via self-calls.

    Used by JRS008 with the ``threading.Thread`` target methods as
    roots: everything in the returned set may execute on the spawned
    thread.  Roots that don't name a method of ``cls`` are ignored.
    """
    reachable: Set[str] = set()
    stack = [name for name in roots if cls.method(name) is not None]
    while stack:
        name = stack.pop()
        if name in reachable:
            continue
        reachable.add(name)
        method = cls.method(name)
        if method is None:
            continue
        for callee in method.self_calls:
            if callee not in reachable and cls.method(callee) is not None:
                stack.append(callee)
    return frozenset(reachable)


def tainted_boundary_params(
    index: ProjectIndex,
) -> Dict[str, FrozenSet[int]]:
    """Parameter positions that flow into pool boundaries, per function.

    Seeds: a function passes one of its own parameters directly at a
    pool boundary (positional 0 of a pool method such as ``submit`` /
    ``imap_unordered``, a boundary keyword like ``initializer=``, or
    any argument of ``run_parallel``).  Propagation: if helper ``h``'s
    parameter *i* is boundary-tainted and ``f`` passes its own
    parameter *j* at position *i* of a call to ``h``, then ``f``'s
    parameter *j* is boundary-tainted too.  The fixpoint over the
    project call graph is what lets JRS009 catch a lambda handed to a
    wrapper that only reaches ``pool.submit`` two hops later.
    """
    tainted: Dict[str, Set[int]] = {}

    def param_index(fn: FunctionSummary, name: str) -> int:
        try:
            return fn.params.index(name)
        except ValueError:
            return -1

    # Seed pass: direct boundary crossings of own parameters.
    for qualname, fn in index.functions.items():
        for call in fn.calls:
            for arg in call.args:
                if arg.kind != "param" or arg.name is None:
                    continue
                if not _is_boundary_position(call, arg):
                    continue
                position = param_index(fn, arg.name)
                if position >= 0:
                    tainted.setdefault(qualname, set()).add(position)

    # Fixpoint: propagate through calls to project helpers.
    changed = True
    while changed:
        changed = False
        for qualname, fn in index.functions.items():
            for call in fn.calls:
                callee_taint = tainted.get(call.callee)
                if not callee_taint:
                    continue
                callee = index.functions.get(call.callee)
                for arg in call.args:
                    if arg.kind != "param" or arg.name is None:
                        continue
                    target = _callee_param_position(callee, arg)
                    if target is None or target not in callee_taint:
                        continue
                    position = param_index(fn, arg.name)
                    if position < 0:
                        continue
                    slots = tainted.setdefault(qualname, set())
                    if position not in slots:
                        slots.add(position)
                        changed = True

    return {name: frozenset(slots) for name, slots in tainted.items()}


def _is_boundary_position(call: object, arg: object) -> bool:
    """Is this (call, arg) pair a pool-boundary crossing?"""
    # Typed as object above to appease the summary-only import graph;
    # the real shapes are CallRecord / CallArg.
    method_attr = getattr(call, "method_attr", None)
    callee: str = getattr(call, "callee", "")
    keyword = getattr(arg, "keyword", None)
    position = getattr(arg, "position", None)
    if keyword in POOL_BOUNDARY_KEYWORDS:
        return True
    if method_attr in POOL_BOUNDARY_METHODS and position == 0:
        return True
    base = callee.rsplit(".", 1)[-1]
    if base in POOL_BOUNDARY_FUNCTIONS and (
        position is not None or keyword is not None
    ):
        return True
    return False


def _callee_param_position(
    callee: object, arg: object
) -> "int | None":
    """Map a call argument onto the callee's parameter position."""
    position = getattr(arg, "position", None)
    keyword = getattr(arg, "keyword", None)
    if position is not None:
        return int(position)
    if keyword is not None and callee is not None:
        params: Tuple[str, ...] = getattr(callee, "params", ())
        try:
            return params.index(keyword)
        except ValueError:
            return None
    return None


def tainted_rng_producers(index: ProjectIndex) -> FrozenSet[str]:
    """Project functions that (transitively) return fresh generators.

    Seeds: functions whose ``returns_refs`` include a
    ``numpy.random`` constructor.  Propagation: functions returning a
    tainted producer's result are tainted themselves.  Functions
    defined in ``utils/rng.py`` are the blessed laundering point and
    never enter the set — everything must flow *through* them.
    """
    blessed_module = "repro.utils.rng"
    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for qualname, fn in index.functions.items():
            if qualname in tainted:
                continue
            # Index keys are module + qualname; methods carry an extra
            # Class component before the name.
            parts_to_strip = 2 if fn.is_method else 1
            module = qualname.rsplit(".", parts_to_strip)[0]
            if module == blessed_module:
                continue
            for ref in fn.returns_refs:
                if ref in RNG_CONSTRUCTORS or ref in tainted:
                    tainted.add(qualname)
                    changed = True
                    break
    return frozenset(tainted)


def find_import_cycles(index: ProjectIndex) -> List[Tuple[str, ...]]:
    """Import-time cycles among project modules (Tarjan SCCs).

    Only module-level runtime edges participate: ``TYPE_CHECKING``
    and function-scope imports cannot create an import-time cycle and
    are the sanctioned ways to break one.  Each returned cycle is the
    SCC's modules sorted, deterministically ordered across runs.
    """
    edges: Dict[str, List[str]] = {}
    for module in index.by_module:
        edges[module] = sorted(
            {
                target
                for target, _ in index.import_edges(
                    module, include_lazy=False
                )
            }
        )

    counter = [0]
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    cycles: List[Tuple[str, ...]] = []

    def strongconnect(module: str) -> None:
        # Iterative Tarjan: recursion would overflow on deep chains.
        work: List[Tuple[str, int]] = [(module, 0)]
        while work:
            node, edge_index = work[-1]
            if edge_index == 0:
                index_of[node] = counter[0]
                lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            neighbors = edges.get(node, [])
            while edge_index < len(neighbors):
                successor = neighbors[edge_index]
                edge_index += 1
                if successor not in index_of:
                    work[-1] = (node, edge_index)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(
                        lowlink[node], index_of[successor]
                    )
            if advanced:
                continue
            work[-1] = (node, edge_index)
            if edge_index >= len(neighbors):
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(
                        lowlink[parent], lowlink[node]
                    )
                if lowlink[node] == index_of[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        cycles.append(tuple(sorted(component)))
                    elif node in edges.get(node, []):
                        cycles.append((node,))

    for module in sorted(edges):
        if module not in index_of:
            strongconnect(module)
    return sorted(cycles)

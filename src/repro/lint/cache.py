"""Incremental result cache for the two-phase lint engine.

One JSON file (``<cache-dir>/cache.json``) holds, per linted file:

- the source content hash the entry was computed from,
- the phase-1 (per-file) violations and the :class:`ModuleSummary`,
- the *project digest* the phase-2 findings for that file were
  computed under, plus those findings.

The cache is keyed globally by ``RULE_PACK_VERSION`` and the engine
configuration signature — results computed under different rules or
config are never served.  Phase-1 entries invalidate on content hash
alone; phase-2 entries invalidate whenever the file's *project
digest* changes, which folds in the content hashes of its transitive
import closure (see :meth:`ProjectIndex.project_digest`).  That is
exactly the soundness boundary: a cross-module finding in ``A`` can
only change when ``A`` or something ``A`` transitively imports
changes.

Writes are atomic (temp file + ``os.replace``); a corrupt or
version-mismatched cache file degrades to a cold run, never an error.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro.lint.engine import Violation
from repro.lint.graph import ModuleSummary

__all__ = ["CacheEntry", "LintCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro-lint-cache"

_CACHE_SCHEMA = "repro.lint-cache/1"


class CacheEntry:
    """Cached results for one file."""

    def __init__(
        self,
        source_hash: str,
        violations: List[Violation],
        summary: ModuleSummary,
        project_digest: Optional[str] = None,
        project_violations: Optional[List[Violation]] = None,
    ) -> None:
        self.source_hash = source_hash
        self.violations = violations
        self.summary = summary
        self.project_digest = project_digest
        self.project_violations = project_violations or []

    def to_json(self) -> Dict[str, object]:
        return {
            "source_hash": self.source_hash,
            "violations": [v.to_cache_json() for v in self.violations],
            "summary": self.summary.to_json(),
            "project_digest": self.project_digest,
            "project_violations": [
                v.to_cache_json() for v in self.project_violations
            ],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "CacheEntry":
        return cls(
            source_hash=str(data["source_hash"]),
            violations=[
                Violation.from_cache_json(v)
                for v in data["violations"]  # type: ignore[union-attr]
            ],
            summary=ModuleSummary.from_json(
                data["summary"]  # type: ignore[arg-type]
            ),
            project_digest=(
                None
                if data["project_digest"] is None
                else str(data["project_digest"])
            ),
            project_violations=[
                Violation.from_cache_json(v)
                for v in data[
                    "project_violations"
                ]  # type: ignore[union-attr]
            ],
        )


class LintCache:
    """Load-mutate-save wrapper around the single cache file.

    ``pack_key`` is ``RULE_PACK_VERSION`` + the config signature; a
    mismatch on load discards everything, so a rule-pack bump or a
    ``--select`` change can never replay stale findings.
    """

    def __init__(self, cache_dir: Path, pack_key: str) -> None:
        self.cache_dir = Path(cache_dir)
        self.pack_key = pack_key
        self.entries: Dict[str, CacheEntry] = {}
        self._loaded_valid = False

    @property
    def path(self) -> Path:
        return self.cache_dir / "cache.json"

    def load(self) -> None:
        try:
            raw = self.path.read_text(encoding="utf-8")
            data = json.loads(raw)
        except (OSError, ValueError):
            self.entries = {}
            return
        if not isinstance(data, dict):
            self.entries = {}
            return
        if data.get("schema") != _CACHE_SCHEMA:
            self.entries = {}
            return
        if data.get("pack_key") != self.pack_key:
            self.entries = {}
            return
        entries = data.get("entries")
        if not isinstance(entries, dict):
            self.entries = {}
            return
        loaded: Dict[str, CacheEntry] = {}
        try:
            for path, entry in entries.items():
                loaded[str(path)] = CacheEntry.from_json(entry)
        except (KeyError, TypeError, ValueError):
            self.entries = {}
            return
        self.entries = loaded
        self._loaded_valid = True

    def get(self, path: str, source_hash: str) -> Optional[CacheEntry]:
        """The entry for ``path`` iff its content hash still matches."""
        entry = self.entries.get(path)
        if entry is None or entry.source_hash != source_hash:
            return None
        return entry

    def put(self, path: str, entry: CacheEntry) -> None:
        self.entries[path] = entry

    def prune(self, live_paths: Tuple[str, ...]) -> None:
        """Drop entries for files no longer in the analyzed set."""
        live = set(live_paths)
        for path in list(self.entries):
            if path not in live:
                del self.entries[path]

    def save(self) -> None:
        payload = {
            "schema": _CACHE_SCHEMA,
            "pack_key": self.pack_key,
            "entries": {
                path: entry.to_json()
                for path, entry in sorted(self.entries.items())
            },
        }
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.cache_dir), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, separators=(",", ":"))
                os.replace(tmp_name, self.path)
            except BaseException:  # jrsnd: noqa(JRS003) -- must not leak the temp file on any failure, including KeyboardInterrupt; re-raised below
                os.unlink(tmp_name)
                raise
        except OSError:
            # A read-only checkout (CI artifact stages) degrades to
            # uncached runs; caching is an optimization, not a result.
            return

"""Phase-1 project indexing for the cross-module lint rules.

The per-file rule pack (JRS001–JRS007) sees one ``ast.Module`` at a
time, which is exactly the blind spot PRs 8–9 exploited: a dispatcher
thread sharing mutable pool state, run specs crossing pickle
boundaries through helper-call chains, and a growing package DAG none
of which is visible inside a single file.  This module builds the
whole-project view those checks need:

- a :class:`ModuleSummary` per file — import records (with their
  ``TYPE_CHECKING`` / function-scope flags), per-class attribute-access
  summaries with lock context, a lightweight call graph over module
  functions and methods, and RNG-construction sites;
- a :class:`ProjectIndex` over all summaries — module name resolution,
  the runtime import graph, transitive import closures, and a global
  function table.

Summaries are deliberately *plain data* (frozen dataclasses of
strings/ints with JSON round-trips) for two reasons: they are cached
per file under ``.repro-lint-cache/`` by content hash, and they cross
process boundaries when ``--jobs N`` parses files in parallel.  The
flow analyses that interpret them live in :mod:`repro.lint.flow`; the
JRS008–JRS011 rules that consume both live in
:mod:`repro.lint.rules`.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.engine import ModuleContext

__all__ = [
    "AttrAccess",
    "CallArg",
    "CallRecord",
    "ClassSummary",
    "FactoryRef",
    "FunctionSummary",
    "ImportRecord",
    "MethodSummary",
    "ModuleSummary",
    "ProjectIndex",
    "RngSite",
    "content_hash",
    "module_name_for_path",
    "summarize_module",
]

#: numpy.random entry points that mint a fresh generator.  Seeding one
#: directly is JRS001-legal but breaks JRS011's provenance contract
#: outside ``utils/rng.py``.
RNG_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
    }
)

#: Pool-boundary method names, mirrored from JRS007 so the transitive
#: JRS009 analysis agrees with the literal per-file rule.
POOL_BOUNDARY_METHODS: FrozenSet[str] = frozenset(
    {
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "apply",
        "apply_async",
        "submit",
    }
)

POOL_BOUNDARY_FUNCTIONS: FrozenSet[str] = frozenset({"run_parallel"})
POOL_BOUNDARY_KEYWORDS: FrozenSet[str] = frozenset(
    {"initializer", "func", "callback"}
)


def content_hash(source: str) -> str:
    """Stable identity of one file's text (cache key component)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def module_name_for_path(path: str) -> str:
    """Dotted module name for ``path``.

    Paths are anchored at the last ``repro`` component so both real
    trees (``src/repro/dsss/phy.py`` → ``repro.dsss.phy``) and the
    virtual fixture paths tests use resolve identically.  Files outside
    a ``repro`` tree fall back to their stem, which keeps scratch files
    indexable without pretending they belong to a package.
    """
    parts = list(Path(path).parts)
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    else:
        parts = parts[-1:]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else Path(path).stem


@dataclass(frozen=True)
class ImportRecord:
    """One import statement, with the flags JRS010 keys off."""

    target: str
    line: int
    col: int
    #: Inside ``if TYPE_CHECKING:`` — not a runtime edge.
    type_checking: bool
    #: Inside a function body — a sanctioned lazy back edge.
    function_scope: bool

    def to_json(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "line": self.line,
            "col": self.col,
            "type_checking": self.type_checking,
            "function_scope": self.function_scope,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "ImportRecord":
        return cls(
            target=str(data["target"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            col=int(data["col"]),  # type: ignore[call-overload]
            type_checking=bool(data["type_checking"]),
            function_scope=bool(data["function_scope"]),
        )


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.<attr>`` touch inside a method body."""

    attr: str
    line: int
    col: int
    write: bool
    #: Lexically inside a ``with self.<lock-ish>:`` block.
    locked: bool

    def to_json(self) -> List[object]:
        return [self.attr, self.line, self.col, self.write, self.locked]

    @classmethod
    def from_json(cls, data: Sequence[object]) -> "AttrAccess":
        return cls(
            attr=str(data[0]),
            line=int(data[1]),  # type: ignore[call-overload]
            col=int(data[2]),  # type: ignore[call-overload]
            write=bool(data[3]),
            locked=bool(data[4]),
        )


@dataclass(frozen=True)
class MethodSummary:
    """Attribute accesses and self-calls of one method."""

    name: str
    line: int
    accesses: Tuple[AttrAccess, ...]
    self_calls: Tuple[str, ...]
    #: Methods handed to ``threading.Thread(target=self.X)`` here.
    thread_targets: Tuple[str, ...]

    @property
    def public(self) -> bool:
        return not self.name.startswith("_")

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "line": self.line,
            "accesses": [a.to_json() for a in self.accesses],
            "self_calls": list(self.self_calls),
            "thread_targets": list(self.thread_targets),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "MethodSummary":
        return cls(
            name=str(data["name"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            accesses=tuple(
                AttrAccess.from_json(a)
                for a in data["accesses"]  # type: ignore[union-attr]
            ),
            self_calls=tuple(data["self_calls"]),  # type: ignore[arg-type]
            thread_targets=tuple(
                data["thread_targets"]  # type: ignore[arg-type]
            ),
        )


@dataclass(frozen=True)
class ClassSummary:
    """Per-class view JRS008's thread-shared-state analysis consumes."""

    name: str
    line: int
    methods: Tuple[MethodSummary, ...]

    def method(self, name: str) -> Optional[MethodSummary]:
        for candidate in self.methods:
            if candidate.name == name:
                return candidate
        return None

    @property
    def thread_targets(self) -> Tuple[str, ...]:
        targets: List[str] = []
        for method in self.methods:
            targets.extend(method.thread_targets)
        return tuple(targets)

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "line": self.line,
            "methods": [m.to_json() for m in self.methods],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "ClassSummary":
        return cls(
            name=str(data["name"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            methods=tuple(
                MethodSummary.from_json(m)
                for m in data["methods"]  # type: ignore[union-attr]
            ),
        )


@dataclass(frozen=True)
class CallArg:
    """One argument at a call site, classified for pickle analysis.

    ``kind`` is one of ``lambda``, ``local_def`` (a nested function or
    class), ``param`` (a parameter of the enclosing function, carrying
    taint), ``ref`` (a module-level or imported callable, resolved in
    ``name``), or ``other``.
    """

    position: Optional[int]
    keyword: Optional[str]
    kind: str
    name: Optional[str]
    line: int
    col: int

    def to_json(self) -> List[object]:
        return [
            self.position, self.keyword, self.kind,
            self.name, self.line, self.col,
        ]

    @classmethod
    def from_json(cls, data: Sequence[object]) -> "CallArg":
        return cls(
            position=None if data[0] is None else int(data[0]),  # type: ignore[call-overload]
            keyword=None if data[1] is None else str(data[1]),
            kind=str(data[2]),
            name=None if data[3] is None else str(data[3]),
            line=int(data[4]),  # type: ignore[call-overload]
            col=int(data[5]),  # type: ignore[call-overload]
        )


@dataclass(frozen=True)
class CallRecord:
    """One call made by a function body.

    ``callee`` is the best-effort reference: a fully resolved dotted
    path for imported names (``repro.experiments.parallel.run_parallel``),
    ``<module>.<name>`` for module-level functions of the same file,
    ``self.<attr>`` for method self-calls, or the bare name when
    unresolvable.  ``method_attr`` carries the trailing attribute for
    ``obj.method(...)`` shapes so pool-boundary methods are matched the
    way JRS007 matches them — by name, on any receiver.
    """

    callee: str
    method_attr: Optional[str]
    line: int
    col: int
    args: Tuple[CallArg, ...]

    def to_json(self) -> Dict[str, object]:
        return {
            "callee": self.callee,
            "method_attr": self.method_attr,
            "line": self.line,
            "col": self.col,
            "args": [a.to_json() for a in self.args],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "CallRecord":
        return cls(
            callee=str(data["callee"]),
            method_attr=(
                None
                if data["method_attr"] is None
                else str(data["method_attr"])
            ),
            line=int(data["line"]),  # type: ignore[call-overload]
            col=int(data["col"]),  # type: ignore[call-overload]
            args=tuple(
                CallArg.from_json(a)
                for a in data["args"]  # type: ignore[union-attr]
            ),
        )


@dataclass(frozen=True)
class FunctionSummary:
    """Signature + calls of one function (or method)."""

    qualname: str
    line: int
    params: Tuple[str, ...]
    calls: Tuple[CallRecord, ...]
    #: Callee refs whose results this function returns (directly or
    #: through one local assignment) — the JRS011 producer signal.
    returns_refs: Tuple[str, ...]

    @property
    def is_method(self) -> bool:
        return "." in self.qualname

    def to_json(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "params": list(self.params),
            "calls": [c.to_json() for c in self.calls],
            "returns_refs": list(self.returns_refs),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "FunctionSummary":
        return cls(
            qualname=str(data["qualname"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            params=tuple(data["params"]),  # type: ignore[arg-type]
            calls=tuple(
                CallRecord.from_json(c)
                for c in data["calls"]  # type: ignore[union-attr]
            ),
            returns_refs=tuple(
                data["returns_refs"]  # type: ignore[arg-type]
            ),
        )


@dataclass(frozen=True)
class RngSite:
    """A ``numpy.random`` generator constructed outside utils.rng."""

    line: int
    col: int
    #: The resolved constructor chain, or the alias it was called via.
    via: str

    def to_json(self) -> List[object]:
        return [self.line, self.col, self.via]

    @classmethod
    def from_json(cls, data: Sequence[object]) -> "RngSite":
        return cls(
            line=int(data[0]),  # type: ignore[call-overload]
            col=int(data[1]),  # type: ignore[call-overload]
            via=str(data[2]),
        )


@dataclass(frozen=True)
class FactoryRef:
    """A ``field(default_factory=<ref>)`` callable reference."""

    line: int
    col: int
    ref: str

    def to_json(self) -> List[object]:
        return [self.line, self.col, self.ref]

    @classmethod
    def from_json(cls, data: Sequence[object]) -> "FactoryRef":
        return cls(
            line=int(data[0]),  # type: ignore[call-overload]
            col=int(data[1]),  # type: ignore[call-overload]
            ref=str(data[2]),
        )


@dataclass(frozen=True)
class ModuleSummary:
    """Everything phase 2 needs to know about one file."""

    path: str
    module: str
    source_hash: str
    imports: Tuple[ImportRecord, ...]
    classes: Tuple[ClassSummary, ...]
    functions: Tuple[FunctionSummary, ...]
    rng_sites: Tuple[RngSite, ...]
    factory_refs: Tuple[FactoryRef, ...]
    #: Justified-noqa lines: line → suppressed rule codes.
    suppressed: Tuple[Tuple[int, Tuple[str, ...]], ...] = ()

    def suppressed_codes(self, line: int) -> Tuple[str, ...]:
        for lineno, codes in self.suppressed:
            if lineno == line:
                return codes
        return ()

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "module": self.module,
            "source_hash": self.source_hash,
            "imports": [i.to_json() for i in self.imports],
            "classes": [c.to_json() for c in self.classes],
            "functions": [f.to_json() for f in self.functions],
            "rng_sites": [s.to_json() for s in self.rng_sites],
            "factory_refs": [r.to_json() for r in self.factory_refs],
            "suppressed": [
                [line, list(codes)] for line, codes in self.suppressed
            ],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "ModuleSummary":
        return cls(
            path=str(data["path"]),
            module=str(data["module"]),
            source_hash=str(data["source_hash"]),
            imports=tuple(
                ImportRecord.from_json(i)
                for i in data["imports"]  # type: ignore[union-attr]
            ),
            classes=tuple(
                ClassSummary.from_json(c)
                for c in data["classes"]  # type: ignore[union-attr]
            ),
            functions=tuple(
                FunctionSummary.from_json(f)
                for f in data["functions"]  # type: ignore[union-attr]
            ),
            rng_sites=tuple(
                RngSite.from_json(s)
                for s in data["rng_sites"]  # type: ignore[union-attr]
            ),
            factory_refs=tuple(
                FactoryRef.from_json(r)
                for r in data["factory_refs"]  # type: ignore[union-attr]
            ),
            suppressed=tuple(
                (int(line), tuple(str(code) for code in codes))
                for line, codes in data["suppressed"]  # type: ignore[union-attr, misc]
            ),
        )


# ---------------------------------------------------------------------
# Summary construction
# ---------------------------------------------------------------------


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.<attr>`` → attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_lockish(attr: str) -> bool:
    return "lock" in attr.lower()


class _MethodWalker(ast.NodeVisitor):
    """Collect attribute accesses / self-calls of one method body."""

    def __init__(self, ctx: ModuleContext) -> None:
        self._ctx = ctx
        self.accesses: List[AttrAccess] = []
        self.self_calls: List[str] = []
        self.thread_targets: List[str] = []
        self._lock_depth = 0
        self._write_attrs: Set[int] = set()  # id()s of store targets

    # -- write classification ------------------------------------------

    def _mark_write_targets(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._mark_write_targets(element)
        elif isinstance(target, ast.Attribute):
            self._write_attrs.add(id(target))
        elif isinstance(target, ast.Starred):
            self._mark_write_targets(target.value)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._mark_write_targets(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._mark_write_targets(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._mark_write_targets(node.target)
        self.generic_visit(node)

    # -- interesting nodes ---------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        lockish = any(
            (attr := _self_attr(item.context_expr)) is not None
            and _is_lockish(attr)
            for item in node.items
        )
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        if lockish:
            self._lock_depth += 1
        for statement in node.body:
            self.visit(statement)
        if lockish:
            self._lock_depth -= 1

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr is not None and not _is_lockish(attr):
            self.accesses.append(
                AttrAccess(
                    attr=attr,
                    line=node.lineno,
                    col=node.col_offset,
                    write=id(node) in self._write_attrs
                    or isinstance(node.ctx, (ast.Store, ast.Del)),
                    locked=self._lock_depth > 0,
                )
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            attr = _self_attr(func)
            if attr is not None:
                self.self_calls.append(attr)
        target = self._ctx.resolve_call_chain(func)
        if target == "threading.Thread":
            for keyword in node.keywords:
                if keyword.arg != "target":
                    continue
                thread_target = _self_attr(keyword.value)
                if thread_target is not None:
                    self.thread_targets.append(thread_target)
        self.generic_visit(node)


def _summarize_method(
    node: ast.FunctionDef, ctx: ModuleContext
) -> MethodSummary:
    walker = _MethodWalker(ctx)
    for statement in node.body:
        walker.visit(statement)
    return MethodSummary(
        name=node.name,
        line=node.lineno,
        accesses=tuple(walker.accesses),
        self_calls=tuple(sorted(set(walker.self_calls))),
        thread_targets=tuple(sorted(set(walker.thread_targets))),
    )


def _summarize_class(
    node: ast.ClassDef, ctx: ModuleContext
) -> ClassSummary:
    methods = tuple(
        _summarize_method(child, ctx)
        for child in node.body
        if isinstance(child, ast.FunctionDef)
    )
    return ClassSummary(name=node.name, line=node.lineno, methods=methods)


def _resolve_ref(
    name: str, ctx: ModuleContext, module: str, module_defs: Set[str]
) -> Optional[str]:
    """Resolve a bare name to a global callable reference."""
    resolved = ctx.aliases.get(name)
    if resolved is not None:
        return resolved
    if name in module_defs:
        return f"{module}.{name}"
    return None


def _classify_arg(
    value: ast.expr,
    position: Optional[int],
    keyword: Optional[str],
    ctx: ModuleContext,
    module: str,
    module_defs: Set[str],
    params: Set[str],
) -> CallArg:
    kind = "other"
    name: Optional[str] = None
    if isinstance(value, ast.Lambda):
        kind = "lambda"
    elif isinstance(value, ast.Name):
        if value.id in params:
            kind, name = "param", value.id
        elif (
            value.id in ctx.nested_defs
            and value.id not in ctx.module_scope_defs
        ):
            kind, name = "local_def", value.id
        else:
            ref = _resolve_ref(value.id, ctx, module, module_defs)
            if ref is not None:
                kind, name = "ref", ref
    elif isinstance(value, ast.Attribute):
        chain = ctx.resolve_call_chain(value)
        if chain is not None:
            kind, name = "ref", chain
    return CallArg(
        position=position,
        keyword=keyword,
        kind=kind,
        name=name,
        line=value.lineno,
        col=value.col_offset,
    )


def _summarize_function(
    node: ast.FunctionDef,
    qualname: str,
    ctx: ModuleContext,
    module: str,
    module_defs: Set[str],
) -> FunctionSummary:
    arguments = node.args
    params = [
        arg.arg
        for arg in (
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        )
    ]
    param_set = set(params)
    calls: List[CallRecord] = []
    assigned_from: Dict[str, str] = {}
    returns_refs: List[str] = []

    def callee_ref(func: ast.expr) -> Tuple[str, Optional[str]]:
        if isinstance(func, ast.Name):
            ref = _resolve_ref(func.id, ctx, module, module_defs)
            return ref or func.id, None
        if isinstance(func, ast.Attribute):
            attr = _self_attr(func)
            if attr is not None:
                return f"self.{attr}", func.attr
            chain = ctx.resolve_call_chain(func)
            return chain or func.attr, func.attr
        return "<dynamic>", None

    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            ref, method_attr = callee_ref(child.func)
            args = tuple(
                _classify_arg(
                    value, index, None, ctx, module, module_defs,
                    param_set,
                )
                for index, value in enumerate(child.args)
            ) + tuple(
                _classify_arg(
                    kw.value, None, kw.arg, ctx, module, module_defs,
                    param_set,
                )
                for kw in child.keywords
                if kw.arg is not None
            )
            calls.append(
                CallRecord(
                    callee=ref,
                    method_attr=method_attr,
                    line=child.lineno,
                    col=child.col_offset,
                    args=args,
                )
            )
        elif isinstance(child, ast.Assign) and isinstance(
            child.value, ast.Call
        ):
            ref, _ = callee_ref(child.value.func)
            for target in child.targets:
                if isinstance(target, ast.Name):
                    assigned_from[target.id] = ref
        elif isinstance(child, ast.Return) and child.value is not None:
            if isinstance(child.value, ast.Call):
                ref, _ = callee_ref(child.value.func)
                returns_refs.append(ref)
            elif isinstance(child.value, ast.Name):
                ref_opt = assigned_from.get(child.value.id)
                if ref_opt is not None:
                    returns_refs.append(ref_opt)
    return FunctionSummary(
        qualname=qualname,
        line=node.lineno,
        params=tuple(params),
        calls=tuple(calls),
        returns_refs=tuple(sorted(set(returns_refs))),
    )


def summarize_module(
    ctx: ModuleContext,
    suppressions: Optional[Mapping[int, Sequence[str]]] = None,
) -> ModuleSummary:
    """Build the phase-2 summary for one parsed module."""
    module = module_name_for_path(ctx.path)
    tree = ctx.tree

    # -- imports, with their scoping flags -----------------------------
    imports: List[ImportRecord] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        type_checking = False
        function_scope = False
        current = ctx.parents.get(node)
        while current is not None:
            if isinstance(current, ast.If) and _is_type_checking_test(
                current.test
            ):
                type_checking = True
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                function_scope = True
            current = ctx.parents.get(current)
        if isinstance(node, ast.Import):
            targets = [name.name for name in node.names]
        else:
            if node.module is None or node.level:
                continue  # relative imports stay module-local
            targets = [node.module]
            if node.module == "repro" or node.module.startswith("repro."):
                # `from repro.x import y` may bind the submodule x.y.
                targets.extend(
                    f"{node.module}.{name.name}" for name in node.names
                )
        for target in targets:
            imports.append(
                ImportRecord(
                    target=target,
                    line=node.lineno,
                    col=node.col_offset,
                    type_checking=type_checking,
                    function_scope=function_scope,
                )
            )

    # -- classes and functions -----------------------------------------
    classes = tuple(
        _summarize_class(node, ctx)
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
    )
    module_defs = set(ctx.module_scope_defs)
    functions: List[FunctionSummary] = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            functions.append(
                _summarize_function(
                    node, node.name, ctx, module, module_defs
                )
            )
        elif isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, ast.FunctionDef):
                    functions.append(
                        _summarize_function(
                            child,
                            f"{node.name}.{child.name}",
                            ctx,
                            module,
                            module_defs,
                        )
                    )

    # -- RNG construction sites ----------------------------------------
    rng_sites: List[RngSite] = []
    constructor_aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and not isinstance(
            node.value, ast.Call
        ):
            chain = ctx.resolve_call_chain(node.value)
            if chain in RNG_CONSTRUCTORS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        constructor_aliases.add(target.id)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = ctx.resolve_call_chain(node.func)
        if chain in RNG_CONSTRUCTORS:
            rng_sites.append(
                RngSite(
                    line=node.lineno, col=node.col_offset, via=chain or ""
                )
            )
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id in constructor_aliases
        ):
            rng_sites.append(
                RngSite(
                    line=node.lineno,
                    col=node.col_offset,
                    via=f"alias '{node.func.id}'",
                )
            )

    # -- dataclass default factories -----------------------------------
    factory_refs: List[FactoryRef] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_field = (
            isinstance(func, ast.Name) and func.id == "field"
        ) or (
            isinstance(func, ast.Attribute) and func.attr == "field"
        )
        if not is_field:
            continue
        for keyword in node.keywords:
            if keyword.arg != "default_factory":
                continue
            value = keyword.value
            ref: Optional[str] = None
            if isinstance(value, ast.Name):
                ref = _resolve_ref(value.id, ctx, module, module_defs)
            elif isinstance(value, ast.Attribute):
                ref = ctx.resolve_call_chain(value)
            if ref is not None:
                factory_refs.append(
                    FactoryRef(
                        line=value.lineno,
                        col=value.col_offset,
                        ref=ref,
                    )
                )

    suppressed: Tuple[Tuple[int, Tuple[str, ...]], ...] = ()
    if suppressions:
        suppressed = tuple(
            (line, tuple(suppressions[line]))
            for line in sorted(suppressions)
        )

    return ModuleSummary(
        path=ctx.path,
        module=module,
        source_hash=content_hash(ctx.source),
        imports=imports_tuple(imports),
        classes=classes,
        functions=tuple(functions),
        rng_sites=tuple(rng_sites),
        factory_refs=tuple(factory_refs),
        suppressed=suppressed,
    )


def imports_tuple(
    imports: Sequence[ImportRecord],
) -> Tuple[ImportRecord, ...]:
    """Deterministic import ordering (line, col, target)."""
    return tuple(
        sorted(imports, key=lambda i: (i.line, i.col, i.target))
    )


# ---------------------------------------------------------------------
# The project index
# ---------------------------------------------------------------------


class ProjectIndex:
    """Whole-project view assembled from per-file summaries.

    Construction is cheap relative to parsing (the summaries carry all
    the AST-derived facts), which is what makes the incremental cache
    effective: a warm run re-parses only changed files, then rebuilds
    this index from mostly cached summaries.
    """

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.summaries: Tuple[ModuleSummary, ...] = tuple(
            sorted(summaries, key=lambda s: s.path)
        )
        self.by_module: Dict[str, ModuleSummary] = {}
        for summary in self.summaries:
            # Last writer wins deterministically (sorted by path); real
            # trees never collide, virtual fixture trees may.
            self.by_module[summary.module] = summary
        self.functions: Dict[str, FunctionSummary] = {}
        for summary in self.summaries:
            for function in summary.functions:
                self.functions[
                    f"{summary.module}.{function.qualname}"
                ] = function
        self._closures: Dict[str, FrozenSet[str]] = {}

    # -- module / package resolution -----------------------------------

    def resolve_module(self, target: str) -> Optional[str]:
        """Resolve a dotted import target to an indexed module.

        ``repro.obs`` resolves to the package module (its
        ``__init__``); ``repro.obs.names`` to the submodule; targets
        outside the project resolve to ``None``.
        """
        if target in self.by_module:
            return target
        return None

    @staticmethod
    def package_of(module: str) -> str:
        """Layering package of a module (``repro.dsss.phy`` → ``dsss``).

        The ``repro`` root facade itself maps to ``""`` and is exempt
        from layering (it exists to re-export the public API).
        """
        parts = module.split(".")
        if parts[0] != "repro" or len(parts) == 1:
            return "" if parts[0] == "repro" else parts[0]
        return parts[1]

    # -- import graph ---------------------------------------------------

    def runtime_imports(
        self, module: str, include_lazy: bool = True
    ) -> List[ImportRecord]:
        """Non-``TYPE_CHECKING`` imports of ``module``.

        ``include_lazy=False`` drops function-scope imports as well —
        the edge set used for import-cycle detection, since a deferred
        import cannot participate in an import-time cycle.
        """
        summary = self.by_module.get(module)
        if summary is None:
            return []
        records = [
            record
            for record in summary.imports
            if not record.type_checking
        ]
        if not include_lazy:
            records = [r for r in records if not r.function_scope]
        return records

    def import_edges(
        self, module: str, include_lazy: bool = True
    ) -> List[Tuple[str, ImportRecord]]:
        """(resolved project module, record) pairs for ``module``."""
        edges: List[Tuple[str, ImportRecord]] = []
        seen: Set[Tuple[str, int]] = set()
        for record in self.runtime_imports(module, include_lazy):
            resolved = self.resolve_module(record.target)
            if resolved is None or resolved == module:
                continue
            key = (resolved, record.line)
            if key in seen:
                continue
            seen.add(key)
            edges.append((resolved, record))
        return edges

    def import_closure(self, module: str) -> FrozenSet[str]:
        """Transitive runtime import closure of ``module`` (exclusive).

        This is the invalidation relation of the incremental cache: a
        module's cross-module findings can only change when the module
        itself or something in this closure changes.
        """
        cached = self._closures.get(module)
        if cached is not None:
            return cached
        closure: Set[str] = set()
        stack = [module]
        while stack:
            current = stack.pop()
            for target, _ in self.import_edges(current):
                if target not in closure and target != module:
                    closure.add(target)
                    stack.append(target)
        result = frozenset(closure)
        self._closures[module] = result
        return result

    def project_digest(self, module: str, salt: str) -> str:
        """Content digest of ``module`` + its import closure.

        Equal digests between runs mean the cross-module findings for
        ``module`` are still valid; ``salt`` folds in the rule-pack
        version and engine configuration.
        """
        summary = self.by_module[module]
        material = [salt, module, summary.source_hash]
        for name in sorted(self.import_closure(module)):
            dependency = self.by_module.get(name)
            if dependency is not None:
                material.append(f"{name}={dependency.source_hash}")
        return hashlib.sha256(
            "\n".join(material).encode("utf-8")
        ).hexdigest()

"""The JR-SND determinism rule pack.

Per-file rules (JRS001–JRS007) each guard one invariant the
reproduction's headline claims rest on — seeded randomness only, no
wall-clock inside the simulated world, narrow excepts, registered
metric names, no float equality in the signal-processing layers, no
mutable defaults, and pickle-safe pool boundaries.  Cross-module rules
(JRS008–JRS011) run in phase 2 against the
:class:`~repro.lint.graph.ProjectIndex`: thread-shared-state lock
discipline, transitive pool-boundary picklability, architecture
layering with cycle detection, and RNG provenance.  See
``docs/architecture.md`` ("Static analysis & determinism lints") for
the rationale table and the policy for adding a rule.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.engine import (
    Fix,
    LintConfig,
    ModuleContext,
    ProjectRule,
    Rule,
    Severity,
    Violation,
)
from repro.lint.flow import (
    _callee_param_position,
    find_import_cycles,
    reachable_methods,
    tainted_boundary_params,
    tainted_rng_producers,
)
from repro.lint.graph import (
    RNG_CONSTRUCTORS,
    ClassSummary,
    ModuleSummary,
    ProjectIndex,
)
from repro.obs import names as _metric_names

__all__ = [
    "JRS001UnseededRandomness",
    "JRS002WallClock",
    "JRS003BroadExcept",
    "JRS004UnregisteredMetricName",
    "JRS005FloatEquality",
    "JRS006MutableDefault",
    "JRS007PoolBoundaryPickle",
    "JRS008ThreadSharedState",
    "JRS009TransitivePoolPickle",
    "JRS010ArchitectureLayering",
    "JRS011RngProvenance",
    "ALL_RULES",
    "PROJECT_RULES",
    "RULE_PACK_VERSION",
    "default_rules",
    "default_project_rules",
]

#: Bumped on any change to rule semantics; invalidates every cached
#: result (phase 1 and phase 2) in ``.repro-lint-cache/``.
RULE_PACK_VERSION = "2"


class JRS001UnseededRandomness(Rule):
    """Unseeded randomness breaks run-for-run reproducibility.

    Every stochastic draw must flow from a ``numpy.random.Generator``
    derived via :mod:`repro.utils.rng`; stdlib ``random.*``, legacy
    ``numpy.random.*`` module functions, and an argless
    ``default_rng()`` all read hidden global state.
    """

    code = "JRS001"
    severity = Severity.ERROR
    description = (
        "no unseeded randomness: stdlib random.*, legacy np.random.*, "
        "or argless default_rng() outside utils/rng.py"
    )
    node_types = (ast.Call,)

    #: numpy.random attributes that are seeded-construction APIs, not
    #: hidden-global draws.
    _NUMPY_OK = frozenset(
        {
            "default_rng",
            "SeedSequence",
            "Generator",
            "BitGenerator",
            # Seeded bit-generator constructors: explicit-state APIs,
            # not hidden-global draws (JRS011 owns their *provenance*).
            "PCG64",
            "MT19937",
            "Philox",
            "SFC64",
        }
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.path_endswith("utils/rng.py")

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterable[Violation]:
        assert isinstance(node, ast.Call)
        target = ctx.resolve_call_chain(node.func)
        if target is None:
            return
        if target == "random" or target.startswith("random."):
            yield self.violation(
                ctx,
                node,
                f"call to stdlib '{target}' reads hidden global RNG "
                "state; draw from a Generator provided by "
                "repro.utils.rng instead",
            )
            return
        if not target.startswith("numpy.random."):
            return
        attr = target[len("numpy.random."):]
        if attr == "default_rng":
            if not node.args and not node.keywords:
                yield self.violation(
                    ctx,
                    node,
                    "default_rng() without a seed is entropy-seeded "
                    "and irreproducible; pass a seed or derive via "
                    "repro.utils.rng",
                )
            return
        if "." not in attr and attr not in self._NUMPY_OK:
            yield self.violation(
                ctx,
                node,
                f"legacy 'numpy.random.{attr}' uses the hidden global "
                "RandomState; use a seeded Generator instead",
            )


class JRS002WallClock(Rule):
    """Wall-clock reads inside the simulated world desynchronize runs.

    Simulation, protocol, and PHY code must tell time via the event
    loop (``Simulator.now``), never via the host clock — a wall-clock
    read makes behaviour depend on machine load.
    """

    code = "JRS002"
    severity = Severity.ERROR
    description = (
        "no wall-clock (time.time, datetime.now, ...) in sim/, "
        "core/, dsss/"
    )
    node_types = (ast.Call,)

    _BANNED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.path_in("/sim/", "/core/", "/dsss/")

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterable[Violation]:
        assert isinstance(node, ast.Call)
        target = ctx.resolve_call_chain(node.func)
        if target in self._BANNED:
            yield self.violation(
                ctx,
                node,
                f"'{target}' reads the host clock inside the simulated "
                "world; use the event loop's Simulator.now",
            )


class JRS003BroadExcept(Rule):
    """Broad excepts swallow the invariant breaches the soaks hunt for.

    A ``except Exception`` around protocol or decode logic silently
    converts a codec bug into 'channel noise'; handlers must name the
    concrete error families they expect.
    """

    code = "JRS003"
    severity = Severity.ERROR
    description = "no bare/broad except outside the allowlist"
    node_types = (ast.ExceptHandler,)

    _BROAD = frozenset({"Exception", "BaseException"})

    def applies_to(self, ctx: ModuleContext) -> bool:
        allowlist = self.config.broad_except_allowlist
        return not (allowlist and ctx.path_endswith(*allowlist))

    def _broad_name(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name) and expr.id in self._BROAD:
            return expr.id
        if isinstance(expr, ast.Attribute) and expr.attr in self._BROAD:
            return expr.attr
        return None

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterable[Violation]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield self.violation(
                ctx,
                node,
                "bare 'except:' catches everything including "
                "KeyboardInterrupt; name the concrete error types",
            )
            return
        exprs: Sequence[ast.expr]
        if isinstance(node.type, ast.Tuple):
            exprs = node.type.elts
        else:
            exprs = [node.type]
        for expr in exprs:
            name = self._broad_name(expr)
            if name is not None:
                yield self.violation(
                    ctx,
                    node,
                    f"'except {name}' is too broad; name the concrete "
                    "error types (see repro.errors) or suppress with "
                    "a justification",
                )


class JRS004UnregisteredMetricName(Rule):
    """Metric names must come from the ``repro.obs.names`` registry.

    A typo'd counter name silently no-ops — the counter is written but
    nothing ever reads it.  Literals must be declared in
    ``obs/names.py``; dynamic names must be built by one of its
    helpers.  A *registered* literal is only a warning (prefer the
    constant) and is mechanically rewritten by ``--fix``.
    """

    code = "JRS004"
    severity = Severity.ERROR
    description = (
        "metric names passed to repro.obs must be declared in "
        "repro.obs.names (literals registered, dynamics via helpers)"
    )
    node_types = (ast.Call,)

    _METHODS = frozenset(
        {
            "inc",
            "gauge",
            "gauge_max",
            "observe",
            "record_seconds",
            "timer",
            "event",
            "increment",
            "count",
            "_count",
            "counter",
        }
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.path_endswith("obs/names.py")

    def _names_alias(self, ctx: ModuleContext) -> Tuple[str, Optional[str]]:
        """(attribute prefix, import line to add or None)."""
        for bound, target in ctx.aliases.items():
            if target == "repro.obs.names":
                return bound, None
        return "_names", "from repro.obs import names as _names"

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterable[Violation]:
        assert isinstance(node, ast.Call)
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in self._METHODS:
            return
        if not node.args:
            return
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name = arg.value
            if not _metric_names.looks_like_metric_name(name):
                return  # not metric-shaped: list.count("x"), etc.
            if not _metric_names.is_registered(name):
                yield self.violation(
                    ctx,
                    node.func,
                    f"metric name '{name}' is not declared in "
                    "repro.obs.names; a typo here silently no-ops — "
                    "declare the constant and report through it",
                )
                return
            constant = _metric_names.CONSTANT_FOR.get(name)
            if constant is None:
                return  # helper-shaped literal: nothing to rewrite to
            alias, new_import = self._names_alias(ctx)
            fix = Fix(
                line=arg.lineno,
                col=arg.col_offset,
                end_line=arg.end_lineno or arg.lineno,
                end_col=arg.end_col_offset or arg.col_offset,
                replacement=f"{alias}.{constant}",
                new_import=new_import,
            )
            yield self.violation(
                ctx,
                node.func,
                f"registered metric name '{name}' written as a raw "
                f"literal; use {alias}.{constant} (auto-fixable)",
                fix=fix,
                severity=Severity.WARNING,
            )
            return
        if isinstance(arg, ast.JoinedStr):
            prefix = ""
            if arg.values and isinstance(arg.values[0], ast.Constant):
                prefix = str(arg.values[0].value)
            if "." in prefix or not prefix:
                yield self.violation(
                    ctx,
                    node.func,
                    "dynamically built metric name; use a helper from "
                    "repro.obs.names (e.g. cache_hits(kind)) so the "
                    "shape stays registered",
                )


class JRS005FloatEquality(Rule):
    """Exact float equality in the signal-processing layers is a trap.

    Correlation thresholds and GF-polynomial intermediates live in
    ``float64``; ``==`` against a float literal encodes an accidental
    bit-pattern dependence.  Compare against integers, use tolerances
    (``math.isclose``/``np.isclose``), or restructure.
    """

    code = "JRS005"
    severity = Severity.ERROR
    description = "no float ==/!= comparisons in dsss/ and ecc/"
    node_types = (ast.Compare,)

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.path_in("/dsss/", "/ecc/")

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterable[Violation]:
        assert isinstance(node, ast.Compare)
        if not any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            return
        operands = [node.left, *node.comparators]
        for operand in operands:
            if isinstance(operand, ast.Constant) and isinstance(
                operand.value, float
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"float equality against {operand.value!r}; use "
                    "math.isclose/np.isclose or an integer "
                    "representation",
                )
                return


class JRS006MutableDefault(Rule):
    """A mutable default argument is shared across every call."""

    code = "JRS006"
    severity = Severity.ERROR
    description = "no mutable default arguments"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "deque"}
    )

    def _is_mutable(self, default: ast.expr) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(default, ast.Call):
            func = default.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else ""
            )
            return name in self._MUTABLE_CALLS
        return False

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterable[Violation]:
        args = node.args  # type: ignore[attr-defined]
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None and self._is_mutable(default):
                yield self.violation(
                    ctx,
                    default,
                    "mutable default argument is evaluated once and "
                    "shared across calls; default to None or an "
                    "immutable value",
                )


class JRS007PoolBoundaryPickle(Rule):
    """Work shipped to a process pool must be pickle-safe.

    Lambdas, nested functions, and locally defined classes cannot be
    pickled; handing one to ``pool.map``/``run_parallel`` fails only at
    runtime, on the largest configured fan-out.
    """

    code = "JRS007"
    severity = Severity.ERROR
    description = (
        "no lambdas/closures/local classes crossing the process-pool "
        "boundary"
    )
    node_types = (ast.Call,)

    _POOL_METHODS = frozenset(
        {
            "map",
            "map_async",
            "imap",
            "imap_unordered",
            "starmap",
            "starmap_async",
            "apply",
            "apply_async",
            "submit",
        }
    )
    _POOL_FUNCTIONS = frozenset({"run_parallel"})
    _POOL_KEYWORDS = frozenset({"initializer", "func", "callback"})

    def _boundary_kind(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in self._POOL_METHODS:
                return f".{func.attr}"
            return None
        if isinstance(func, ast.Name) and func.id in self._POOL_FUNCTIONS:
            return func.id
        return None

    def _unpicklable(
        self, arg: ast.expr, ctx: ModuleContext
    ) -> Optional[str]:
        if isinstance(arg, ast.Lambda):
            return "a lambda"
        if isinstance(arg, ast.Name) and arg.id in ctx.nested_defs:
            if arg.id in ctx.module_scope_defs:
                return None  # also defined at module scope: ambiguous
            return f"locally defined '{arg.id}'"
        return None

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterable[Violation]:
        assert isinstance(node, ast.Call)
        boundary = self._boundary_kind(node)
        if boundary is None:
            return
        candidates: List[Tuple[ast.expr, str]] = [
            (arg, f"argument {i}") for i, arg in enumerate(node.args)
        ]
        candidates.extend(
            (kw.value, f"keyword '{kw.arg}'")
            for kw in node.keywords
            if kw.arg in self._POOL_KEYWORDS
        )
        for arg, where in candidates:
            reason = self._unpicklable(arg, ctx)
            if reason is not None:
                yield self.violation(
                    ctx,
                    arg,
                    f"{reason} passed to pool boundary '{boundary}' "
                    f"({where}) cannot be pickled; move it to module "
                    "scope",
                )


class JRS008ThreadSharedState(ProjectRule):
    """State shared with a ``threading.Thread`` needs lock discipline.

    For every class that spawns a thread on one of its own methods
    (``threading.Thread(target=self.x)``): an attribute that is
    plain-written outside ``__init__`` and touched both by the thread
    target's reachable methods and by the public API is *shared*, and
    every access to it outside ``__init__`` must sit inside a
    ``with self._lock:`` (any lock-named attribute) block.  Container
    mutations through a stable reference (``self._jobs.append``,
    ``self._workers[k] = v``) don't make the *attribute* shared — the
    reference never changes — which keeps single-owner dispatcher
    state such as per-job bookkeeping out of scope.
    """

    code = "JRS008"
    severity = Severity.ERROR
    description = (
        "attributes shared between a threading.Thread target and "
        "public methods must be accessed under 'with self._lock'"
    )

    def check_project(self, index: ProjectIndex) -> Iterable[Violation]:
        for summary in index.summaries:
            for cls in summary.classes:
                yield from self._check_class(summary, cls)

    def _check_class(
        self, summary: ModuleSummary, cls: ClassSummary
    ) -> Iterable[Violation]:
        targets = cls.thread_targets
        if not targets:
            return
        thread_set = reachable_methods(cls, targets)
        if not thread_set:
            return
        written_outside_init: Set[str] = set()
        thread_touched: Set[str] = set()
        public_touched: Set[str] = set()
        for method in cls.methods:
            if method.name == "__init__":
                continue
            for access in method.accesses:
                if access.write:
                    written_outside_init.add(access.attr)
                if method.name in thread_set:
                    thread_touched.add(access.attr)
                if method.public:
                    public_touched.add(access.attr)
        shared = written_outside_init & thread_touched & public_touched
        if not shared:
            return
        target_list = ", ".join(sorted(set(targets)))
        for method in cls.methods:
            if method.name == "__init__":
                continue
            for access in method.accesses:
                if access.attr not in shared or access.locked:
                    continue
                yield self.violation_at(
                    summary.path,
                    access.line,
                    access.col,
                    f"'self.{access.attr}' is shared between thread "
                    f"target '{target_list}' and public methods of "
                    f"'{cls.name}' but accessed here "
                    f"(in '{method.name}') outside 'with self._lock'",
                )


class JRS009TransitivePoolPickle(ProjectRule):
    """Pickle-safety must hold through helper-call chains.

    JRS007 checks the literal call site; this rule follows the project
    call graph.  If helper ``h(fn)`` forwards ``fn`` to
    ``pool.submit``/``run_parallel`` (possibly through further
    helpers), then passing a lambda or nested function *to h* is the
    same bug, one hop removed — it still dies un-picklable at fan-out
    time.
    """

    code = "JRS009"
    severity = Severity.ERROR
    description = (
        "no lambdas/closures reaching a process-pool boundary through "
        "helper functions (transitive JRS007)"
    )

    def check_project(self, index: ProjectIndex) -> Iterable[Violation]:
        tainted = tainted_boundary_params(index)
        for summary in index.summaries:
            for fn in summary.functions:
                for call in fn.calls:
                    slots = tainted.get(call.callee)
                    if not slots:
                        continue
                    callee = index.functions.get(call.callee)
                    if callee is None:
                        continue  # builtin boundaries are JRS007's
                    for arg in call.args:
                        if arg.kind not in ("lambda", "local_def"):
                            continue
                        position = _callee_param_position(callee, arg)
                        if position is None or position not in slots:
                            continue
                        what = (
                            "a lambda"
                            if arg.kind == "lambda"
                            else f"locally defined '{arg.name}'"
                        )
                        short = call.callee.rsplit(".", 1)[-1]
                        yield self.violation_at(
                            summary.path,
                            arg.line,
                            arg.col,
                            f"{what} passed to '{short}' reaches a "
                            "process-pool boundary (parameter "
                            f"'{callee.params[position]}' of "
                            f"{call.callee}) and cannot be pickled; "
                            "move it to module scope",
                        )


#: Leaf packages any layer may import.
_LAYER_LEAVES: FrozenSet[str] = frozenset({"errors", "version"})

#: The docs/architecture.md dependency DAG: package -> packages it may
#: import at module scope.  ``TYPE_CHECKING`` and function-scope
#: imports are exempt (they cannot create import-time coupling and are
#: the sanctioned escape hatches for back references).
_LAYER_ALLOWED: Dict[str, FrozenSet[str]] = {
    "errors": frozenset(),
    "version": frozenset(),
    "obs": frozenset(),
    "utils": frozenset({"obs"}),
    "ecc": frozenset({"obs", "utils"}),
    "sim": frozenset({"obs", "utils", "ecc"}),
    "predistribution": frozenset({"obs", "utils"}),
    "adversary": frozenset(
        {"obs", "utils", "sim", "predistribution"}
    ),
    "dsss": frozenset({"obs", "utils", "ecc", "adversary"}),
    "crypto": frozenset({"obs", "utils", "dsss"}),
    "core": frozenset(
        {
            "obs", "utils", "ecc", "sim", "dsss", "crypto",
            "adversary", "predistribution",
        }
    ),
    "analysis": frozenset(
        {"obs", "utils", "core", "sim", "predistribution"}
    ),
    "faults": frozenset({"obs", "utils", "core", "sim"}),
    "experiments": frozenset(
        {
            "obs", "utils", "ecc", "sim", "dsss", "crypto", "core",
            "adversary", "predistribution", "analysis", "faults",
        }
    ),
    "campaigns": frozenset(
        {
            "obs", "utils", "ecc", "sim", "dsss", "crypto", "core",
            "adversary", "predistribution", "analysis", "faults",
            "experiments",
        }
    ),
    "lint": frozenset({"obs", "utils"}),
    "cli": frozenset(
        {
            "obs", "utils", "ecc", "sim", "dsss", "crypto", "core",
            "adversary", "predistribution", "analysis", "faults",
            "experiments", "campaigns",
        }
    ),
    "__main__": frozenset({"cli"}),
}


class JRS010ArchitectureLayering(ProjectRule):
    """The package DAG in docs/architecture.md is load-bearing.

    ``utils``/``obs`` are leaves; ``sim``/``dsss``/``ecc`` must never
    import ``experiments``/``campaigns``/``cli``; and module-level
    import cycles are forbidden outright.  Violations here are how
    "the PHY layer quietly grew a dependency on the campaign runner"
    happens.
    """

    code = "JRS010"
    severity = Severity.ERROR
    description = (
        "imports must respect the docs/architecture.md package DAG; "
        "no module-level import cycles"
    )

    @staticmethod
    def _target_package(target: str) -> Optional[str]:
        parts = target.split(".")
        if parts[0] != "repro" or len(parts) < 2:
            return None  # stdlib/third-party, or the root facade
        return parts[1]

    def check_project(self, index: ProjectIndex) -> Iterable[Violation]:
        for summary in index.summaries:
            source_package = ProjectIndex.package_of(summary.module)
            allowed = _LAYER_ALLOWED.get(source_package)
            if allowed is None:
                continue  # root facade or a package outside the DAG
            reported: Set[Tuple[int, str]] = set()
            for record in summary.imports:
                if record.type_checking or record.function_scope:
                    continue
                target_package = self._target_package(record.target)
                if target_package is None:
                    continue
                if target_package == source_package:
                    continue
                if target_package in _LAYER_LEAVES:
                    continue
                if target_package not in _LAYER_ALLOWED:
                    continue
                if target_package in allowed:
                    continue
                key = (record.line, target_package)
                if key in reported:
                    continue
                reported.add(key)
                yield self.violation_at(
                    summary.path,
                    record.line,
                    record.col,
                    f"layering violation: '{source_package}' must not "
                    f"import '{target_package}' "
                    f"(via '{record.target}'); see the package DAG in "
                    "docs/architecture.md — use a TYPE_CHECKING or "
                    "function-scope import if a back reference is "
                    "unavoidable",
                )
        for cycle in find_import_cycles(index):
            anchor = index.by_module.get(cycle[0])
            line, col = 1, 0
            if anchor is not None:
                members = set(cycle)
                for target, record in index.import_edges(
                    cycle[0], include_lazy=False
                ):
                    if target in members:
                        line, col = record.line, record.col
                        break
            yield self.violation_at(
                anchor.path if anchor is not None else cycle[0],
                line,
                col,
                "module-level import cycle: "
                + " -> ".join(cycle)
                + " -> ... ; break it with a TYPE_CHECKING or "
                "function-scope import",
            )


class JRS011RngProvenance(ProjectRule):
    """Generators in sim/dsss/faults must flow from ``utils.rng``.

    Seeded construction satisfies JRS001, but two call sites seeding
    ``default_rng(42)`` independently still decouple their streams
    from the experiment's ``SeedSequencer`` tree — kill/resume
    bit-identity and the per-run seed audit both break.  Inside the
    simulated world (``sim/``, ``dsss/``, ``faults/``), every
    ``numpy.random.Generator`` must be minted by ``repro.utils.rng``
    (``derive_rng`` / ``SeedSequencer`` children) — constructing one
    directly, via an alias, via a helper that transitively returns a
    fresh generator, or as a dataclass ``default_factory`` is flagged.
    """

    code = "JRS011"
    severity = Severity.ERROR
    description = (
        "numpy Generators in sim/, dsss/, faults/ must be derived via "
        "repro.utils.rng, not constructed in place"
    )

    _SCOPE = ("/sim/", "/dsss/", "/faults/")

    def _in_scope(self, path: str) -> bool:
        posix = Path(path).as_posix()
        return any(fragment in posix for fragment in self._SCOPE)

    def check_project(self, index: ProjectIndex) -> Iterable[Violation]:
        producers = tainted_rng_producers(index)
        for summary in index.summaries:
            if not self._in_scope(summary.path):
                continue
            for site in summary.rng_sites:
                yield self.violation_at(
                    summary.path,
                    site.line,
                    site.col,
                    f"fresh numpy Generator constructed via {site.via} "
                    "inside the simulated world; derive it from "
                    "repro.utils.rng (derive_rng / SeedSequencer) so "
                    "it hangs off the experiment seed tree",
                )
            for fn in summary.functions:
                for call in fn.calls:
                    if call.callee not in producers:
                        continue
                    yield self.violation_at(
                        summary.path,
                        call.line,
                        call.col,
                        f"'{call.callee}' transitively returns a "
                        "fresh numpy Generator; inside sim/dsss/faults "
                        "generators must be derived via repro.utils.rng",
                    )
            for ref in summary.factory_refs:
                if (
                    ref.ref not in producers
                    and ref.ref not in RNG_CONSTRUCTORS
                ):
                    continue
                yield self.violation_at(
                    summary.path,
                    ref.line,
                    ref.col,
                    f"dataclass default_factory '{ref.ref}' mints a "
                    "fresh numpy Generator per instance; inject a "
                    "Generator derived via repro.utils.rng instead",
                )


ALL_RULES: Tuple[type, ...] = (
    JRS001UnseededRandomness,
    JRS002WallClock,
    JRS003BroadExcept,
    JRS004UnregisteredMetricName,
    JRS005FloatEquality,
    JRS006MutableDefault,
    JRS007PoolBoundaryPickle,
)

#: Cross-module rules, run in phase 2 over the ProjectIndex.
PROJECT_RULES: Tuple[type, ...] = (
    JRS008ThreadSharedState,
    JRS009TransitivePoolPickle,
    JRS010ArchitectureLayering,
    JRS011RngProvenance,
)

#: code -> rule class, for --select/--ignore validation and docs.
RULES_BY_CODE: Dict[str, type] = {
    rule.code: rule for rule in (*ALL_RULES, *PROJECT_RULES)
}


def default_rules(config: LintConfig) -> List[Rule]:
    """Instantiate the per-file rule pack against ``config``."""
    return [rule_cls(config) for rule_cls in ALL_RULES]


def default_project_rules(config: LintConfig) -> List[ProjectRule]:
    """Instantiate the cross-module rule pack against ``config``."""
    return [
        rule_cls(config)
        for rule_cls in PROJECT_RULES
        if config.enabled(rule_cls.code)
    ]

"""The JR-SND determinism rule pack (JRS001–JRS007).

Each rule guards one invariant the reproduction's headline claims rest
on — seeded randomness only, no wall-clock inside the simulated world,
narrow excepts, registered metric names, no float equality in the
signal-processing layers, no mutable defaults, and pickle-safe pool
boundaries.  See ``docs/architecture.md`` ("Static analysis &
determinism lints") for the rationale table and the policy for adding
a rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.engine import (
    Fix,
    LintConfig,
    ModuleContext,
    Rule,
    Severity,
    Violation,
)
from repro.obs import names as _metric_names

__all__ = [
    "JRS001UnseededRandomness",
    "JRS002WallClock",
    "JRS003BroadExcept",
    "JRS004UnregisteredMetricName",
    "JRS005FloatEquality",
    "JRS006MutableDefault",
    "JRS007PoolBoundaryPickle",
    "ALL_RULES",
    "default_rules",
]


class JRS001UnseededRandomness(Rule):
    """Unseeded randomness breaks run-for-run reproducibility.

    Every stochastic draw must flow from a ``numpy.random.Generator``
    derived via :mod:`repro.utils.rng`; stdlib ``random.*``, legacy
    ``numpy.random.*`` module functions, and an argless
    ``default_rng()`` all read hidden global state.
    """

    code = "JRS001"
    severity = Severity.ERROR
    description = (
        "no unseeded randomness: stdlib random.*, legacy np.random.*, "
        "or argless default_rng() outside utils/rng.py"
    )
    node_types = (ast.Call,)

    #: numpy.random attributes that are seeded-construction APIs, not
    #: hidden-global draws.
    _NUMPY_OK = frozenset(
        {"default_rng", "SeedSequence", "Generator", "BitGenerator"}
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.path_endswith("utils/rng.py")

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterable[Violation]:
        assert isinstance(node, ast.Call)
        target = ctx.resolve_call_chain(node.func)
        if target is None:
            return
        if target == "random" or target.startswith("random."):
            yield self.violation(
                ctx,
                node,
                f"call to stdlib '{target}' reads hidden global RNG "
                "state; draw from a Generator provided by "
                "repro.utils.rng instead",
            )
            return
        if not target.startswith("numpy.random."):
            return
        attr = target[len("numpy.random."):]
        if attr == "default_rng":
            if not node.args and not node.keywords:
                yield self.violation(
                    ctx,
                    node,
                    "default_rng() without a seed is entropy-seeded "
                    "and irreproducible; pass a seed or derive via "
                    "repro.utils.rng",
                )
            return
        if "." not in attr and attr not in self._NUMPY_OK:
            yield self.violation(
                ctx,
                node,
                f"legacy 'numpy.random.{attr}' uses the hidden global "
                "RandomState; use a seeded Generator instead",
            )


class JRS002WallClock(Rule):
    """Wall-clock reads inside the simulated world desynchronize runs.

    Simulation, protocol, and PHY code must tell time via the event
    loop (``Simulator.now``), never via the host clock — a wall-clock
    read makes behaviour depend on machine load.
    """

    code = "JRS002"
    severity = Severity.ERROR
    description = (
        "no wall-clock (time.time, datetime.now, ...) in sim/, "
        "core/, dsss/"
    )
    node_types = (ast.Call,)

    _BANNED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.path_in("/sim/", "/core/", "/dsss/")

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterable[Violation]:
        assert isinstance(node, ast.Call)
        target = ctx.resolve_call_chain(node.func)
        if target in self._BANNED:
            yield self.violation(
                ctx,
                node,
                f"'{target}' reads the host clock inside the simulated "
                "world; use the event loop's Simulator.now",
            )


class JRS003BroadExcept(Rule):
    """Broad excepts swallow the invariant breaches the soaks hunt for.

    A ``except Exception`` around protocol or decode logic silently
    converts a codec bug into 'channel noise'; handlers must name the
    concrete error families they expect.
    """

    code = "JRS003"
    severity = Severity.ERROR
    description = "no bare/broad except outside the allowlist"
    node_types = (ast.ExceptHandler,)

    _BROAD = frozenset({"Exception", "BaseException"})

    def applies_to(self, ctx: ModuleContext) -> bool:
        allowlist = self.config.broad_except_allowlist
        return not (allowlist and ctx.path_endswith(*allowlist))

    def _broad_name(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name) and expr.id in self._BROAD:
            return expr.id
        if isinstance(expr, ast.Attribute) and expr.attr in self._BROAD:
            return expr.attr
        return None

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterable[Violation]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield self.violation(
                ctx,
                node,
                "bare 'except:' catches everything including "
                "KeyboardInterrupt; name the concrete error types",
            )
            return
        exprs: Sequence[ast.expr]
        if isinstance(node.type, ast.Tuple):
            exprs = node.type.elts
        else:
            exprs = [node.type]
        for expr in exprs:
            name = self._broad_name(expr)
            if name is not None:
                yield self.violation(
                    ctx,
                    node,
                    f"'except {name}' is too broad; name the concrete "
                    "error types (see repro.errors) or suppress with "
                    "a justification",
                )


class JRS004UnregisteredMetricName(Rule):
    """Metric names must come from the ``repro.obs.names`` registry.

    A typo'd counter name silently no-ops — the counter is written but
    nothing ever reads it.  Literals must be declared in
    ``obs/names.py``; dynamic names must be built by one of its
    helpers.  A *registered* literal is only a warning (prefer the
    constant) and is mechanically rewritten by ``--fix``.
    """

    code = "JRS004"
    severity = Severity.ERROR
    description = (
        "metric names passed to repro.obs must be declared in "
        "repro.obs.names (literals registered, dynamics via helpers)"
    )
    node_types = (ast.Call,)

    _METHODS = frozenset(
        {
            "inc",
            "gauge",
            "gauge_max",
            "observe",
            "record_seconds",
            "timer",
            "event",
            "increment",
            "count",
            "_count",
            "counter",
        }
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.path_endswith("obs/names.py")

    def _names_alias(self, ctx: ModuleContext) -> Tuple[str, Optional[str]]:
        """(attribute prefix, import line to add or None)."""
        for bound, target in ctx.aliases.items():
            if target == "repro.obs.names":
                return bound, None
        return "_names", "from repro.obs import names as _names"

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterable[Violation]:
        assert isinstance(node, ast.Call)
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in self._METHODS:
            return
        if not node.args:
            return
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name = arg.value
            if not _metric_names.looks_like_metric_name(name):
                return  # not metric-shaped: list.count("x"), etc.
            if not _metric_names.is_registered(name):
                yield self.violation(
                    ctx,
                    node.func,
                    f"metric name '{name}' is not declared in "
                    "repro.obs.names; a typo here silently no-ops — "
                    "declare the constant and report through it",
                )
                return
            constant = _metric_names.CONSTANT_FOR.get(name)
            if constant is None:
                return  # helper-shaped literal: nothing to rewrite to
            alias, new_import = self._names_alias(ctx)
            fix = Fix(
                line=arg.lineno,
                col=arg.col_offset,
                end_line=arg.end_lineno or arg.lineno,
                end_col=arg.end_col_offset or arg.col_offset,
                replacement=f"{alias}.{constant}",
                new_import=new_import,
            )
            yield self.violation(
                ctx,
                node.func,
                f"registered metric name '{name}' written as a raw "
                f"literal; use {alias}.{constant} (auto-fixable)",
                fix=fix,
                severity=Severity.WARNING,
            )
            return
        if isinstance(arg, ast.JoinedStr):
            prefix = ""
            if arg.values and isinstance(arg.values[0], ast.Constant):
                prefix = str(arg.values[0].value)
            if "." in prefix or not prefix:
                yield self.violation(
                    ctx,
                    node.func,
                    "dynamically built metric name; use a helper from "
                    "repro.obs.names (e.g. cache_hits(kind)) so the "
                    "shape stays registered",
                )


class JRS005FloatEquality(Rule):
    """Exact float equality in the signal-processing layers is a trap.

    Correlation thresholds and GF-polynomial intermediates live in
    ``float64``; ``==`` against a float literal encodes an accidental
    bit-pattern dependence.  Compare against integers, use tolerances
    (``math.isclose``/``np.isclose``), or restructure.
    """

    code = "JRS005"
    severity = Severity.ERROR
    description = "no float ==/!= comparisons in dsss/ and ecc/"
    node_types = (ast.Compare,)

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.path_in("/dsss/", "/ecc/")

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterable[Violation]:
        assert isinstance(node, ast.Compare)
        if not any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            return
        operands = [node.left, *node.comparators]
        for operand in operands:
            if isinstance(operand, ast.Constant) and isinstance(
                operand.value, float
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"float equality against {operand.value!r}; use "
                    "math.isclose/np.isclose or an integer "
                    "representation",
                )
                return


class JRS006MutableDefault(Rule):
    """A mutable default argument is shared across every call."""

    code = "JRS006"
    severity = Severity.ERROR
    description = "no mutable default arguments"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "deque"}
    )

    def _is_mutable(self, default: ast.expr) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(default, ast.Call):
            func = default.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else ""
            )
            return name in self._MUTABLE_CALLS
        return False

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterable[Violation]:
        args = node.args  # type: ignore[attr-defined]
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None and self._is_mutable(default):
                yield self.violation(
                    ctx,
                    default,
                    "mutable default argument is evaluated once and "
                    "shared across calls; default to None or an "
                    "immutable value",
                )


class JRS007PoolBoundaryPickle(Rule):
    """Work shipped to a process pool must be pickle-safe.

    Lambdas, nested functions, and locally defined classes cannot be
    pickled; handing one to ``pool.map``/``run_parallel`` fails only at
    runtime, on the largest configured fan-out.
    """

    code = "JRS007"
    severity = Severity.ERROR
    description = (
        "no lambdas/closures/local classes crossing the process-pool "
        "boundary"
    )
    node_types = (ast.Call,)

    _POOL_METHODS = frozenset(
        {
            "map",
            "map_async",
            "imap",
            "imap_unordered",
            "starmap",
            "starmap_async",
            "apply",
            "apply_async",
            "submit",
        }
    )
    _POOL_FUNCTIONS = frozenset({"run_parallel"})
    _POOL_KEYWORDS = frozenset({"initializer", "func", "callback"})

    def _boundary_kind(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in self._POOL_METHODS:
                return f".{func.attr}"
            return None
        if isinstance(func, ast.Name) and func.id in self._POOL_FUNCTIONS:
            return func.id
        return None

    def _unpicklable(
        self, arg: ast.expr, ctx: ModuleContext
    ) -> Optional[str]:
        if isinstance(arg, ast.Lambda):
            return "a lambda"
        if isinstance(arg, ast.Name) and arg.id in ctx.nested_defs:
            if arg.id in ctx.module_scope_defs:
                return None  # also defined at module scope: ambiguous
            return f"locally defined '{arg.id}'"
        return None

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterable[Violation]:
        assert isinstance(node, ast.Call)
        boundary = self._boundary_kind(node)
        if boundary is None:
            return
        candidates: List[Tuple[ast.expr, str]] = [
            (arg, f"argument {i}") for i, arg in enumerate(node.args)
        ]
        candidates.extend(
            (kw.value, f"keyword '{kw.arg}'")
            for kw in node.keywords
            if kw.arg in self._POOL_KEYWORDS
        )
        for arg, where in candidates:
            reason = self._unpicklable(arg, ctx)
            if reason is not None:
                yield self.violation(
                    ctx,
                    arg,
                    f"{reason} passed to pool boundary '{boundary}' "
                    f"({where}) cannot be pickled; move it to module "
                    "scope",
                )


ALL_RULES: Tuple[type, ...] = (
    JRS001UnseededRandomness,
    JRS002WallClock,
    JRS003BroadExcept,
    JRS004UnregisteredMetricName,
    JRS005FloatEquality,
    JRS006MutableDefault,
    JRS007PoolBoundaryPickle,
)

#: code -> rule class, for --select/--ignore validation and docs.
RULES_BY_CODE: Dict[str, type] = {
    rule.code: rule for rule in ALL_RULES
}


def default_rules(config: LintConfig) -> List[Rule]:
    """Instantiate the full rule pack against ``config``."""
    return [rule_cls(config) for rule_cls in ALL_RULES]

"""Two-phase project analysis: per-file rules + cross-module rules.

:func:`lint_project` is the full engine the CLI drives:

1. **Phase 1** parses every file once (optionally across ``--jobs N``
   worker processes), runs the per-file rule pack, and builds a
   :class:`~repro.lint.graph.ModuleSummary`.  Results are cached per
   file by content hash under ``.repro-lint-cache/``.
2. **Phase 2** assembles the :class:`~repro.lint.graph.ProjectIndex`
   and runs the cross-module rules (JRS008–JRS011).  Per-file
   phase-2 findings are cached under the file's *project digest* — a
   hash over the file and its transitive import closure — and the
   whole phase is skipped when no file's digest changed.

Both phases honor the same justified-``noqa`` suppressions; phase-2
suppression lines travel inside the cached summaries so warm runs
filter identically to cold ones.
"""

from __future__ import annotations

import ast
import concurrent.futures
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.cache import CacheEntry, LintCache
from repro.lint.engine import (
    LintConfig,
    ModuleContext,
    ProjectRule,
    Rule,
    Violation,
    iter_python_files,
    lint_module_context,
    parse_suppressions,
    syntax_error_violation,
)
from repro.lint.graph import (
    ModuleSummary,
    ProjectIndex,
    content_hash,
    module_name_for_path,
    summarize_module,
)
from repro.lint.rules import (
    RULE_PACK_VERSION,
    default_project_rules,
    default_rules,
)

__all__ = ["ProjectLintStats", "ProjectLintResult", "lint_project"]


@dataclass
class ProjectLintStats:
    """What a run actually did — reported on stderr and in JSON."""

    files_checked: int = 0
    #: Files parsed and analyzed this run (cache misses).
    files_analyzed: int = 0
    #: Files whose phase-1 results were served from cache.
    cache_hits: int = 0
    #: Files whose cross-module findings were recomputed.
    project_reanalyzed: int = 0
    #: Whether phase 2 executed at all this run.
    project_phase_ran: bool = False

    def to_json(self) -> Dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "files_analyzed": self.files_analyzed,
            "cache_hits": self.cache_hits,
            "project_reanalyzed": self.project_reanalyzed,
            "project_phase_ran": self.project_phase_ran,
        }


@dataclass
class ProjectLintResult:
    violations: List[Violation] = field(default_factory=list)
    stats: ProjectLintStats = field(default_factory=ProjectLintStats)


def _analyze_file(
    path: str, source: str, config: LintConfig
) -> Tuple[List[Violation], ModuleSummary]:
    """Phase 1 for one file: per-file findings + module summary."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        empty = ModuleSummary(
            path=path,
            module=module_name_for_path(path),
            source_hash=content_hash(source),
            imports=(),
            classes=(),
            functions=(),
            rng_sites=(),
            factory_refs=(),
        )
        return [syntax_error_violation(path, exc)], empty
    ctx = ModuleContext(path, source, tree)
    suppressions, hygiene = parse_suppressions(source, path)
    rules: Sequence[Rule] = default_rules(config)
    violations = lint_module_context(
        ctx, rules, config, suppressions, hygiene
    )
    summary = summarize_module(
        ctx,
        {line: s.codes for line, s in suppressions.items()},
    )
    return violations, summary


def _analyze_worker(
    task: Tuple[str, str, LintConfig],
) -> Tuple[str, List[Violation], ModuleSummary]:
    # Module-scope so it crosses the ProcessPoolExecutor boundary
    # (JRS007 applies to this engine too).
    path, source, config = task
    violations, summary = _analyze_file(path, source, config)
    return path, violations, summary


def _run_phase1(
    tasks: List[Tuple[str, str, LintConfig]], jobs: int
) -> Dict[str, Tuple[List[Violation], ModuleSummary]]:
    results: Dict[str, Tuple[List[Violation], ModuleSummary]] = {}
    if jobs <= 1 or len(tasks) <= 1:
        for path, source, config in tasks:
            results[path] = _analyze_file(path, source, config)
        return results
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=jobs
    ) as executor:
        for path, violations, summary in executor.map(
            _analyze_worker, tasks, chunksize=8
        ):
            results[path] = (violations, summary)
    return results


def _filter_suppressed(
    violations: Sequence[Violation],
    by_path: Dict[str, ModuleSummary],
) -> List[Violation]:
    kept: List[Violation] = []
    for violation in violations:
        summary = by_path.get(violation.path)
        if summary is not None and violation.rule in (
            summary.suppressed_codes(violation.line)
        ):
            continue
        kept.append(violation)
    return kept


def lint_project(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    *,
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
    project_rules: Optional[Sequence[ProjectRule]] = None,
) -> ProjectLintResult:
    """Run both phases over every ``.py`` file under ``paths``."""
    config = config or LintConfig()
    pack_key = f"{RULE_PACK_VERSION}|{config.signature()}"
    cache = LintCache(
        cache_dir if cache_dir is not None else Path(".repro-lint-cache"),
        pack_key,
    )
    if use_cache:
        cache.load()

    stats = ProjectLintStats()
    file_paths: List[str] = []
    sources: Dict[str, str] = {}
    hashes: Dict[str, str] = {}
    for file_path in iter_python_files(paths):
        text = str(file_path)
        file_paths.append(text)
        source = file_path.read_text(encoding="utf-8")
        sources[text] = source
        hashes[text] = content_hash(source)
    stats.files_checked = len(file_paths)

    # ---- phase 1: per-file rules + summaries -------------------------
    per_file: Dict[str, List[Violation]] = {}
    summaries: Dict[str, ModuleSummary] = {}
    misses: List[Tuple[str, str, LintConfig]] = []
    for path in file_paths:
        entry = cache.get(path, hashes[path]) if use_cache else None
        if entry is not None:
            per_file[path] = entry.violations
            summaries[path] = entry.summary
            stats.cache_hits += 1
        else:
            misses.append((path, sources[path], config))
    stats.files_analyzed = len(misses)
    for path, (violations, summary) in _run_phase1(misses, jobs).items():
        per_file[path] = violations
        summaries[path] = summary
        cache.put(path, CacheEntry(hashes[path], violations, summary))

    # ---- phase 2: cross-module rules over the index ------------------
    index = ProjectIndex([summaries[path] for path in file_paths])
    by_path = {summary.path: summary for summary in index.summaries}
    digests: Dict[str, str] = {
        path: index.project_digest(summaries[path].module, pack_key)
        for path in file_paths
    }
    dirty = [
        path
        for path in file_paths
        if not use_cache
        or (entry := cache.entries.get(path)) is None
        or entry.project_digest != digests[path]
    ]
    project_violations: List[Violation] = []
    if dirty:
        stats.project_phase_ran = True
        stats.project_reanalyzed = len(dirty)
        rules = (
            list(project_rules)
            if project_rules is not None
            else default_project_rules(config)
        )
        raw: List[Violation] = []
        for rule in rules:
            raw.extend(rule.check_project(index))
        project_violations = _filter_suppressed(raw, by_path)
        grouped: Dict[str, List[Violation]] = {
            path: [] for path in file_paths
        }
        for violation in project_violations:
            grouped.setdefault(violation.path, []).append(violation)
        for path in file_paths:
            entry = cache.entries.get(path)
            if entry is None:
                continue
            entry.project_digest = digests[path]
            entry.project_violations = grouped.get(path, [])
    else:
        for path in file_paths:
            entry = cache.entries.get(path)
            if entry is not None:
                project_violations.extend(entry.project_violations)

    if use_cache:
        cache.prune(tuple(file_paths))
        cache.save()

    violations: List[Violation] = []
    for path in file_paths:
        violations.extend(per_file[path])
    violations.extend(project_violations)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return ProjectLintResult(violations=violations, stats=stats)

"""Mechanical fixing: apply the single-span edits rules attach.

Only rules whose remediation is a pure text substitution attach a
:class:`~repro.lint.engine.Fix` (today: JRS004's registered-literal →
``names`` constant rewrite).  Edits are applied bottom-up so earlier
spans never shift, and a required import line is inserted once per
file, after the last existing ``repro`` import (or the first import
block).  Running the fixer twice is a no-op: the rewritten call sites
no longer produce fixable findings.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.engine import Violation

__all__ = ["apply_fixes"]


def _insert_import(lines: List[str], import_line: str) -> None:
    """Insert ``import_line`` at the most idiomatic position."""
    if any(line.strip() == import_line for line in lines):
        return
    last_repro = None
    last_import = None
    for index, line in enumerate(lines):
        stripped = line.strip()
        if stripped.startswith(("import ", "from ")):
            last_import = index
            if stripped.startswith(("from repro", "import repro")):
                last_repro = index
    if last_repro is not None:
        lines.insert(last_repro + 1, import_line)
    elif last_import is not None:
        lines.insert(last_import + 1, import_line)
    else:
        lines.insert(0, import_line)


def _apply_to_text(text: str, fixable: Sequence[Violation]) -> str:
    lines = text.splitlines(keepends=True)
    # Bottom-up, right-to-left: spans never shift under later edits.
    ordered = sorted(
        (v for v in fixable if v.fix is not None),
        key=lambda v: (v.fix.line, v.fix.col),  # type: ignore[union-attr]
        reverse=True,
    )
    imports_needed: List[str] = []
    for violation in ordered:
        fix = violation.fix
        assert fix is not None
        if fix.line != fix.end_line:
            continue  # multi-line spans are never emitted today
        row = fix.line - 1
        line = lines[row]
        lines[row] = (
            line[: fix.col] + fix.replacement + line[fix.end_col:]
        )
        if fix.new_import and fix.new_import not in imports_needed:
            imports_needed.append(fix.new_import)
    if imports_needed:
        stripped = [line.rstrip("\n") for line in lines]
        for import_line in imports_needed:
            _insert_import(stripped, import_line)
        return "\n".join(stripped) + "\n"
    return "".join(lines)


def apply_fixes(
    violations: Sequence[Violation],
) -> Tuple[int, List[str]]:
    """Apply every attached fix; returns (edits applied, files touched).

    Violations are grouped per file so each file is read and written
    exactly once.
    """
    by_path: Dict[str, List[Violation]] = {}
    for violation in violations:
        if violation.fix is not None:
            by_path.setdefault(violation.path, []).append(violation)
    touched: List[str] = []
    applied = 0
    for path, fixable in sorted(by_path.items()):
        file_path = Path(path)
        original = file_path.read_text(encoding="utf-8")
        updated = _apply_to_text(original, fixable)
        if updated != original:
            file_path.write_text(updated, encoding="utf-8")
            touched.append(path)
            applied += len(fixable)
    return applied, touched

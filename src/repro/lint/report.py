"""Human and JSON reporters for lint findings.

The JSON document is versioned (``schema: repro.lint/2``) because CI
uploads it as an artifact and downstream tooling diffs reports across
commits — the same contract discipline as ``MetricsSnapshot``.  v2
added the optional ``stats`` block (incremental-cache and phase-2
accounting from :class:`~repro.lint.project.ProjectLintStats`).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional, Sequence

from repro.lint.engine import Severity, Violation

__all__ = ["render_human", "render_json", "JSON_SCHEMA"]

JSON_SCHEMA = "repro.lint/2"


def render_human(
    violations: Sequence[Violation], files_checked: int
) -> str:
    """One ``path:line:col CODE message`` row per finding + summary."""
    lines: List[str] = []
    for violation in violations:
        marker = " [fixable]" if violation.fixable else ""
        lines.append(
            f"{violation.path}:{violation.line}:{violation.col + 1} "
            f"{violation.rule} {violation.severity.value}: "
            f"{violation.message}{marker}"
        )
    errors = sum(
        1 for v in violations if v.severity is Severity.ERROR
    )
    warnings = len(violations) - errors
    fixable = sum(1 for v in violations if v.fixable)
    if violations:
        summary = (
            f"{len(violations)} finding(s) in {files_checked} file(s): "
            f"{errors} error(s), {warnings} warning(s)"
        )
        if fixable:
            summary += f"; {fixable} fixable with --fix"
    else:
        summary = f"{files_checked} file(s) checked: clean"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    violations: Sequence[Violation],
    files_checked: int,
    stats: Optional[Dict[str, object]] = None,
) -> str:
    """Stable machine-readable report (sorted, schema-tagged)."""
    by_rule: Dict[str, int] = dict(
        sorted(Counter(v.rule for v in violations).items())
    )
    document: Dict[str, object] = {
        "schema": JSON_SCHEMA,
        "files_checked": files_checked,
        "counts": {
            "total": len(violations),
            "errors": sum(
                1 for v in violations if v.severity is Severity.ERROR
            ),
            "warnings": sum(
                1 for v in violations if v.severity is Severity.WARNING
            ),
            "fixable": sum(1 for v in violations if v.fixable),
            "by_rule": by_rule,
        },
        "violations": [v.to_json() for v in violations],
    }
    if stats is not None:
        document["stats"] = stats
    return json.dumps(document, indent=2, sort_keys=False)

"""``python -m repro.lint`` — the determinism lint gate.

Examples::

    python -m repro.lint src/                 # human report, exit 1 on errors
    python -m repro.lint src/ --format json   # machine-readable report
    python -m repro.lint src/ --fix           # apply mechanical rewrites
    python -m repro.lint --list-rules         # the JRS rule pack

Exit codes: 0 clean (warnings allowed unless ``--fail-on-warnings``),
1 findings at failing severity, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.lint.engine import (
    LintConfig,
    Severity,
    lint_paths,
    strip_fixed,
)
from repro.lint.fixes import apply_fixes
from repro.lint.report import render_human, render_json
from repro.lint.rules import RULES_BY_CODE, default_rules

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "JR-SND determinism lints: AST rules guarding seeded "
            "randomness, simulated time, narrow excepts, registered "
            "metric names, and pickle-safe pool boundaries."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical fixes (JRS004 literal → names constant)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--fail-on-warnings",
        action="store_true",
        help="treat warnings as failures for the exit code",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule pack and exit",
    )
    return parser


def _parse_codes(
    raw: Optional[str], parser: argparse.ArgumentParser
) -> Optional[Set[str]]:
    if raw is None:
        return None
    codes = {code.strip().upper() for code in raw.split(",") if code.strip()}
    unknown = codes - set(RULES_BY_CODE)
    if unknown:
        parser.error(
            f"unknown rule code(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(RULES_BY_CODE))}"
        )
    return codes


def _list_rules() -> str:
    lines = ["The JR-SND rule pack:"]
    for code in sorted(RULES_BY_CODE):
        rule_cls = RULES_BY_CODE[code]
        lines.append(
            f"  {code}  [{rule_cls.severity.value}]  "
            f"{rule_cls.description}"
        )
    lines.append(
        "Suppress per line with "
        "'# jrsnd: noqa(CODE) -- justification' (justification "
        "required)."
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    for raw in args.paths:
        if not Path(raw).exists():
            parser.error(f"path does not exist: {raw}")
    config = LintConfig(
        select=_parse_codes(args.select, parser),
        ignore=_parse_codes(args.ignore, parser) or set(),
    )
    rules = default_rules(config)
    violations, files_checked = lint_paths(args.paths, rules, config)

    fixed_paths: List[str] = []
    if args.fix:
        applied, fixed_paths = apply_fixes(violations)
        if applied:
            # Re-lint: the report must describe the tree on disk.
            violations, files_checked = lint_paths(
                args.paths, rules, config
            )
        violations = strip_fixed(violations)

    report = (
        render_json(violations, files_checked)
        if args.format == "json"
        else render_human(violations, files_checked)
    )
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    if args.fix and fixed_paths and args.format == "human":
        print(
            f"fixed {len(fixed_paths)} file(s): "
            + ", ".join(fixed_paths),
            file=sys.stderr,
        )

    failing = [
        v
        for v in violations
        if v.severity is Severity.ERROR or args.fail_on_warnings
    ]
    return 1 if failing else 0

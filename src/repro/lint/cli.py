"""``python -m repro.lint`` — the determinism lint gate.

Examples::

    python -m repro.lint src/                 # human report, exit 1 on errors
    python -m repro.lint src/ --format json   # machine-readable report
    python -m repro.lint src/ --format sarif  # SARIF 2.1.0 for code scanning
    python -m repro.lint src/ --jobs 4        # parallel phase-1 parsing
    python -m repro.lint src/ --no-cache      # ignore .repro-lint-cache/
    python -m repro.lint src/ --fix           # apply mechanical rewrites
    python -m repro.lint --list-rules         # the JRS rule pack

Exit codes: 0 clean (warnings allowed unless ``--fail-on-warnings``),
1 findings at failing severity, 2 usage error.

Runs are two-phase (per-file rules, then the cross-module JRS008–
JRS011 pack over the project index) and incremental by default: cached
results live under ``.repro-lint-cache/`` keyed by content hash and
rule-pack version.  A stats/timing line goes to stderr so report
output on stdout stays machine-parseable.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence, Set

from repro.lint.engine import LintConfig, Severity, strip_fixed
from repro.lint.fixes import apply_fixes
from repro.lint.project import ProjectLintResult, lint_project
from repro.lint.report import render_human, render_json
from repro.lint.rules import RULES_BY_CODE
from repro.lint.sarif import render_sarif
from repro.obs import current as _obs_current
from repro.obs import names as _names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "JR-SND determinism lints: per-file AST rules guarding "
            "seeded randomness, simulated time, narrow excepts, "
            "registered metric names, and pickle-safe pool "
            "boundaries, plus cross-module rules for thread-shared "
            "state, transitive picklability, architecture layering, "
            "and RNG provenance."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="additionally write a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse/analyze files across N worker processes",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro-lint-cache",
        metavar="DIR",
        help="incremental cache location (default: .repro-lint-cache)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical fixes (JRS004 literal → names constant)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--fail-on-warnings",
        action="store_true",
        help="treat warnings as failures for the exit code",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule pack and exit",
    )
    return parser


def _parse_codes(
    raw: Optional[str], parser: argparse.ArgumentParser
) -> Optional[Set[str]]:
    if raw is None:
        return None
    codes = {code.strip().upper() for code in raw.split(",") if code.strip()}
    unknown = codes - set(RULES_BY_CODE)
    if unknown:
        parser.error(
            f"unknown rule code(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(RULES_BY_CODE))}"
        )
    return codes


def _list_rules() -> str:
    lines = ["The JR-SND rule pack:"]
    for code in sorted(RULES_BY_CODE):
        rule_cls = RULES_BY_CODE[code]
        lines.append(
            f"  {code}  [{rule_cls.severity.value}]  "
            f"{rule_cls.description}"
        )
    lines.append(
        "Suppress per line with "
        "'# jrsnd: noqa(CODE) -- justification' (justification "
        "required)."
    )
    return "\n".join(lines)


def _report_obs(result: ProjectLintResult) -> None:
    registry = _obs_current()
    stats = result.stats
    registry.inc(_names.LINT_FILES_ANALYZED, stats.files_analyzed)
    registry.inc(_names.LINT_CACHE_HITS, stats.cache_hits)
    registry.inc(_names.LINT_PROJECT_REANALYZED, stats.project_reanalyzed)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    for raw in args.paths:
        if not Path(raw).exists():
            parser.error(f"path does not exist: {raw}")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    config = LintConfig(
        select=_parse_codes(args.select, parser),
        ignore=_parse_codes(args.ignore, parser) or set(),
    )

    started = time.perf_counter()
    result = lint_project(
        args.paths,
        config,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=Path(args.cache_dir),
    )
    violations = result.violations

    fixed_paths: Sequence[str] = []
    if args.fix:
        applied, fixed_paths = apply_fixes(violations)
        if applied:
            # Re-lint: the report must describe the tree on disk.
            result = lint_project(
                args.paths,
                config,
                jobs=args.jobs,
                use_cache=not args.no_cache,
                cache_dir=Path(args.cache_dir),
            )
            violations = result.violations
        violations = strip_fixed(violations)
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    _report_obs(result)

    stats = result.stats
    if args.format == "sarif":
        report = render_sarif(violations).rstrip("\n")
    elif args.format == "json":
        report = render_json(
            violations, stats.files_checked, stats.to_json()
        )
    else:
        report = render_human(violations, stats.files_checked)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    if args.sarif:
        Path(args.sarif).write_text(
            render_sarif(violations), encoding="utf-8"
        )
    if args.fix and fixed_paths and args.format == "human":
        print(
            f"fixed {len(fixed_paths)} file(s): "
            + ", ".join(fixed_paths),
            file=sys.stderr,
        )
    print(
        f"[repro.lint] {stats.files_checked} file(s), "
        f"{stats.files_analyzed} analyzed, "
        f"{stats.cache_hits} cache hit(s), "
        f"project phase {'ran' if stats.project_phase_ran else 'cached'} "
        f"({stats.project_reanalyzed} reanalyzed), "
        f"{elapsed_ms:.0f} ms",
        file=sys.stderr,
    )

    failing = [
        v
        for v in violations
        if v.severity is Severity.ERROR or args.fail_on_warnings
    ]
    return 1 if failing else 0

"""repro.lint — determinism-aware static analysis for JR-SND.

The reproduction's headline claims (bit-identical backend parity, the
exact ``(l-1)·γ`` DoS bound, seeded chaos soaks) rest on conventions —
seeded RNG only, simulated time only, narrowed excepts, registered
metric names — that nothing structural used to enforce.  This package
is the enforcement: an AST rule engine (:mod:`repro.lint.engine`), the
JRS001–JRS007 per-file pack plus the JRS008–JRS011 cross-module pack
(:mod:`repro.lint.rules`), the project index and flow analyses behind
phase 2 (:mod:`repro.lint.graph`, :mod:`repro.lint.flow`), the
two-phase orchestrator with its incremental cache
(:mod:`repro.lint.project`, :mod:`repro.lint.cache`), human/JSON/SARIF
reporters (:mod:`repro.lint.report`, :mod:`repro.lint.sarif`), a
mechanical fixer (:mod:`repro.lint.fixes`), and the ``python -m
repro.lint`` CLI (:mod:`repro.lint.cli`) that CI runs as a required
gate.

Quick use::

    python -m repro.lint src/              # gate: exit 1 on errors
    python -m repro.lint src/ --jobs 4     # parallel phase-1 parsing
    python -m repro.lint src/ --fix        # rewrite literals to names.*
    python -m repro.lint --list-rules
"""

from repro.lint.engine import (
    Fix,
    LintConfig,
    ModuleContext,
    ProjectRule,
    Rule,
    Severity,
    Violation,
    lint_paths,
    lint_source,
)
from repro.lint.graph import ModuleSummary, ProjectIndex, summarize_module
from repro.lint.project import (
    ProjectLintResult,
    ProjectLintStats,
    lint_project,
)
from repro.lint.rules import (
    ALL_RULES,
    PROJECT_RULES,
    RULE_PACK_VERSION,
    RULES_BY_CODE,
    default_project_rules,
    default_rules,
)

__all__ = [
    "Fix",
    "LintConfig",
    "ModuleContext",
    "ModuleSummary",
    "ProjectIndex",
    "ProjectLintResult",
    "ProjectLintStats",
    "ProjectRule",
    "Rule",
    "Severity",
    "Violation",
    "lint_paths",
    "lint_project",
    "lint_source",
    "summarize_module",
    "ALL_RULES",
    "PROJECT_RULES",
    "RULE_PACK_VERSION",
    "RULES_BY_CODE",
    "default_project_rules",
    "default_rules",
]

"""repro.lint — determinism-aware static analysis for JR-SND.

The reproduction's headline claims (bit-identical backend parity, the
exact ``(l-1)·γ`` DoS bound, seeded chaos soaks) rest on conventions —
seeded RNG only, simulated time only, narrowed excepts, registered
metric names — that nothing structural used to enforce.  This package
is the enforcement: an AST rule engine (:mod:`repro.lint.engine`), the
JRS001–JRS007 rule pack (:mod:`repro.lint.rules`), human/JSON
reporters (:mod:`repro.lint.report`), a mechanical fixer
(:mod:`repro.lint.fixes`), and the ``python -m repro.lint`` CLI
(:mod:`repro.lint.cli`) that CI runs as a required gate.

Quick use::

    python -m repro.lint src/              # gate: exit 1 on errors
    python -m repro.lint src/ --fix        # rewrite literals to names.*
    python -m repro.lint --list-rules
"""

from repro.lint.engine import (
    Fix,
    LintConfig,
    ModuleContext,
    Rule,
    Severity,
    Violation,
    lint_paths,
    lint_source,
)
from repro.lint.rules import ALL_RULES, RULES_BY_CODE, default_rules

__all__ = [
    "Fix",
    "LintConfig",
    "ModuleContext",
    "Rule",
    "Severity",
    "Violation",
    "lint_paths",
    "lint_source",
    "ALL_RULES",
    "RULES_BY_CODE",
    "default_rules",
]

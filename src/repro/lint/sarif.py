"""SARIF 2.1.0 output for CI code-scanning integration.

Produces a minimal, schema-valid static-analysis log: one run, one
tool (``repro.lint``), the rule metadata from the pack, and one result
per violation with a physical location.  SARIF levels map from the
engine's two severities (``ERROR`` → ``error``, ``WARNING`` →
``warning``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence

from repro.lint.engine import Severity, Violation
from repro.lint.rules import RULE_PACK_VERSION, RULES_BY_CODE

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: JRS000 is the reserved suppression-hygiene code, not a rule class.
_SUPPRESSION_RULE = {
    "id": "JRS000",
    "shortDescription": {
        "text": "suppression hygiene: justified noqa required"
    },
}


def _tool_rules() -> List[Dict[str, object]]:
    rules: List[Dict[str, object]] = [dict(_SUPPRESSION_RULE)]
    for code in sorted(RULES_BY_CODE):
        rule_cls = RULES_BY_CODE[code]
        rules.append(
            {
                "id": code,
                "shortDescription": {
                    "text": str(rule_cls.description)
                },
            }
        )
    return rules


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def render_sarif(violations: Sequence[Violation]) -> str:
    """Serialize ``violations`` as one SARIF 2.1.0 document."""
    rules = _tool_rules()
    rule_index = {
        str(rule["id"]): index for index, rule in enumerate(rules)
    }
    results: List[Dict[str, object]] = []
    for violation in violations:
        uri = Path(violation.path).as_posix()
        results.append(
            {
                "ruleId": violation.rule,
                "ruleIndex": rule_index.get(violation.rule, -1),
                "level": _level(violation.severity),
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": uri},
                            "region": {
                                "startLine": max(1, violation.line),
                                # SARIF columns are 1-based.
                                "startColumn": violation.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "version": RULE_PACK_VERSION,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False) + "\n"

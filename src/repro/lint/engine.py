"""AST lint engine: rule framework, suppressions, and the file runner.

The engine is deliberately small and deterministic: each file is parsed
once, every enabled rule registers the node types it cares about, and a
single walk dispatches nodes to rules.  Rules never see each other and
never mutate the tree, so adding a rule cannot perturb another rule's
findings.

Suppressions are per-line comments of the form::

    risky_call()  # jrsnd: noqa(JRS003) -- pool boundary must trap all

The justification after ``--`` is **required**: a suppression without
one does not suppress anything and is itself reported as ``JRS000``.
This keeps every waiver self-documenting — the same policy sanitizer
allowlists use.

See :mod:`repro.lint.rules` for the JR-SND rule pack and
:mod:`repro.lint.cli` for the command-line front end.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from enum import Enum
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:
    from repro.lint.graph import ProjectIndex

__all__ = [
    "Severity",
    "Fix",
    "Violation",
    "LintConfig",
    "ModuleContext",
    "Rule",
    "ProjectRule",
    "Suppression",
    "SUPPRESSION_CODE",
    "parse_suppressions",
    "lint_source",
    "lint_module_context",
    "lint_paths",
    "iter_python_files",
    "syntax_error_violation",
]

#: Reserved code for suppression-hygiene findings (never a real rule).
SUPPRESSION_CODE = "JRS000"

_NOQA_RE = re.compile(
    r"#\s*jrsnd:\s*noqa\(\s*(?P<codes>[A-Za-z0-9_,\s]+?)\s*\)"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


class Severity(Enum):
    """How a finding affects the exit code.

    ``ERROR`` findings fail the run; ``WARNING`` findings are reported
    (and fixed by ``--fix`` where mechanical) but only fail under
    ``--fail-on-warnings``.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Fix:
    """A mechanical single-span text replacement.

    Positions are 1-based line / 0-based column, matching ``ast`` node
    coordinates.  ``new_import`` names a module-level import line the
    fixer must guarantee exists before the replacement makes sense.
    """

    line: int
    col: int
    end_line: int
    end_col: int
    replacement: str
    new_import: Optional[str] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "end_col": self.end_col,
            "replacement": self.replacement,
            "new_import": self.new_import,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "Fix":
        return cls(
            line=int(data["line"]),  # type: ignore[call-overload]
            col=int(data["col"]),  # type: ignore[call-overload]
            end_line=int(data["end_line"]),  # type: ignore[call-overload]
            end_col=int(data["end_col"]),  # type: ignore[call-overload]
            replacement=str(data["replacement"]),
            new_import=(
                None
                if data["new_import"] is None
                else str(data["new_import"])
            ),
        )


@dataclass(frozen=True)
class Violation:
    """One finding, addressed by file position."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    fix: Optional[Fix] = None

    @property
    def fixable(self) -> bool:
        return self.fix is not None

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fixable": self.fixable,
        }
        return payload

    def to_cache_json(self) -> Dict[str, object]:
        """Full round-trip payload (the incremental cache needs the
        fix spans back, not just the ``fixable`` flag)."""
        payload = self.to_json()
        payload["fix"] = None if self.fix is None else self.fix.to_json()
        return payload

    @classmethod
    def from_cache_json(cls, data: Mapping[str, object]) -> "Violation":
        fix_data = data.get("fix")
        return cls(
            rule=str(data["rule"]),
            severity=Severity(str(data["severity"])),
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            col=int(data["col"]),  # type: ignore[call-overload]
            message=str(data["message"]),
            fix=(
                None
                if fix_data is None
                else Fix.from_json(fix_data)  # type: ignore[arg-type]
            ),
        )


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# jrsnd: noqa(...)`` comment."""

    line: int
    codes: Tuple[str, ...]
    justification: str


@dataclass
class LintConfig:
    """Engine configuration: rule selection and per-rule allowlists."""

    #: Rule codes to run; ``None`` means every registered rule.
    select: Optional[Set[str]] = None
    #: Rule codes to skip.
    ignore: Set[str] = field(default_factory=set)
    #: Path suffixes (posix) where JRS003 broad excepts are permitted.
    broad_except_allowlist: Tuple[str, ...] = ()

    def enabled(self, code: str) -> bool:
        if code in self.ignore:
            return False
        return self.select is None or code in self.select

    def signature(self) -> str:
        """Stable text form folded into cache keys: results computed
        under one configuration must never be served under another."""
        select = (
            "*" if self.select is None else ",".join(sorted(self.select))
        )
        return "|".join(
            (
                f"select={select}",
                f"ignore={','.join(sorted(self.ignore))}",
                "allow=" + ",".join(self.broad_except_allowlist),
            )
        )


class ModuleContext:
    """Everything a rule may consult about the module being linted.

    Built once per file: the parse tree, a parent map, the set of
    names bound by *nested* (non-module-scope) ``def``/``class``
    statements, and resolved import aliases (``np`` → ``numpy``,
    ``nprand`` → ``numpy.random`` …).
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.posix_path = Path(path).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.parents: Dict[ast.AST, ast.AST] = {}
        self.module_scope_defs: Set[str] = set()
        self.nested_defs: Set[str] = set()
        self.aliases: Dict[str, str] = {}
        self._index()

    def _index(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        for node in ast.walk(self.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if self.in_function_scope(node):
                    self.nested_defs.add(node.name)
                else:
                    self.module_scope_defs.add(node.name)
            elif isinstance(node, ast.Import):
                for name in node.names:
                    bound = name.asname or name.name.split(".")[0]
                    target = name.name if name.asname else bound
                    self.aliases[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports: not resolvable here
                for name in node.names:
                    bound = name.asname or name.name
                    self.aliases[bound] = f"{node.module}.{name.name}"

    def in_function_scope(self, node: ast.AST) -> bool:
        """True if ``node`` sits (transitively) inside a function."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return True
            current = self.parents.get(current)
        return False

    def resolve_call_chain(self, func: ast.expr) -> Optional[str]:
        """Resolve a ``Name``/``Attribute`` chain to a dotted module
        path using the module's import aliases.

        ``np.random.default_rng`` (after ``import numpy as np``)
        resolves to ``numpy.random.default_rng``; chains rooted at
        anything that is not an imported name resolve to ``None``.
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def path_in(self, *fragments: str) -> bool:
        """True if the module's path contains any of ``fragments``."""
        return any(fragment in self.posix_path for fragment in fragments)

    def path_endswith(self, *suffixes: str) -> bool:
        return any(self.posix_path.endswith(suffix) for suffix in suffixes)


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`code`, :attr:`severity`, :attr:`description`,
    and :attr:`node_types`, then implement :meth:`check`.  A rule may
    restrict itself to a path scope by overriding :meth:`applies_to`.
    """

    code: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: AST node classes dispatched to :meth:`check`.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def applies_to(self, ctx: ModuleContext) -> bool:
        return True

    def check(
        self, node: ast.AST, ctx: ModuleContext
    ) -> Iterable[Violation]:
        raise NotImplementedError

    # -- helpers -------------------------------------------------------

    def violation(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        message: str,
        fix: Optional[Fix] = None,
        severity: Optional[Severity] = None,
    ) -> Violation:
        return Violation(
            rule=self.code,
            severity=severity or self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            fix=fix,
        )


class ProjectRule:
    """Base class for one cross-module (phase-2) rule.

    Unlike :class:`Rule`, a project rule sees the whole
    :class:`~repro.lint.graph.ProjectIndex` at once and emits findings
    for any file in it.  Project rules must be pure functions of the
    index: the incremental cache replays their findings from cached
    summaries, so consulting anything else (the filesystem, the clock)
    would make warm runs diverge from cold ones.
    """

    code: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check_project(
        self, index: "ProjectIndex"
    ) -> Iterable[Violation]:
        raise NotImplementedError

    def violation_at(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Violation:
        return Violation(
            rule=self.code,
            severity=severity or self.severity,
            path=path,
            line=line,
            col=col,
            message=message,
        )


def _comment_tokens(source: str) -> Iterator[Tuple[int, int, str]]:
    """Yield ``(line, col, text)`` for every real comment token.

    Tokenizing (rather than scanning raw lines) keeps suppression
    syntax inside string literals and docstrings — such as this
    engine's own documentation — from being parsed as suppressions.
    """
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError):
        return  # ast.parse already vetted the file; be permissive here


def parse_suppressions(
    source: str, path: str
) -> Tuple[Dict[int, Suppression], List[Violation]]:
    """Extract per-line suppressions and suppression-hygiene findings."""
    suppressions: Dict[int, Suppression] = {}
    hygiene: List[Violation] = []
    for lineno, start_col, comment in _comment_tokens(source):
        match = _NOQA_RE.search(comment)
        if match is None:
            if "jrsnd:" in comment and "noqa" in comment:
                hygiene.append(
                    Violation(
                        rule=SUPPRESSION_CODE,
                        severity=Severity.ERROR,
                        path=path,
                        line=lineno,
                        col=start_col,
                        message=(
                            "malformed suppression; expected "
                            "'# jrsnd: noqa(CODE) -- justification'"
                        ),
                    )
                )
            continue
        codes = tuple(
            code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        why = (match.group("why") or "").strip()
        bad_codes = [
            code for code in codes if not re.fullmatch(r"JRS\d{3}", code)
        ]
        if not codes or bad_codes:
            hygiene.append(
                Violation(
                    rule=SUPPRESSION_CODE,
                    severity=Severity.ERROR,
                    path=path,
                    line=lineno,
                    col=start_col + match.start(),
                    message=(
                        "suppression names no valid rule codes "
                        f"(got {', '.join(bad_codes) or 'nothing'}); "
                        "expected JRSnnn"
                    ),
                )
            )
            continue
        if not why:
            hygiene.append(
                Violation(
                    rule=SUPPRESSION_CODE,
                    severity=Severity.ERROR,
                    path=path,
                    line=lineno,
                    col=start_col + match.start(),
                    message=(
                        "suppression requires a justification: "
                        "'# jrsnd: noqa("
                        + ", ".join(codes)
                        + ") -- <why this is safe>'"
                    ),
                )
            )
            continue
        suppressions[lineno] = Suppression(
            line=lineno, codes=codes, justification=why
        )
    return suppressions, hygiene


def syntax_error_violation(path: str, exc: SyntaxError) -> Violation:
    return Violation(
        rule=SUPPRESSION_CODE,
        severity=Severity.ERROR,
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        message=f"syntax error: {exc.msg}",
    )


def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
    config: Optional[LintConfig] = None,
) -> List[Violation]:
    """Lint one module's source text and return ordered findings."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [syntax_error_violation(path, exc)]
    ctx = ModuleContext(path, source, tree)
    suppressions, hygiene = parse_suppressions(source, path)
    return lint_module_context(ctx, rules, config, suppressions, hygiene)


def lint_module_context(
    ctx: ModuleContext,
    rules: Sequence[Rule],
    config: LintConfig,
    suppressions: Dict[int, Suppression],
    hygiene: Sequence[Violation],
) -> List[Violation]:
    """Run per-file rules over an already-parsed module.

    Split out of :func:`lint_source` so the project analyzer can parse
    once and feed the same tree to both the per-file rules and the
    phase-1 summarizer.
    """
    findings: List[Violation] = list(hygiene)
    active = [
        rule
        for rule in rules
        if config.enabled(rule.code) and rule.applies_to(ctx)
    ]
    dispatch: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in active:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)

    for node in ast.walk(ctx.tree):
        for rule in dispatch.get(type(node), ()):
            findings.extend(rule.check(node, ctx))

    kept: List[Violation] = []
    for violation in findings:
        suppression = suppressions.get(violation.line)
        if (
            suppression is not None
            and violation.rule in suppression.codes
            and violation.rule != SUPPRESSION_CODE
        ):
            continue
        kept.append(violation)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return kept


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, deterministically."""
    seen: Set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates: Iterable[Path] = [root]
        else:
            candidates = sorted(root.rglob("*.py"))
        for candidate in candidates:
            if candidate.suffix != ".py":
                continue
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def lint_paths(
    paths: Sequence[str],
    rules: Sequence[Rule],
    config: Optional[LintConfig] = None,
) -> Tuple[List[Violation], int]:
    """Lint every file under ``paths``; returns (findings, files)."""
    violations: List[Violation] = []
    checked = 0
    for file_path in iter_python_files(paths):
        checked += 1
        source = file_path.read_text(encoding="utf-8")
        violations.extend(
            lint_source(source, str(file_path), rules, config)
        )
    return violations, checked


def strip_fixed(
    violations: Iterable[Violation],
) -> List[Violation]:
    """Copies of ``violations`` with fix payloads removed (post-fix
    re-reporting: the finding stood, the mechanical edit was applied)."""
    return [replace(v, fix=None) for v in violations]

"""repro.faults — deterministic fault injection for the event stack.

JR-SND's claim is graceful operation on an adversarial channel, but the
paper's probabilistic jammer is only one adversary.  This package turns
the event-driven simulation into a chaos harness: a seeded, schedulable
:class:`FaultPlan` composes injectors for

- chip-burst jamming windows (:class:`~repro.faults.injectors.BurstJammer`),
- probabilistic / targeted message drop (:class:`~repro.faults.injectors.MessageDrop`),
- duplicate delivery (:class:`~repro.faults.injectors.Duplicator`),
- reordered delivery (:class:`~repro.faults.injectors.Reorderer`),
- node crash/restart and churn (:class:`~repro.faults.injectors.NodeChurn`),
- per-node clock skew and drift (:class:`~repro.faults.injectors.ClockSkew`),

and hooks them into the kernel through two narrow APIs: the
:class:`~repro.sim.medium.FaultHook` protocol on
:class:`~repro.sim.medium.RadioMedium` (transmission start + per-receiver
delivery) and the :class:`~repro.sim.engine.SimObserver` slot on
:class:`~repro.sim.engine.Simulator` (per-event clock observation, used
by the :class:`~repro.faults.invariants.InvariantChecker`).

Determinism contract: all fault randomness derives from the plan's own
seed via label-derived child streams, so attaching a plan never perturbs
any other random stream — and a :class:`NullFaultPlan` (or a plan with
no injectors) is bit-identical to running with no plan at all.

Everything the layer does is visible as ``faults.*`` counters in the
installed :mod:`repro.obs` registry and on ``FaultPlan.counters``.

A second, *execution-plane* family (:mod:`repro.faults.execution`)
targets the worker-pool supervisor instead of the channel: seeded
:class:`WorkerKiller`, :class:`RunHang`, and :class:`SlowWorker`
injectors composed by an :class:`ExecutionFaultPlan` and driven through
a test-only hook at the pool boundary, so respawn/retry/quarantine
behaviour is just as deterministic as the jammed channel.
"""

from repro.faults.execution import (
    ExecutionFault,
    ExecutionFaultPlan,
    RunHang,
    SlowWorker,
    WorkerKiller,
)
from repro.faults.injectors import (
    BurstJammer,
    ClockSkew,
    Duplicator,
    FaultInjector,
    MessageDrop,
    NodeChurn,
    Reorderer,
)
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.plan import FaultPlan, NullFaultPlan

__all__ = [
    "FaultPlan",
    "NullFaultPlan",
    "FaultInjector",
    "BurstJammer",
    "MessageDrop",
    "Duplicator",
    "Reorderer",
    "NodeChurn",
    "ClockSkew",
    "InvariantChecker",
    "InvariantViolation",
    "ExecutionFault",
    "ExecutionFaultPlan",
    "WorkerKiller",
    "RunHang",
    "SlowWorker",
]

"""Execution-plane fault injectors for the worker-pool supervisor.

The channel-plane injectors (:mod:`repro.faults.injectors`) made the
protocol stack deterministically testable under jamming and loss; this
module does the same for the *compute* plane.  An
:class:`ExecutionFaultPlan` is handed to a
:class:`~repro.experiments.pool.WorkerPool` (test-only hook) and rides
into every worker process; immediately before a worker executes run
``index`` on attempt ``attempt`` it calls
``plan.before_run(index, attempt)``, giving the injectors a precise,
seeded place to kill, hang, or slow the worker:

- :class:`WorkerKiller` — SIGKILLs the worker from inside (the closest
  deterministic stand-in for the OOM killer), either from an explicit
  ``{run_index: kills}`` map or a seeded per-run draw;
- :class:`RunHang` — wedges the worker in a long sleep so per-run soft
  timeouts can classify and reap it; optionally ignores ``SIGTERM`` to
  exercise the ``close()`` terminate→kill escalation;
- :class:`SlowWorker` — adds a fixed per-run delay, for supervision
  overhead and backoff measurements.

Determinism contract: kills are gated on *attempt* (an injector that
kills ``k`` times lets attempt ``k`` through), and the seeded variant
draws from :func:`repro.utils.rng.derive_rng` keyed by run index alone
— so a respawned worker makes exactly the same decisions as its
predecessor, and the supervisor's retry path is reproducible bit for
bit.  Runs themselves are seed-pure, so a retried run is identical to
an uninjected one; the plan perturbs *scheduling*, never results.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.utils.rng import derive_rng

__all__ = [
    "ExecutionFault",
    "ExecutionFaultPlan",
    "RunHang",
    "SlowWorker",
    "WorkerKiller",
]


class ExecutionFault:
    """Base class for execution-plane injectors.

    Subclasses are frozen dataclasses (picklable — they cross the
    process boundary at worker spawn) and implement
    :meth:`before_run`, called in the *worker* process immediately
    before each run attempt.
    """

    def before_run(self, run_index: int, attempt: int) -> None:
        """Hook invoked in the worker before executing a run attempt."""
        raise NotImplementedError


@dataclass(frozen=True)
class WorkerKiller(ExecutionFault):
    """SIGKILL the worker from inside, before selected run attempts.

    With an explicit ``kills`` map, run ``i`` kills its worker on
    attempts ``0 .. kills[i]-1`` and executes normally from attempt
    ``kills[i]`` on.  Without one, each run index draws once from a
    seeded stream: with probability ``rate`` it kills its first
    ``max_kills`` attempts.  Keeping ``max_kills`` at or below the
    pool's ``max_run_retries`` therefore guarantees every run
    eventually succeeds — the configuration the chaos CI job uses to
    assert that zero quarantined runs leak into results.
    """

    kills: Optional[Mapping[int, int]] = None
    seed: int = 0
    rate: float = 0.0
    max_kills: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"WorkerKiller rate must be in [0, 1], got {self.rate}"
            )
        if self.max_kills < 0:
            raise ConfigurationError(
                f"WorkerKiller max_kills must be >= 0, got {self.max_kills}"
            )

    def kills_for(self, run_index: int) -> int:
        """How many attempts of ``run_index`` this injector will kill."""
        if self.kills is not None:
            return int(self.kills.get(run_index, 0))
        if self.rate <= 0.0 or self.max_kills == 0:
            return 0
        rng = derive_rng(self.seed, f"worker-killer.{run_index}")
        return self.max_kills if float(rng.random()) < self.rate else 0

    def before_run(self, run_index: int, attempt: int) -> None:
        if attempt < self.kills_for(run_index):
            # Suicide by SIGKILL: no cleanup, no exit handlers — the
            # parent sees exactly what an OOM kill looks like.
            os.kill(os.getpid(), signal.SIGKILL)


@dataclass(frozen=True)
class RunHang(ExecutionFault):
    """Wedge the worker in a long sleep before selected run attempts.

    ``hangs`` maps run index → number of attempts to hang (attempt
    ``hangs[i]`` proceeds normally).  With ``ignore_sigterm`` the
    worker first disarms ``SIGTERM``, modelling a process stuck in
    uninterruptible state — only ``SIGKILL`` can reap it, which is
    what the ``close()`` escalation regression test needs.
    """

    hangs: Mapping[int, int]
    duration: float = 60.0
    ignore_sigterm: bool = False

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise ConfigurationError(
                f"RunHang duration must be > 0, got {self.duration}"
            )

    def before_run(self, run_index: int, attempt: int) -> None:
        if attempt < int(self.hangs.get(run_index, 0)):
            if self.ignore_sigterm:
                signal.signal(signal.SIGTERM, signal.SIG_IGN)
            deadline = time.monotonic() + self.duration
            while time.monotonic() < deadline:
                time.sleep(min(0.05, self.duration))


@dataclass(frozen=True)
class SlowWorker(ExecutionFault):
    """Delay every run attempt by a fixed amount (overhead probes)."""

    delay: float = 0.01

    def __post_init__(self) -> None:
        if self.delay < 0.0:
            raise ConfigurationError(
                f"SlowWorker delay must be >= 0, got {self.delay}"
            )

    def before_run(self, run_index: int, attempt: int) -> None:
        if self.delay > 0.0:
            time.sleep(self.delay)


@dataclass(frozen=True)
class ExecutionFaultPlan:
    """A composable, picklable bundle of execution-plane injectors.

    An empty plan is inert (``enabled`` is False) and the pool treats
    it exactly like no plan at all, mirroring the
    :class:`~repro.faults.plan.NullFaultPlan` contract on the channel
    plane.
    """

    injectors: Tuple[ExecutionFault, ...] = ()

    @property
    def enabled(self) -> bool:
        """True if the plan carries at least one injector."""
        return bool(self.injectors)

    def before_run(self, run_index: int, attempt: int) -> None:
        """Run every injector's hook, in declaration order."""
        for injector in self.injectors:
            injector.before_run(run_index, attempt)

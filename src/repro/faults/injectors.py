"""Concrete fault injectors.

Each injector implements one fault mechanism against the hooks of
:class:`~repro.faults.plan.FaultInjector`.  They are built from plain
parameters (windows, probabilities, schedules) and receive their private
rng only at bind time, so constructing a plan draws no randomness.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import names as _names
from repro.faults.plan import FaultInjector, FaultPlan
from repro.sim.engine import Simulator
from repro.sim.medium import RadioMedium, Transmission
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
)

__all__ = [
    "BurstJammer",
    "MessageDrop",
    "Duplicator",
    "Reorderer",
    "NodeChurn",
    "ClockSkew",
]

Window = Tuple[float, float]


class BurstJammer(FaultInjector):
    """Wideband chip-burst jamming during scheduled windows.

    Unlike the paper's code-aware :class:`~repro.adversary.jammer
    .MediumJammer`, this models a dumb high-power interferer: any
    transmission overlapping a jam window has the overlapped fraction of
    its chips corrupted, whatever code it is spread with.  The ECC layer
    still applies — a message survives if the corrupted fraction stays
    within ``mu / (1 + mu)``.
    """

    name = "burst-jam"

    def __init__(self, windows: Sequence[Window]) -> None:
        cleaned: List[Window] = []
        for start, end in windows:
            if end <= start:
                raise ConfigurationError(
                    f"jam window must have end > start: ({start}, {end})"
                )
            cleaned.append((float(start), float(end)))
        self._windows = sorted(cleaned)

    @classmethod
    def periodic(
        cls, start: float, period: float, burst: float, count: int
    ) -> "BurstJammer":
        """``count`` bursts of ``burst`` seconds, one per ``period``."""
        check_non_negative("start", start)
        check_positive("period", period)
        check_positive("burst", burst)
        check_positive("count", count)
        return cls(
            [
                (start + k * period, start + k * period + burst)
                for k in range(int(count))
            ]
        )

    @property
    def windows(self) -> Tuple[Window, ...]:
        """The jam windows, sorted by start time."""
        return tuple(self._windows)

    def on_transmit(
        self, tx: Transmission, medium: RadioMedium, plan: FaultPlan
    ) -> None:
        overlap = 0.0
        for start, end in self._windows:
            if start >= tx.end:
                break
            overlap += max(0.0, min(end, tx.end) - max(start, tx.start))
        if overlap <= 0.0:
            return
        fraction = min(1.0, overlap / max(tx.duration, 1e-12))
        medium.jam(tx, tx.code_key, fraction)
        plan.count(_names.FAULTS_BURST_JAMMED)


class MessageDrop(FaultInjector):
    """Probabilistic and/or targeted delivery loss.

    ``probability`` applies per (transmission, receiver) pair; optional
    ``senders`` / ``receivers`` restrict which deliveries are at risk,
    giving targeted drop (e.g. only frames from one node).
    """

    name = "drop"

    def __init__(
        self,
        probability: float,
        senders: Optional[Sequence[int]] = None,
        receivers: Optional[Sequence[int]] = None,
    ) -> None:
        check_fraction("probability", probability)
        self._probability = float(probability)
        self._senders = None if senders is None else frozenset(senders)
        self._receivers = (
            None if receivers is None else frozenset(receivers)
        )
        self._rng: Optional[np.random.Generator] = None

    def bind(
        self, simulator: Simulator, rng: np.random.Generator
    ) -> None:
        self._rng = rng

    def drops(self, tx: Transmission, node: int, now: float) -> bool:
        if self._senders is not None and tx.sender not in self._senders:
            return False
        if self._receivers is not None and node not in self._receivers:
            return False
        return bool(self._rng.random() < self._probability)


class Duplicator(FaultInjector):
    """Duplicate delivery: some frames arrive twice, the copy late."""

    name = "duplicate"

    def __init__(self, probability: float, gap: float) -> None:
        check_fraction("probability", probability)
        check_positive("gap", gap)
        self._probability = float(probability)
        self._gap = float(gap)
        self._rng: Optional[np.random.Generator] = None

    def bind(
        self, simulator: Simulator, rng: np.random.Generator
    ) -> None:
        self._rng = rng

    def duplicate_delays(
        self, tx: Transmission, node: int, now: float
    ) -> Sequence[float]:
        if self._rng.random() < self._probability:
            return (self._gap,)
        return ()


class Reorderer(FaultInjector):
    """Reordered delivery: some frames are held back a random while.

    A held-back frame is overtaken by every later undelayed frame, which
    is exactly an out-of-order channel.
    """

    name = "reorder"

    def __init__(self, probability: float, max_delay: float) -> None:
        check_fraction("probability", probability)
        check_positive("max_delay", max_delay)
        self._probability = float(probability)
        self._max_delay = float(max_delay)
        self._rng: Optional[np.random.Generator] = None

    def bind(
        self, simulator: Simulator, rng: np.random.Generator
    ) -> None:
        self._rng = rng

    def delay(self, tx: Transmission, node: int, now: float) -> float:
        if self._rng.random() < self._probability:
            return float(self._rng.uniform(0.0, self._max_delay))
        return 0.0


class NodeChurn(FaultInjector):
    """Node crash/restart: radios go deaf and mute during outages.

    Protocol processes keep running during an outage (state is not
    lost), but nothing the node sends leaves the antenna and nothing
    sent to it arrives — the recovery burden falls on the retry/timeout
    and garbage-collection layers this injector exists to exercise.

    Build with an explicit schedule or :meth:`random` churn.
    """

    name = "churn"

    def __init__(
        self, outages: Sequence[Tuple[int, float, float]] = ()
    ) -> None:
        self._by_node: Dict[int, List[Window]] = {}
        self._spec: Optional[Tuple] = None
        for node, down, up in outages:
            if up <= down:
                raise ConfigurationError(
                    f"outage must have up > down: ({node}, {down}, {up})"
                )
            self._by_node.setdefault(int(node), []).append(
                (float(down), float(up))
            )
        for windows in self._by_node.values():
            windows.sort()

    @classmethod
    def random(
        cls,
        nodes: Sequence[int],
        horizon: float,
        mean_uptime: float,
        mean_downtime: float,
    ) -> "NodeChurn":
        """Exponential up/down churn for ``nodes`` over ``horizon``.

        The actual outage times are drawn at bind time from the
        injector's private stream.
        """
        check_positive("horizon", horizon)
        check_positive("mean_uptime", mean_uptime)
        check_positive("mean_downtime", mean_downtime)
        churn = cls()
        churn._spec = (
            tuple(int(n) for n in nodes),
            float(horizon),
            float(mean_uptime),
            float(mean_downtime),
        )
        return churn

    def bind(
        self, simulator: Simulator, rng: np.random.Generator
    ) -> None:
        if self._spec is None:
            return
        nodes, horizon, mean_up, mean_down = self._spec
        for node in nodes:
            t = float(rng.exponential(mean_up))
            windows: List[Window] = []
            while t < horizon:
                down_end = t + float(rng.exponential(mean_down))
                windows.append((t, min(down_end, horizon)))
                t = down_end + float(rng.exponential(mean_up))
            if windows:
                self._by_node[node] = windows

    def outages(self, node: int) -> Tuple[Window, ...]:
        """The (down, up) windows scheduled for ``node``."""
        return tuple(self._by_node.get(int(node), ()))

    def alive(self, node: int, now: float) -> bool:
        windows = self._by_node.get(node)
        if not windows:
            return True
        # Find the last window starting at or before `now`.
        position = bisect.bisect_right(windows, (now, float("inf")))
        if position == 0:
            return True
        down, up = windows[position - 1]
        return not (down <= now < up)


class ClockSkew(FaultInjector):
    """Per-node clock skew and drift, realized as delivery lag.

    In a discrete-event world a slow local clock means the node acts on
    each reception late; this injector models that as a deterministic
    per-node extra latency ``skew + drift * now`` (capped), with each
    node's skew/drift drawn once from a stable per-node stream, so the
    lag does not depend on query order.
    """

    name = "clock-skew"

    def __init__(
        self,
        max_skew: float,
        max_drift: float = 0.0,
        max_delay: Optional[float] = None,
    ) -> None:
        check_positive("max_skew", max_skew)
        check_non_negative("max_drift", max_drift)
        self._max_skew = float(max_skew)
        self._max_drift = float(max_drift)
        self._cap = (
            float(max_delay) if max_delay is not None
            else 8.0 * self._max_skew
        )
        self._base_seed: Optional[int] = None
        self._cache: Dict[int, Tuple[float, float]] = {}

    def bind(
        self, simulator: Simulator, rng: np.random.Generator
    ) -> None:
        self._base_seed = int(rng.integers(0, 2**31))

    def node_skew(self, node: int) -> Tuple[float, float]:
        """This node's (skew seconds, drift seconds-per-second)."""
        cached = self._cache.get(node)
        if cached is None:
            node_rng = np.random.default_rng(  # jrsnd: noqa(JRS011) -- per-node skew stream derived from the bound base seed; changing the derivation would shift pinned chaos-soak streams
                (self._base_seed or 0, int(node))
            )
            cached = (
                float(node_rng.uniform(0.0, self._max_skew)),
                float(node_rng.uniform(0.0, self._max_drift))
                if self._max_drift > 0.0
                else 0.0,
            )
            self._cache[node] = cached
        return cached

    def delay(self, tx: Transmission, node: int, now: float) -> float:
        skew, drift = self.node_skew(node)
        return min(skew + drift * now, self._cap)

"""The composable, seeded fault plan.

A :class:`FaultPlan` owns a list of :class:`FaultInjector` instances and
implements the medium's :class:`~repro.sim.medium.FaultHook` protocol by
composing their answers:

- a transmission is suppressed if *any* injector declares the sender
  dead (crash window) — otherwise every injector gets to inspect it
  (the burst jammer corrupts it here);
- a delivery is dropped if the receiver is dead or any injector drops
  it; otherwise the injectors' delays add up (reordering jitter + clock
  skew) and each duplicate contributes one extra copy.

All randomness comes from per-injector child streams of the plan's own
seed (via :class:`~repro.utils.rng.SeedSequencer`), so the plan is fully
reproducible and never touches the simulation's other rng streams.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.obs import current as _metrics
from repro.obs import names as _names
from repro.sim.engine import Simulator
from repro.sim.medium import RadioMedium, Transmission
from repro.utils.rng import SeedSequencer

__all__ = ["FaultInjector", "FaultPlan", "NullFaultPlan"]


class FaultInjector:
    """Base class for one fault mechanism; every hook is a no-op.

    Subclasses override the hooks they implement.  ``bind`` hands the
    injector its private rng and the simulator (for schedulable faults);
    it is called exactly once, when the owning plan is attached to a
    medium.
    """

    name = "injector"

    def bind(
        self, simulator: Simulator, rng: np.random.Generator
    ) -> None:
        """Receive the simulator and this injector's private stream."""

    def on_transmit(
        self, tx: Transmission, medium: RadioMedium, plan: "FaultPlan"
    ) -> None:
        """Inspect (e.g. jam) a transmission that is starting."""

    def alive(self, node: int, now: float) -> bool:
        """Whether ``node``'s radio is up at ``now``."""
        return True

    def drops(self, tx: Transmission, node: int, now: float) -> bool:
        """Whether this delivery is lost."""
        return False

    def delay(self, tx: Transmission, node: int, now: float) -> float:
        """Extra delivery latency in seconds (0 = on time)."""
        return 0.0

    def duplicate_delays(
        self, tx: Transmission, node: int, now: float
    ) -> Sequence[float]:
        """Offsets (relative to the primary copy) of duplicate copies."""
        return ()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FaultPlan:
    """A seeded, composable schedule of faults.

    Parameters
    ----------
    injectors:
        The fault mechanisms to compose (order fixes the rng draw order
        and is part of the plan's deterministic identity).
    seed:
        Root of the plan's private randomness.
    """

    enabled = True

    def __init__(
        self,
        injectors: Sequence[FaultInjector] = (),
        seed: int = 0,
    ) -> None:
        self._injectors: Tuple[FaultInjector, ...] = tuple(injectors)
        self._seed = int(seed)
        self._bound = False
        self.counters: Dict[str, int] = {}

    @property
    def injectors(self) -> Tuple[FaultInjector, ...]:
        """The composed injectors, in draw order."""
        return self._injectors

    def count(self, name: str, amount: int = 1) -> None:
        """Record one fault event locally and in the obs registry."""
        self.counters[name] = self.counters.get(name, 0) + int(amount)
        registry = _metrics()
        if registry.enabled:
            registry.inc(name, amount)

    # -- FaultHook protocol ---------------------------------------------

    def bind(self, simulator: Simulator) -> None:
        """Attach to a simulator: each injector gets its child stream."""
        if self._bound:
            return
        self._bound = True
        seeds = SeedSequencer(self._seed).child("faults")
        for position, injector in enumerate(self._injectors):
            injector.bind(
                simulator, seeds.rng(f"{position}:{injector.name}")
            )

    def on_transmit(self, tx: Transmission, medium: RadioMedium) -> bool:
        for injector in self._injectors:
            if not injector.alive(tx.sender, tx.start):
                self.count(_names.FAULTS_TX_SUPPRESSED)
                return False
        for injector in self._injectors:
            injector.on_transmit(tx, medium, self)
        return True

    def delivery_actions(
        self, tx: Transmission, node: int, now: float
    ) -> Sequence[float]:
        for injector in self._injectors:
            if not injector.alive(node, now):
                self.count(_names.FAULTS_RX_CRASHED)
                return ()
        for injector in self._injectors:
            if injector.drops(tx, node, now):
                self.count(_names.FAULTS_DROPPED)
                return ()
        delay = 0.0
        extra: List[float] = []
        for injector in self._injectors:
            delay += injector.delay(tx, node, now)
            extra.extend(injector.duplicate_delays(tx, node, now))
        if delay > 0.0:
            self.count(_names.FAULTS_DELAYED)
        if extra:
            self.count(_names.FAULTS_DUPLICATED, len(extra))
        actions = [delay]
        actions.extend(delay + max(0.0, offset) for offset in extra)
        return actions

    def node_alive(self, node: int, now: float) -> bool:
        """Whether every injector considers ``node`` up at ``now``."""
        return all(
            injector.alive(node, now) for injector in self._injectors
        )

    def __repr__(self) -> str:
        names = ", ".join(i.name for i in self._injectors) or "empty"
        return f"FaultPlan({names}, seed={self._seed})"


class NullFaultPlan(FaultPlan):
    """The default, zero-overhead plan: all faults off.

    ``enabled`` is False, so the medium's hot paths skip the hook after
    one attribute check — running with a ``NullFaultPlan`` is
    bit-identical to running with no plan at all.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__((), seed=0)

    def on_transmit(self, tx: Transmission, medium: RadioMedium) -> bool:
        return True

    def delivery_actions(
        self, tx: Transmission, node: int, now: float
    ) -> Sequence[float]:
        return (0.0,)

    def __repr__(self) -> str:
        return "NullFaultPlan()"

"""Safety invariants checked during and after chaos runs.

The :class:`InvariantChecker` watches the kernel clock as a
:class:`~repro.sim.engine.SimObserver` and audits a finished
:class:`~repro.experiments.scenarios.EventNetwork` for the properties no
fault schedule may break:

- **monotone sim clock** — executed event timestamps never decrease;
- **no false neighbors** — every directed logical link points at a peer
  within physical transmission range (faults may *lose* neighbors,
  never invent them);
- **no orphaned/wedged sessions** — after the stale-session GC, every
  session is ESTABLISHED, FAILED, or younger than the staleness bound;
- **monitor conservation** — each node's real-time monitoring refcounts
  equal exactly the union of monitors its live sessions hold (no leak,
  no double release), and FAILED sessions hold none;
- **counter conservation** — the global logical-link count equals
  established(dndp) + established(mndp) − expired.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.core.dndp import SessionState
from repro.obs import names as _names

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.scenarios import EventNetwork
    from repro.sim.engine import Simulator

__all__ = ["InvariantChecker", "InvariantViolation"]

# Monotonicity slack for float timestamps; the heap guarantees ordering,
# so any regression beyond rounding is a real kernel bug.
_CLOCK_EPSILON = 1e-12

# Keep the violation list bounded: one broken invariant firing per event
# must not flood memory during a long soak.
_MAX_RECORDED = 50


@dataclass(frozen=True)
class InvariantViolation:
    """One detected invariant breach."""

    name: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.name}] {self.detail}"


class InvariantChecker:
    """Collects invariant violations across a chaos run.

    Attach to the kernel with :meth:`attach` before running, then call
    :meth:`check_network` once the run (and the final GC sweep) is done.
    ``violations`` holds everything found; an empty list is a pass.
    """

    def __init__(self) -> None:
        self.violations: List[InvariantViolation] = []
        self.events_seen = 0
        self._last_time: Optional[float] = None

    # -- SimObserver -----------------------------------------------------

    def on_event(self, when: float) -> None:
        """Per-event clock check (monotone, non-negative)."""
        self.events_seen += 1
        if self._last_time is not None and (
            when < self._last_time - _CLOCK_EPSILON
        ):
            self._record(
                "monotone-clock",
                f"event at t={when} after t={self._last_time}",
            )
        self._last_time = when

    def attach(self, simulator: "Simulator") -> "InvariantChecker":
        """Install on ``simulator`` and return self (chainable)."""
        simulator.set_observer(self)
        return self

    # -- post-run audit --------------------------------------------------

    def check_network(self, net: "EventNetwork") -> List[InvariantViolation]:
        """Audit a finished event network; returns the new violations."""
        before = len(self.violations)
        self._check_false_neighbors(net)
        self._check_sessions(net)
        self._check_counter_conservation(net)
        return self.violations[before:]

    def _check_false_neighbors(self, net: "EventNetwork") -> None:
        by_id = {node.node_id: node for node in net.nodes}
        for node in net.nodes:
            for peer in node.logical_neighbors:
                peer_node = by_id.get(peer)
                if peer_node is None:
                    self._record(
                        "false-neighbor",
                        f"node {node.index} lists unknown peer {peer!r}",
                    )
                    continue
                distance = net.field.distance(
                    node.position, peer_node.position
                )
                if distance > net.config.tx_range + 1e-9:
                    self._record(
                        "false-neighbor",
                        f"node {node.index} lists node "
                        f"{peer_node.index} at {distance:.1f} m "
                        f"(> range {net.config.tx_range:.1f} m)",
                    )

    def _check_sessions(self, net: "EventNetwork") -> None:
        for node in net.nodes:
            for peer, state in node.wedged_sessions():
                self._record(
                    "wedged-session",
                    f"node {node.index} stuck in {state.value} with "
                    f"{peer!r} past the staleness bound",
                )
            expected: Counter = Counter()
            for peer, session in node.sessions().items():
                if (
                    session.state is SessionState.FAILED
                    and session.monitored
                ):
                    self._record(
                        "monitor-leak",
                        f"node {node.index}: FAILED session with "
                        f"{peer!r} still monitors {session.monitored}",
                    )
                expected.update(session.monitored)
            actual = Counter(node.monitor_counts())
            if expected != actual:
                self._record(
                    "monitor-conservation",
                    f"node {node.index}: refcounts {dict(actual)} != "
                    f"session monitors {dict(expected)}",
                )

    def _check_counter_conservation(self, net: "EventNetwork") -> None:
        links = sum(len(node.logical_neighbors) for node in net.nodes)
        established = net.trace.counter(
            _names.DNDP_ESTABLISHED
        ) + net.trace.counter(_names.MNDP_ESTABLISHED)
        expired = net.trace.counter(_names.NEIGHBORS_EXPIRED)
        if links != established - expired:
            self._record(
                "counter-conservation",
                f"{links} directed logical links but "
                f"established({established}) - expired({expired}) = "
                f"{established - expired}",
            )

    def _record(self, name: str, detail: str) -> None:
        if len(self.violations) < _MAX_RECORDED:
            self.violations.append(InvariantViolation(name, detail))

"""Tracing and statistics collection for simulations.

A :class:`TraceRecorder` accumulates named counters, timing samples, and
an optional structured event log; the experiment harness reads these to
build the figure series, and tests assert on them.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["TraceRecorder", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    """One structured log entry."""

    time: float
    category: str
    detail: Dict[str, Any]


class TraceRecorder:
    """Counters, timing samples, and an event log.

    Parameters
    ----------
    keep_events:
        Whether to retain the structured event log (large runs disable
        it and keep only counters/samples).
    """

    def __init__(self, keep_events: bool = True) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        self._samples: Dict[str, List[float]] = defaultdict(list)
        self._events: List[TraceEvent] = []
        self._keep_events = bool(keep_events)

    # -- counters -------------------------------------------------------

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self._counters[name] += int(amount)

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        """All counters as a plain dict."""
        return dict(self._counters)

    # -- timing samples --------------------------------------------------

    def sample(self, name: str, value: float) -> None:
        """Record one numeric sample under ``name``."""
        if not math.isfinite(value):
            raise ConfigurationError(f"non-finite sample for {name}: {value}")
        self._samples[name].append(float(value))

    def samples(self, name: str) -> List[float]:
        """All samples recorded under ``name``."""
        return list(self._samples.get(name, ()))

    def mean(self, name: str) -> Optional[float]:
        """Mean of a sample series, or None if empty."""
        values = self._samples.get(name)
        if not values:
            return None
        return sum(values) / len(values)

    def percentile(self, name: str, q: float) -> Optional[float]:
        """The ``q``-th percentile (0-100) of a sample series."""
        if not 0 <= q <= 100:
            raise ConfigurationError(f"q must be in [0, 100], got {q}")
        values = sorted(self._samples.get(name, ()))
        if not values:
            return None
        rank = (len(values) - 1) * q / 100.0
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return values[low]
        weight = rank - low
        return values[low] * (1 - weight) + values[high] * weight

    # -- structured events -----------------------------------------------

    def log(self, time: float, category: str, **detail: Any) -> None:
        """Append a structured event (no-op when events are disabled)."""
        if self._keep_events:
            self._events.append(TraceEvent(time, category, detail))

    def events(self, category: Optional[str] = None) -> List[TraceEvent]:
        """All events, optionally filtered by category."""
        if category is None:
            return list(self._events)
        return [e for e in self._events if e.category == category]

    def summary(self) -> Dict[str, Tuple[int, Optional[float]]]:
        """Compact overview: per-series (count, mean)."""
        out: Dict[str, Tuple[int, Optional[float]]] = {}
        for name, values in self._samples.items():
            out[name] = (len(values), sum(values) / len(values))
        return out

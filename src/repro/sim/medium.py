"""A code-addressed radio medium at message granularity.

The chip-level channel in :mod:`repro.dsss` is faithful but too slow for
2000-node fields, so the network simulations use this message-level
medium: a transmission is (sender, position, code key, frame, timing),
and its fate at each in-range receiver is decided by the DSSS/ECC rules
measured at chip level —

- a receiver obtains the frame iff it knows the code (monitors it in
  real time, or will scan it in a buffered window) and the fraction of
  the message jammed *with the same code* stays within the ECC tolerance
  ``mu / (1 + mu)``;
- jamming with any other code is ignored (negligible cross-correlation
  at ``N = 512``, verified by the chip-level tests);
- concurrent legitimate transmissions under different codes do not
  interact.

Jammers register as observers and are told about every transmission
start, mirroring the paper's "J can always recover chip synchronization
without de-spreading".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

import numpy as np

from repro.ecc.codec import erasure_tolerance
from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.field import Position, RectangularField
from repro.sim.links import DiskLinkModel, LinkModel
from repro.utils.validation import check_fraction, check_positive

__all__ = ["Transmission", "RadioMedium", "FaultHook"]

CodeKey = Hashable


@dataclass
class Transmission:
    """One on-air message.

    Attributes
    ----------
    sender:
        Node index of the transmitter.
    position:
        Transmitter position at send time.
    code_key:
        Pool index (int) or session label identifying the spread code.
    frame:
        Arbitrary protocol payload (opaque to the medium).
    start, duration:
        Timing in simulated seconds.
    jam_fractions:
        Accumulated per-jam (fraction, effectiveness) entries recorded
        against this transmission.
    """

    sender: int
    position: Position
    code_key: CodeKey
    frame: object
    start: float
    duration: float
    jam_fractions: List[float] = field(default_factory=list)

    @property
    def end(self) -> float:
        """Completion time of the transmission."""
        return self.start + self.duration

    def jammed_fraction(self) -> float:
        """Total corrupted fraction (capped at 1)."""
        return min(1.0, sum(self.jam_fractions))


class JammerObserver(Protocol):
    """Anything wanting transmission-start notifications."""

    def on_transmission(self, tx: Transmission, medium: "RadioMedium") -> None:
        """Called when a transmission starts."""


DeliveryCallback = Callable[[Transmission], None]


class FaultHook(Protocol):
    """The medium half of the narrow fault-injection API.

    :class:`repro.faults.plan.FaultPlan` implements this; the medium
    calls it at exactly two points — transmission start and per-receiver
    delivery — and pays nothing when no hook is attached (or when
    ``enabled`` is False, the :class:`~repro.faults.plan.NullFaultPlan`
    case).
    """

    enabled: bool

    def bind(self, simulator: Simulator) -> None:
        """Called once when the medium is constructed."""

    def on_transmit(self, tx: Transmission, medium: "RadioMedium") -> bool:
        """Inspect (and possibly jam) a starting transmission.

        Returning False suppresses it entirely (crashed sender).
        """

    def delivery_actions(
        self, tx: Transmission, node: int, now: float
    ) -> Sequence[float]:
        """Decide the fate of one would-be delivery.

        Returns a sequence of delays: empty = dropped, ``[0.0]`` =
        delivered normally, several entries = duplicated, positive
        entries = delayed (reordering / clock skew).
        """


class RadioMedium:
    """Registers listeners and routes message-level transmissions.

    Parameters
    ----------
    simulator:
        The event kernel (deliveries are scheduled on it).
    field:
        Geometry for range checks.
    mu:
        ECC expansion parameter; a message survives if its jammed
        fraction is below ``mu / (1 + mu)``.
    faults:
        Optional :class:`FaultHook` (a
        :class:`repro.faults.plan.FaultPlan`).  ``None`` (the default)
        and a disabled hook are byte-identical to the un-hooked medium:
        deliveries stay synchronous and no fault randomness is drawn.
    """

    def __init__(
        self,
        simulator: Simulator,
        field_: RectangularField,
        mu: float,
        link_model: Optional[LinkModel] = None,
        link_rng: Optional[np.random.Generator] = None,
        faults: Optional[FaultHook] = None,
    ) -> None:
        self._simulator = simulator
        self._field = field_
        self._tolerance = erasure_tolerance(mu)
        # Default: the paper's unit-disk reception.  A probabilistic
        # model (e.g. LogNormalShadowingModel) needs an rng to sample
        # per-delivery shadowing.
        self._link_model: LinkModel = (
            link_model
            if link_model is not None
            else DiskLinkModel(field_.tx_range)
        )
        self._link_rng = (
            link_rng
            if link_rng is not None
            else np.random.default_rng(0)  # jrsnd: noqa(JRS011) -- fixed-seed fallback for mediums built without a seed tree; rewiring through utils.rng would shift every pinned link-loss stream
        )
        # listener -> (position getter, code -> callback)
        self._listeners: Dict[
            int, Tuple[Callable[[], Position], Dict[CodeKey, DeliveryCallback]]
        ] = {}
        self._jammers: List[JammerObserver] = []
        self._active: List[Transmission] = []
        self.delivered_count = 0
        self.jammed_count = 0
        self.fault_suppressed_count = 0
        self._faults = faults
        if faults is not None:
            faults.bind(simulator)

    @property
    def tolerance(self) -> float:
        """Corruption fraction above which a message is lost."""
        return self._tolerance

    def register_node(
        self, node: int, position_getter: Callable[[], Position]
    ) -> None:
        """Register a node with a callable returning its current position."""
        if node in self._listeners:
            raise SimulationError(f"node {node} registered twice")
        self._listeners[node] = (position_getter, {})

    def listen(
        self, node: int, code_key: CodeKey, callback: DeliveryCallback
    ) -> None:
        """Start delivering messages under ``code_key`` to ``node``."""
        self._require_node(node)
        self._listeners[node][1][code_key] = callback

    def stop_listening(self, node: int, code_key: CodeKey) -> None:
        """Stop delivering ``code_key`` messages to ``node`` (idempotent)."""
        self._require_node(node)
        self._listeners[node][1].pop(code_key, None)

    def is_listening(self, node: int, code_key: CodeKey) -> bool:
        """Whether ``node`` currently receives ``code_key`` messages."""
        self._require_node(node)
        return code_key in self._listeners[node][1]

    def add_jammer(self, jammer: JammerObserver) -> None:
        """Register a jammer for transmission-start notifications."""
        self._jammers.append(jammer)

    def transmit(
        self,
        sender: int,
        code_key: CodeKey,
        frame: object,
        duration: float,
        position: Optional[Position] = None,
    ) -> Transmission:
        """Start a transmission; completion is scheduled automatically.

        ``position`` defaults to the sender's registered position.
        """
        check_positive("duration", duration)
        if position is None:
            self._require_node(sender)
            position = self._listeners[sender][0]()
        tx = Transmission(
            sender=sender,
            position=position,
            code_key=code_key,
            frame=frame,
            start=self._simulator.now,
            duration=float(duration),
        )
        faults = self._faults
        if (
            faults is not None
            and faults.enabled
            and not faults.on_transmit(tx, self)
        ):
            # Crashed/churned-out sender: the radio never keys up.
            self.fault_suppressed_count += 1
            return tx
        self._active.append(tx)
        for jammer in self._jammers:
            jammer.on_transmission(tx, self)
        self._simulator.call_at(tx.end, self._complete, tx)
        return tx

    def jam(
        self,
        tx: Transmission,
        code_key: CodeKey,
        fraction: float,
        effectiveness: float = 1.0,
    ) -> bool:
        """Record a jamming attempt against ``tx``.

        Only attempts with the *matching* code corrupt anything.
        ``fraction`` is the share of the message the jam signal overlaps;
        ``effectiveness`` scales it (chip-level experiments show a
        random-data jam at equal power erases about half the overlapped
        bits; the paper's pessimistic model corresponds to 1.0).
        Returns whether the jam had any effect.
        """
        check_fraction("fraction", fraction)
        check_fraction("effectiveness", effectiveness)
        if code_key != tx.code_key:
            return False
        tx.jam_fractions.append(fraction * effectiveness)
        return True

    def _complete(self, tx: Transmission) -> None:
        self._active.remove(tx)
        lost = tx.jammed_fraction() > self._tolerance
        if lost:
            self.jammed_count += 1
            return
        faults = self._faults
        use_faults = faults is not None and faults.enabled
        for node, (position_getter, codes) in list(self._listeners.items()):
            if node == tx.sender:
                continue
            callback = codes.get(tx.code_key)
            if callback is None:
                continue
            distance = self._field.distance(position_getter(), tx.position)
            if not self._link_model.delivered(distance, self._link_rng):
                continue
            if not use_faults:
                self.delivered_count += 1
                callback(tx)
                continue
            for delay in faults.delivery_actions(
                tx, node, self._simulator.now
            ):
                if delay <= 0.0:
                    # Synchronous, exactly like the un-faulted path, so
                    # a no-op plan is bit-identical to no plan at all.
                    self.delivered_count += 1
                    callback(tx)
                else:
                    self._simulator.call_after(
                        delay, self._deliver_faulted, node, tx
                    )

    def _deliver_faulted(self, node: int, tx: Transmission) -> None:
        """Deliver a delayed/duplicated copy, re-checking the listener.

        Between scheduling and delivery the receiver may have stopped
        listening (revocation, session teardown) or deregistered; the
        copy is then silently lost, as a real late radio frame would be.
        """
        entry = self._listeners.get(node)
        if entry is None:
            return
        callback = entry[1].get(tx.code_key)
        if callback is None:
            return
        self.delivered_count += 1
        callback(tx)

    def active_transmissions(self) -> List[Transmission]:
        """Transmissions currently on the air."""
        return list(self._active)

    def _require_node(self, node: int) -> None:
        if node not in self._listeners:
            raise SimulationError(f"node {node} is not registered")

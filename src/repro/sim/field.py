"""2-D field geometry and neighbor queries.

The paper's evaluation places 2000 nodes uniformly in a 5000 x 5000 m
field with a 300 m transmission range.  :class:`RectangularField` answers
range queries with a uniform grid (cell size = range), making the
physical-neighbor graph of a 2000-node snapshot cheap to build.

:func:`lens_overlap_fraction` is the geometric constant of Theorem 3:
two circles of radius ``a`` whose centers are at most ``a`` apart overlap
in expectation over the distance by ``(pi - 3*sqrt(3)/4) a^2``, i.e. a
fraction ``1 - 3*sqrt(3) / (4 pi)`` of one disc's area.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_positive

__all__ = ["RectangularField", "lens_overlap_fraction"]

Position = Tuple[float, float]


def lens_overlap_fraction() -> float:
    """Expected overlap fraction ``1 - 3*sqrt(3)/(4*pi)`` of Theorem 3."""
    return 1.0 - 3.0 * math.sqrt(3.0) / (4.0 * math.pi)


class RectangularField:
    """A ``width x height`` field with a fixed transmission range.

    Parameters
    ----------
    width, height:
        Field dimensions in meters.
    tx_range:
        Radio range ``a``; two nodes are physical neighbors iff their
        distance is at most ``tx_range``.
    """

    def __init__(self, width: float, height: float, tx_range: float) -> None:
        check_positive("width", width)
        check_positive("height", height)
        check_positive("tx_range", tx_range)
        self._width = float(width)
        self._height = float(height)
        self._range = float(tx_range)

    @property
    def width(self) -> float:
        """Field width in meters."""
        return self._width

    @property
    def height(self) -> float:
        """Field height in meters."""
        return self._height

    @property
    def tx_range(self) -> float:
        """Transmission range in meters."""
        return self._range

    @property
    def area(self) -> float:
        """Field area in square meters."""
        return self._width * self._height

    def contains(self, position: Position) -> bool:
        """Whether a position lies inside the field."""
        x, y = position
        return 0 <= x <= self._width and 0 <= y <= self._height

    def require_inside(self, position: Position) -> Position:
        """Validate a position; return it."""
        if not self.contains(position):
            raise ConfigurationError(
                f"position {position} outside {self._width}x{self._height} "
                "field"
            )
        return position

    @staticmethod
    def distance(a: Position, b: Position) -> float:
        """Euclidean distance."""
        return math.hypot(a[0] - b[0], a[1] - b[1])

    def in_range(self, a: Position, b: Position) -> bool:
        """Physical-neighbor test."""
        return self.distance(a, b) <= self._range

    def expected_neighbors(self, n_nodes: int) -> float:
        """Mean physical degree ``g`` for uniform placement (ignoring
        border effects): ``(n - 1) * pi a^2 / area``."""
        check_positive("n_nodes", n_nodes)
        return (n_nodes - 1) * math.pi * self._range**2 / self.area

    def neighbor_pairs(
        self, positions: Sequence[Position], backend: str = "vectorized"
    ) -> List[Tuple[int, int]]:
        """All index pairs ``(i, j), i < j`` within transmission range.

        ``"vectorized"`` (default) screens chunked squared distances and
        confirms the boundary with the same correctly-rounded hypot the
        reference uses; ``"reference"`` is the original grid-bucketed
        loop.  Both return the same sorted list of int tuples.
        """
        from repro.core.mndp import COMPUTE_BACKENDS

        if backend not in COMPUTE_BACKENDS:
            raise ConfigurationError(
                f"neighbor_pairs backend must be one of "
                f"{COMPUTE_BACKENDS}, got {backend!r}"
            )
        if backend == "vectorized":
            return self._neighbor_pairs_vectorized(positions)
        return self._neighbor_pairs_reference(positions)

    def _neighbor_pairs_reference(
        self, positions: Sequence[Position]
    ) -> List[Tuple[int, int]]:
        """Grid-bucketed: O(n) expected for uniform placements."""
        cell = self._range
        buckets: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for index, position in enumerate(positions):
            key = (int(position[0] // cell), int(position[1] // cell))
            buckets[key].append(index)
        pairs: List[Tuple[int, int]] = []
        for (cx, cy), members in buckets.items():
            candidates: List[int] = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    candidates.extend(buckets.get((cx + dx, cy + dy), ()))
            for i in members:
                for j in candidates:
                    if j > i and self.in_range(positions[i], positions[j]):
                        pairs.append((i, j))
        return sorted(set(pairs))

    def _neighbor_pairs_vectorized(
        self, positions: Sequence[Position]
    ) -> List[Tuple[int, int]]:
        """Strip-bucketed squared-distance sweep.

        Nodes are bucketed into vertical strips of width ``tx_range``
        (any in-range pair sits in the same or adjacent strips, like the
        reference's grid cells) and each strip is swept against itself
        and its right neighbor with one dense squared-distance screen.
        Survivors are confirmed with ``np.hypot``, the correctly-rounded
        double the reference's ``math.hypot`` computes, so the boundary
        decision is bit-identical.
        """
        n = len(positions)
        if n < 2:
            return []
        pos = np.asarray(positions, dtype=np.float64)
        x = pos[:, 0]
        y = pos[:, 1]
        radius = self._range
        screen = radius * radius * (1.0 + 1e-9)
        strip_of = np.floor_divide(x, radius).astype(np.int64)
        order = np.argsort(strip_of, kind="stable")
        strips, starts = np.unique(strip_of[order], return_index=True)
        strips = strips.tolist()
        bounds = starts.tolist() + [n]
        pairs: List[Tuple[int, int]] = []

        def confirm(low: np.ndarray, high: np.ndarray) -> None:
            exact = np.hypot(x[low] - x[high], y[low] - y[high])
            keep = exact <= radius
            pairs.extend(zip(low[keep].tolist(), high[keep].tolist()))

        for t in range(len(strips)):
            a_idx = order[bounds[t] : bounds[t + 1]]
            xa = x[a_idx]
            ya = y[a_idx]
            dx = xa[:, None] - xa[None, :]
            dy = ya[:, None] - ya[None, :]
            rows, cols = np.nonzero(dx * dx + dy * dy <= screen)
            low, high = a_idx[rows], a_idx[cols]
            inside = high > low
            confirm(low[inside], high[inside])
            if t + 1 < len(strips) and strips[t + 1] == strips[t] + 1:
                b_idx = order[bounds[t + 1] : bounds[t + 2]]
                dx = xa[:, None] - x[b_idx][None, :]
                dy = ya[:, None] - y[b_idx][None, :]
                rows, cols = np.nonzero(dx * dx + dy * dy <= screen)
                left, right = a_idx[rows], b_idx[cols]
                confirm(
                    np.minimum(left, right), np.maximum(left, right)
                )
        return sorted(pairs)

    def adjacency(
        self, positions: Sequence[Position]
    ) -> Dict[int, Set[int]]:
        """Physical-neighbor sets keyed by node index."""
        neighbors: Dict[int, Set[int]] = {
            i: set() for i in range(len(positions))
        }
        for i, j in self.neighbor_pairs(positions):
            neighbors[i].add(j)
            neighbors[j].add(i)
        return neighbors

    def common_neighbors(
        self, adjacency: Dict[int, Set[int]], a: int, b: int
    ) -> Set[int]:
        """Nodes adjacent to both ``a`` and ``b`` (excluding the pair)."""
        return (adjacency[a] & adjacency[b]) - {a, b}

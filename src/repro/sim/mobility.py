"""Node placement and mobility models.

The figure experiments use independent uniform snapshots (each Monte
Carlo run re-places all nodes, which is what "each with a different
random seed" amounts to for a connectivity metric).  The random-waypoint
model supports the event-driven simulations and the high-mobility
examples: each node repeatedly picks a uniform destination and speed and
travels in a straight line, with optional pause times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.field import Position, RectangularField
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["uniform_positions", "StaticPlacement", "RandomWaypointModel"]


def uniform_positions(
    field: RectangularField, n_nodes: int, rng: np.random.Generator
) -> List[Position]:
    """Place ``n_nodes`` uniformly at random in the field."""
    check_positive("n_nodes", n_nodes)
    xs = rng.uniform(0.0, field.width, size=n_nodes)
    ys = rng.uniform(0.0, field.height, size=n_nodes)
    return [(float(x), float(y)) for x, y in zip(xs, ys)]


class StaticPlacement:
    """A time-invariant placement (one snapshot)."""

    def __init__(self, positions: List[Position]) -> None:
        if not positions:
            raise ConfigurationError("placement must contain nodes")
        self._positions = list(positions)

    @classmethod
    def uniform(
        cls,
        field: RectangularField,
        n_nodes: int,
        rng: np.random.Generator,
    ) -> "StaticPlacement":
        """Uniform random snapshot."""
        return cls(uniform_positions(field, n_nodes, rng))

    @property
    def n_nodes(self) -> int:
        """Number of placed nodes."""
        return len(self._positions)

    def position(self, node: int, time: float = 0.0) -> Position:
        """Position of ``node`` (time-independent)."""
        return self._positions[node]

    def positions_at(self, time: float = 0.0) -> List[Position]:
        """All positions (time-independent)."""
        return list(self._positions)


@dataclass
class _Leg:
    """One straight-line movement leg of a waypoint trajectory."""

    start_time: float
    start: Position
    end: Position
    speed: float

    @property
    def travel_time(self) -> float:
        distance = RectangularField.distance(self.start, self.end)
        return distance / self.speed if self.speed > 0 else 0.0

    @property
    def end_time(self) -> float:
        return self.start_time + self.travel_time

    def position_at(self, time: float) -> Position:
        if self.travel_time <= 0:
            return self.end
        fraction = min(max((time - self.start_time) / self.travel_time, 0), 1)
        if fraction >= 1.0:
            return self.end  # exact endpoint, no float interpolation drift
        if fraction <= 0.0:
            return self.start
        return (
            self.start[0] + fraction * (self.end[0] - self.start[0]),
            self.start[1] + fraction * (self.end[1] - self.start[1]),
        )


class RandomWaypointModel:
    """Random-waypoint mobility with lazily extended trajectories.

    Parameters
    ----------
    field:
        The playing field.
    n_nodes:
        Number of mobile nodes.
    speed_range:
        ``(min, max)`` speeds in m/s, drawn uniformly per leg.
    pause_time:
        Pause at each waypoint in seconds.
    rng:
        Dedicated random stream.
    """

    def __init__(
        self,
        field: RectangularField,
        n_nodes: int,
        speed_range: Tuple[float, float],
        pause_time: float,
        rng: np.random.Generator,
    ) -> None:
        check_positive("n_nodes", n_nodes)
        low, high = speed_range
        check_positive("min speed", low)
        if high < low:
            raise ConfigurationError(
                f"speed_range must be (min <= max), got {speed_range}"
            )
        check_non_negative("pause_time", pause_time)
        self._field = field
        self._rng = rng
        self._pause = float(pause_time)
        self._speed_range = (float(low), float(high))
        starts = uniform_positions(field, n_nodes, rng)
        self._legs: List[List[_Leg]] = [
            [self._new_leg(0.0, start)] for start in starts
        ]

    @property
    def n_nodes(self) -> int:
        """Number of mobile nodes."""
        return len(self._legs)

    def _new_leg(self, start_time: float, start: Position) -> _Leg:
        destination = uniform_positions(self._field, 1, self._rng)[0]
        speed = float(self._rng.uniform(*self._speed_range))
        return _Leg(start_time, start, destination, speed)

    def position(self, node: int, time: float) -> Position:
        """Position of ``node`` at ``time`` (extends trajectory lazily)."""
        if time < 0:
            raise ConfigurationError(f"time must be >= 0, got {time}")
        legs = self._legs[node]
        while legs[-1].end_time + self._pause < time:
            last = legs[-1]
            legs.append(
                self._new_leg(last.end_time + self._pause, last.end)
            )
        for leg in reversed(legs):
            if time >= leg.start_time:
                return leg.position_at(time)
        return legs[0].start

    def positions_at(self, time: float) -> List[Position]:
        """All node positions at ``time``."""
        return [self.position(node, time) for node in range(self.n_nodes)]

"""Link models: when does a transmission reach a receiver?

The paper's model is a unit disk — two nodes are physical neighbors iff
their distance is at most the transmission range — and that is the
default here (:class:`DiskLinkModel`).  Real radios fade;
:class:`LogNormalShadowingModel` implements the standard log-distance
path loss with log-normal shadowing, calibrated so the *median* range
equals the configured ``tx_range``: reception probability is 0.5 at the
nominal range, higher inside, lower outside, with the transition width
set by ``sigma_db / path_loss_exponent``.

The medium samples each (transmission, receiver) pair independently;
discovery probabilities under fading can then be compared against the
disk model (see ``tests/sim/test_links.py``).
"""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_positive

__all__ = ["LinkModel", "DiskLinkModel", "LogNormalShadowingModel"]


class LinkModel(Protocol):
    """Decides reception for one transmission at one receiver."""

    def delivered(
        self, distance: float, rng: np.random.Generator
    ) -> bool:
        """Whether a transmission at ``distance`` meters is received."""

    def reception_probability(self, distance: float) -> float:
        """The marginal reception probability at ``distance``."""


class DiskLinkModel:
    """The paper's unit-disk model: in range iff distance <= tx_range."""

    def __init__(self, tx_range: float) -> None:
        check_positive("tx_range", tx_range)
        self._range = float(tx_range)

    @property
    def tx_range(self) -> float:
        """The hard reception radius."""
        return self._range

    def reception_probability(self, distance: float) -> float:
        """1 inside the disk, 0 outside."""
        if distance < 0:
            raise ConfigurationError(f"negative distance {distance}")
        return 1.0 if distance <= self._range else 0.0

    def delivered(
        self, distance: float, rng: np.random.Generator
    ) -> bool:
        """Deterministic disk membership (rng unused)."""
        return self.reception_probability(distance) > 0.5


class LogNormalShadowingModel:
    """Log-distance path loss with log-normal shadowing.

    Received power at distance ``d`` (dB, relative):
    ``P(d) = -10 n log10(d / d_ref) + X``, ``X ~ N(0, sigma^2)``; the
    frame is received when ``P(d)`` exceeds the sensitivity threshold,
    which we place so that ``P(tx_range)`` is met with probability 0.5
    — i.e. the configured range is the *median* range.

    Parameters
    ----------
    tx_range:
        Median reception range in meters.
    path_loss_exponent:
        The exponent ``n`` (2 free space, ~2.7-4 outdoor).
    sigma_db:
        Shadowing standard deviation in dB (0 reduces to the disk).
    """

    def __init__(
        self,
        tx_range: float,
        path_loss_exponent: float = 3.0,
        sigma_db: float = 4.0,
    ) -> None:
        check_positive("tx_range", tx_range)
        check_positive("path_loss_exponent", path_loss_exponent)
        if sigma_db < 0:
            raise ConfigurationError(
                f"sigma_db must be >= 0, got {sigma_db}"
            )
        self._range = float(tx_range)
        self._exponent = float(path_loss_exponent)
        self._sigma = float(sigma_db)

    @property
    def tx_range(self) -> float:
        """Median reception range."""
        return self._range

    def _margin_db(self, distance: float) -> float:
        """Link margin over the threshold at ``distance`` (dB)."""
        if distance < 0:
            raise ConfigurationError(f"negative distance {distance}")
        if distance == 0:
            return float("inf")
        return -10.0 * self._exponent * math.log10(distance / self._range)

    def reception_probability(self, distance: float) -> float:
        """``Q(-margin / sigma)`` — 0.5 exactly at the median range."""
        margin = self._margin_db(distance)
        if math.isinf(margin):
            return 1.0
        if self._sigma == 0:
            return 1.0 if margin >= 0 else 0.0
        # Phi(margin / sigma) via erf.
        return 0.5 * (1.0 + math.erf(margin / (self._sigma * math.sqrt(2))))

    def delivered(
        self, distance: float, rng: np.random.Generator
    ) -> bool:
        """Sample one shadowing realization."""
        return bool(rng.random() < self.reception_probability(distance))

"""A generator-based discrete-event simulation kernel.

Minimal but complete: a time-ordered event heap, one-shot :class:`Event`
objects with callbacks, and :class:`Process` coroutines that ``yield``
either a :class:`Timeout` or an :class:`Event` to suspend.  The protocol
state machines in :mod:`repro.core` run as processes on this kernel.

Determinism: events scheduled for the same instant fire in scheduling
order (a monotonically increasing sequence number breaks heap ties), so
simulations are reproducible bit-for-bit given the same seeds.
"""

from __future__ import annotations

import heapq
from typing import (
    Any,
    Callable,
    Generator,
    List,
    Optional,
    Protocol,
    Tuple,
)

from repro.errors import SimulationError
from repro.obs import current as _metrics
from repro.obs import names as _names

__all__ = ["Simulator", "SimObserver", "Event", "Timeout", "Process"]


class Event:
    """A one-shot event: fires once with an optional value.

    Callbacks added after the event fired are invoked immediately, which
    lets processes wait on events without racing the trigger.
    """

    def __init__(self, simulator: "Simulator", name: str = "") -> None:
        self._simulator = simulator
        self._name = name
        self._fired = False
        self._value: Any = None
        self._callbacks: List[Callable[[Any], None]] = []

    @property
    def fired(self) -> bool:
        """Whether the event already triggered."""
        return self._fired

    @property
    def value(self) -> Any:
        """The value the event fired with (None before firing)."""
        return self._value

    def on_fire(self, callback: Callable[[Any], None]) -> None:
        """Register a callback; runs immediately if already fired."""
        if self._fired:
            callback(self._value)
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> None:
        """Fire the event now."""
        if self._fired:
            raise SimulationError(f"event {self._name!r} fired twice")
        self._fired = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def __repr__(self) -> str:
        state = "fired" if self._fired else "pending"
        return f"Event({self._name!r}, {state})"


class Timeout:
    """A yieldable delay for processes."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = float(delay)


ProcessGenerator = Generator[Any, Any, None]


class Process:
    """Wraps a generator as a simulation process.

    The generator may yield :class:`Timeout` instances (sleep) or
    :class:`Event` instances (wait; the event's value is sent back in).
    The process's own :attr:`done` event fires with the generator's
    return value when it finishes.
    """

    def __init__(
        self, simulator: "Simulator", generator: ProcessGenerator, name: str
    ) -> None:
        self._simulator = simulator
        self._generator = generator
        self._name = name
        self.done = Event(simulator, name=f"{name}.done")
        self._step(None)

    def _step(self, value: Any) -> None:
        try:
            yielded = self._generator.send(value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        if isinstance(yielded, Timeout):
            self._simulator.call_at(
                self._simulator.now + yielded.delay, self._step, None
            )
        elif isinstance(yielded, Event):
            yielded.on_fire(self._step)
        elif isinstance(yielded, Process):
            yielded.done.on_fire(self._step)
        else:
            raise SimulationError(
                f"process {self._name!r} yielded "
                f"{type(yielded).__name__}; expected Timeout, Event, "
                "or Process"
            )

    def __repr__(self) -> str:
        return f"Process({self._name!r})"


class SimObserver(Protocol):
    """Anything wanting a callback per executed event.

    This is the kernel half of the narrow injection/observation API used
    by :mod:`repro.faults`: the
    :class:`~repro.faults.invariants.InvariantChecker` attaches itself
    here to watch the clock (monotonicity) without the hot loop paying
    anything when no observer is installed.
    """

    def on_event(self, when: float) -> None:
        """Called with each executed event's timestamp."""


class Simulator:
    """The event loop: a heap of timestamped callbacks."""

    def __init__(self) -> None:
        self._now = 0.0
        self._sequence = 0
        self._heap: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._events_executed = 0
        self._heap_high_water = 0
        self._observer: Optional[SimObserver] = None

    def set_observer(self, observer: Optional[SimObserver]) -> None:
        """Install (or clear, with ``None``) the per-event observer."""
        self._observer = observer

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Callbacks executed by :meth:`run` over this simulator's life."""
        return self._events_executed

    @property
    def heap_high_water(self) -> int:
        """Largest number of simultaneously pending callbacks seen."""
        return self._heap_high_water

    def call_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before now ({self._now})"
            )
        heapq.heappush(self._heap, (when, self._sequence, callback, args))
        self._sequence += 1
        if len(self._heap) > self._heap_high_water:
            self._heap_high_water = len(self._heap)

    def call_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.call_at(self._now + delay, callback, *args)

    def event(self, name: str = "") -> Event:
        """Create a new pending event."""
        return Event(self, name)

    def process(
        self, generator: ProcessGenerator, name: str = "process"
    ) -> Process:
        """Start a generator as a process (runs its first step now)."""
        return Process(self, generator, name)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap is empty or time would pass ``until``.

        Returns the time of the last executed event (or ``until``).
        Execution work is aggregated locally and reported to the
        installed metrics registry once per call, so the hot loop pays
        nothing for observability.
        """
        executed = 0
        observer = self._observer
        try:
            while self._heap:
                when, _, callback, args = self._heap[0]
                if until is not None and when > until:
                    self._now = float(until)
                    return self._now
                heapq.heappop(self._heap)
                self._now = when
                executed += 1
                if observer is not None:
                    observer.on_event(when)
                callback(*args)
            if until is not None:
                self._now = max(self._now, float(until))
            return self._now
        finally:
            self._events_executed += executed
            registry = _metrics()
            if registry.enabled:
                registry.inc(_names.SIM_EVENTS_EXECUTED, executed)
                registry.gauge(_names.SIM_TIME, self._now)
                registry.gauge_max(
                    _names.SIM_HEAP_HIGH_WATER, self._heap_high_water
                )

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None if idle."""
        return self._heap[0][0] if self._heap else None

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unexecuted callbacks."""
        return len(self._heap)

"""Discrete-event network simulation substrate.

The authors evaluated JR-SND with a private C++ simulator; this package
is its Python equivalent: a generator-based discrete-event kernel
(:mod:`repro.sim.engine`), 2-D field geometry with neighbor queries
(:mod:`repro.sim.field`), node placement and mobility models
(:mod:`repro.sim.mobility`), a code-addressed radio medium operating at
message granularity (:mod:`repro.sim.medium`), and tracing utilities
(:mod:`repro.sim.trace`).
"""

from repro.sim.engine import Event, Process, Simulator, Timeout
from repro.sim.field import RectangularField, lens_overlap_fraction
from repro.sim.links import (
    DiskLinkModel,
    LinkModel,
    LogNormalShadowingModel,
)
from repro.sim.medium import RadioMedium, Transmission
from repro.sim.mobility import (
    RandomWaypointModel,
    StaticPlacement,
    uniform_positions,
)
from repro.sim.trace import TraceRecorder

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Timeout",
    "RectangularField",
    "lens_overlap_fraction",
    "StaticPlacement",
    "RandomWaypointModel",
    "uniform_positions",
    "LinkModel",
    "DiskLinkModel",
    "LogNormalShadowingModel",
    "RadioMedium",
    "Transmission",
    "TraceRecorder",
]

"""The persistent warm worker pool behind campaign-scale sweeps.

``run_parallel`` historically created a fresh ``multiprocessing.Pool``
per call and rebuilt the whole :class:`NetworkExperiment` (topology,
code pool, codecs, correlation matrices) in every worker via the pool
initializer.  That is fine for one 100-run sweep point, but a campaign
is hundreds of *small* shards — and with the chipless PHY backend the
run bodies are now so cheap that fork + re-pickle + rebuild dominates
the wall clock.

:class:`WorkerPool` amortizes all of that across a whole campaign:

- **Processes are spawned once** and reused for every shard.  Sizing
  respects the scheduler's CPU affinity mask
  (:func:`available_cpu_count`), not the raw machine core count.
- **Workers cache constructed experiments** in a small LRU keyed by a
  content hash of the experiment parameters
  (:meth:`ExperimentSpec.content_key`), so consecutive shards of the
  same sweep point — and revisits of a point anywhere in the grid —
  skip the rebuild entirely.  New points are announced with one cheap
  ``configure`` broadcast carrying the spec; the per-process artifact
  cache (codecs, correlation matrices, waveforms) stays warm for the
  pool's whole lifetime.
- **Submission is asynchronous.**  :meth:`WorkerPool.submit` returns a
  :class:`PendingRun` immediately while a dispatcher thread feeds the
  workers demand-driven chunks; the campaign executor uses this to
  overlap shard N's SQLite commit with shard N+1's execution.

Determinism is untouched: a run's randomness depends only on
``(seed, run_index)`` and workers execute ``run_once`` exactly as the
serial and fresh-pool paths do, so all three produce bit-identical
:class:`~repro.experiments.runner.RunResult` streams (pinned by
``tests/experiments/test_pool.py``).

Pool activity is observable through the ``pool.*`` counters in
:mod:`repro.obs.names`: workers spawned, configure broadcasts, warm
cache hits/misses, and tasks dispatched.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import queue
import threading
import traceback
from collections import OrderedDict, deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_ready
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.adversary.jammer import JammerStrategy
from repro.core.config import JRSNDConfig
from repro.errors import (
    WORKER_TRAPPED_ERRORS,
    ConfigurationError,
    WorkerPoolError,
)
from repro.experiments.runner import NetworkExperiment, RunResult
from repro.obs import current
from repro.obs import names as _names
from repro.utils.validation import check_positive

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "ExperimentSpec",
    "PendingRun",
    "WorkerPool",
    "adaptive_chunksize",
    "available_cpu_count",
]

#: Constructed experiments a worker process keeps warm; beyond this the
#: least recently used one is dropped (its spec is retained, so a
#: revisit rebuilds locally without any IPC).
DEFAULT_CACHE_SIZE = 8

#: Hard cap on run indices shipped per task message, bounding both the
#: request payload and the ``RunResult`` batch coming back.
MAX_CHUNKSIZE = 32

_Outcome = Tuple[int, Optional[RunResult], Optional[str]]


def available_cpu_count() -> int:
    """CPUs actually available to this process.

    ``multiprocessing.cpu_count()`` reports the machine, not the
    process: in a cgroup-limited container or under ``taskset`` it
    over-spawns workers that then fight for the same few cores.  Where
    the platform exposes a scheduler affinity mask
    (``os.sched_getaffinity``), its size is the honest worker budget;
    elsewhere the machine count remains the best available answer.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            affinity = getaffinity(0)
        except OSError:
            affinity = None
        if affinity:
            return len(affinity)
    return multiprocessing.cpu_count()


def adaptive_chunksize(
    n_tasks: int, workers: int, chunksize: Optional[int] = None
) -> int:
    """Run indices per task message.

    ``multiprocessing``'s implicit chunksize of 1 costs one IPC round
    trip per run — pure overhead on many-run shards of cheap runs.
    Mirroring ``Pool.map``'s heuristic, aim for about four chunks per
    worker (keeping the tail balanced), capped at :data:`MAX_CHUNKSIZE`
    so a single reply can never carry an unbounded result batch.  An
    explicit ``chunksize`` overrides the heuristic.
    """
    if chunksize is not None:
        check_positive("chunksize", chunksize)
        return int(chunksize)
    check_positive("workers", workers)
    if n_tasks <= 0:
        return 1
    per_worker = -(-int(n_tasks) // (int(workers) * 4))
    return max(1, min(MAX_CHUNKSIZE, per_worker))


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything a worker needs to construct one experiment.

    This is the pool's unit of configuration: a picklable value object
    whose :meth:`content_key` is a content hash over every field that
    influences results, used to key the per-worker LRU of constructed
    experiments.  Two shards of the same sweep point produce equal
    keys, so the second one reuses the first one's warm experiment.
    """

    config: JRSNDConfig
    seed: int
    strategy_value: Any = JammerStrategy.REACTIVE.value
    mndp_rounds: int = 1
    link_model: str = "codes"
    correlation_backend: Optional[str] = None
    collect_metrics: bool = False
    compute_backend: str = "vectorized"
    phy_backend: Optional[str] = None

    def content_key(self) -> str:
        """Stable hash of ``(config, seed, strategy, ...)`` (16 hex)."""
        material = repr((
            sorted(dataclasses.asdict(self.config).items()),
            int(self.seed),
            self.strategy_value,
            int(self.mndp_rounds),
            self.link_model,
            self.correlation_backend,
            bool(self.collect_metrics),
            self.compute_backend,
            self.phy_backend,
        ))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def build(self) -> NetworkExperiment:
        """Construct the experiment exactly as ``_init_worker`` does."""
        return NetworkExperiment(
            self.config,
            seed=self.seed,
            strategy=JammerStrategy(self.strategy_value),
            mndp_rounds=self.mndp_rounds,
            link_model=self.link_model,
            correlation_backend=self.correlation_backend,
            collect_metrics=self.collect_metrics,
            compute_backend=self.compute_backend,
            phy_backend=self.phy_backend,
        )


def _worker_main(
    pipes: List[Tuple[Any, Any]], index: int, cache_size: int
) -> None:
    """Worker process loop: configure specs, run index chunks.

    Specs are retained for the process lifetime (they are tiny);
    constructed experiments live in an LRU of ``cache_size`` so a pool
    cycling through many points bounds its memory while revisited
    points stay warm.  Per-run failures are trapped exactly like
    ``run_parallel``'s ``_one_run`` and travel back as tagged outcome
    data; anything else is a pool fault reported as ``fatal``.

    Every worker receives *all* pipe ends and keeps only its own child
    end.  Under the fork start method each worker inherits the other
    pipes' file descriptors anyway; if they stayed open, a worker
    whose parent was SIGKILLed would never observe EOF (a sibling — or
    the worker itself — still holds a live write end) and the orphaned
    pool would survive the crash forever.  Closing the foreign ends
    here makes "parent died" indistinguishable from a clean shutdown:
    ``recv`` raises ``EOFError`` and the worker exits.
    """
    conn = pipes[index][1]
    for position, (parent_end, child_end) in enumerate(pipes):
        parent_end.close()
        if position != index:
            child_end.close()
    specs: Dict[str, ExperimentSpec] = {}
    experiments: "OrderedDict[str, NetworkExperiment]" = OrderedDict()
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            tag = message[0]
            if tag == "stop":
                break
            if tag == "configure":
                specs[message[1]] = message[2]
                continue
            if tag != "run":
                raise WorkerPoolError(
                    f"unknown pool message tag {tag!r}"
                )
            _, key, indices = message
            experiment = experiments.pop(key, None)
            if experiment is None:
                spec = specs.get(key)
                if spec is None:
                    raise WorkerPoolError(
                        f"run task for unconfigured spec key {key!r}"
                    )
                experiment = spec.build()
            experiments[key] = experiment  # most recently used last
            while len(experiments) > cache_size:
                experiments.popitem(last=False)
            outcomes: List[_Outcome] = []
            for index in indices:
                try:
                    outcomes.append(
                        (index, experiment.run_once(index), None)
                    )
                except WORKER_TRAPPED_ERRORS:
                    outcomes.append(
                        (index, None, traceback.format_exc())
                    )
            conn.send(("done", outcomes))
    except BaseException:  # jrsnd: noqa(JRS003) -- worker crash containment: every failure must reach the parent as a 'fatal' report before this process exits
        try:
            conn.send(("fatal", traceback.format_exc()))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


class PendingRun:
    """Handle for one submitted job; resolved by the dispatcher."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._outcomes: Optional[List[_Outcome]] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        """True once the job has finished (successfully or not)."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> List[_Outcome]:
        """Block until the job resolves; return its tagged outcomes.

        Outcomes are ``(run_index, RunResult | None, traceback | None)``
        triples in completion order — callers sort by index, exactly as
        ``run_parallel`` does for ``imap_unordered``.
        """
        if not self._event.wait(timeout):
            raise WorkerPoolError(
                f"pool job did not finish within {timeout} s"
            )
        if self._error is not None:
            raise self._error
        assert self._outcomes is not None
        return self._outcomes

    def _finish(self, outcomes: List[_Outcome]) -> None:
        self._outcomes = outcomes
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass
class _Job:
    spec: ExperimentSpec
    indices: List[int]
    chunksize: Optional[int]
    handle: PendingRun


class WorkerPool:
    """A pool of long-lived worker processes with warm experiments.

    Create one per campaign (or once per caller of ``run_parallel``)
    and reuse it across every shard::

        with WorkerPool(processes=4) as pool:
            for shard in shards:
                result = run_parallel(..., pool=pool)

    Jobs execute one at a time in submission order on a dispatcher
    thread that hands idle workers demand-driven index chunks, so a
    slow worker never stalls the fast ones.  The pool is *broken* by
    any infrastructure failure (a worker death, a protocol violation)
    and refuses further submissions; per-run failures do not break it.

    Parameters
    ----------
    processes:
        Worker process count; defaults to :func:`available_cpu_count`.
    cache_size:
        Constructed experiments each worker keeps warm (LRU).
    """

    def __init__(
        self,
        processes: Optional[int] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if processes is None:
            processes = available_cpu_count()
        check_positive("processes", processes)
        check_positive("cache_size", cache_size)
        context = multiprocessing.get_context()
        pipes = [
            context.Pipe(duplex=True) for _ in range(int(processes))
        ]
        self._conns: List[Any] = [parent for parent, _ in pipes]
        self._processes: List[Any] = []
        for index in range(int(processes)):
            process = context.Process(
                target=_worker_main,
                args=(pipes, index, int(cache_size)),
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        for _, child_end in pipes:
            child_end.close()
        current().inc(_names.POOL_WORKERS_SPAWNED, int(processes))
        self._delivered: Set[str] = set()
        self._jobs: "queue.Queue[Optional[_Job]]" = queue.Queue()
        self._lock = threading.Lock()
        self._closed = False
        self._broken = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="repro-pool-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    # -- lifecycle -----------------------------------------------------

    @property
    def processes(self) -> int:
        """Worker process count."""
        return len(self._processes)

    @property
    def broken(self) -> bool:
        """True once an infrastructure failure has disabled the pool."""
        with self._lock:
            return self._broken

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Stop the dispatcher and workers; idempotent.

        In-flight jobs finish first — their handles stay valid after
        the pool closes, only new submissions are refused.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._jobs.put(None)
        self._dispatcher.join(timeout=60.0)
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass  # worker already gone
        for process in self._processes:
            process.join(timeout=10.0)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for conn in self._conns:
            conn.close()

    # -- submission ----------------------------------------------------

    def submit(
        self,
        spec: ExperimentSpec,
        run_indices: Sequence[int],
        chunksize: Optional[int] = None,
    ) -> PendingRun:
        """Queue ``run_indices`` of ``spec``; returns immediately.

        The caller may submit the next job before waiting on this one —
        the campaign executor relies on that to commit shard N while
        the workers are already draining shard N+1.
        """
        indices = [int(index) for index in run_indices]
        if not indices:
            raise ConfigurationError("run_indices must be non-empty")
        if any(index < 0 for index in indices):
            raise ConfigurationError("run_indices must be non-negative")
        if chunksize is not None:
            check_positive("chunksize", chunksize)
        with self._lock:
            if self._broken:
                raise WorkerPoolError(
                    "worker pool is broken (a worker died or the "
                    "dispatch protocol failed); create a new pool"
                )
            if self._closed:
                raise ConfigurationError(
                    "worker pool is closed; create a new pool"
                )
            handle = PendingRun()
            self._jobs.put(
                _Job(
                    spec=spec,
                    indices=indices,
                    chunksize=chunksize,
                    handle=handle,
                )
            )
        return handle

    def run(
        self,
        spec: ExperimentSpec,
        run_indices: Sequence[int],
        chunksize: Optional[int] = None,
    ) -> List[_Outcome]:
        """Synchronous convenience: ``submit(...).wait()``."""
        return self.submit(spec, run_indices, chunksize).wait()

    # -- dispatcher ----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:
                return
            try:
                outcomes = self._execute(job)
            except BaseException as error:  # jrsnd: noqa(JRS003) -- dispatcher thread boundary: any failure must resolve the pending handle, not die silently in a daemon thread
                with self._lock:
                    self._broken = True
                job.handle._fail(error)
                self._fail_pending(error)
                return
            job.handle._finish(outcomes)

    @staticmethod
    def _send(conn: Any, message: Tuple[Any, ...]) -> None:
        try:
            conn.send(message)
        except (OSError, ValueError) as error:
            raise WorkerPoolError(
                f"a pool worker's pipe is closed (worker killed or "
                f"crashed): {error}"
            ) from error

    def _execute(self, job: _Job) -> List[_Outcome]:
        registry = current()
        key = job.spec.content_key()
        if key in self._delivered:
            registry.inc(_names.POOL_WARM_HITS)
        else:
            # One configure broadcast replaces what used to be a full
            # fork + config re-pickle + experiment rebuild per worker.
            for conn in self._conns:
                self._send(conn, ("configure", key, job.spec))
            self._delivered.add(key)
            registry.inc(_names.POOL_WARM_MISSES)
            registry.inc(_names.POOL_RECONFIGURES, len(self._conns))
        chunk = adaptive_chunksize(
            len(job.indices), len(self._conns), job.chunksize
        )
        chunks: Deque[List[int]] = deque(
            job.indices[start : start + chunk]
            for start in range(0, len(job.indices), chunk)
        )
        idle: Deque[Any] = deque(self._conns)
        busy: Set[Any] = set()
        outcomes: List[_Outcome] = []
        while chunks or busy:
            while chunks and idle:
                conn = idle.popleft()
                self._send(conn, ("run", key, chunks.popleft()))
                busy.add(conn)
                registry.inc(_names.POOL_TASKS_DISPATCHED)
            for conn in _wait_ready(list(busy)):
                try:
                    message = conn.recv()
                except EOFError:
                    raise WorkerPoolError(
                        "a pool worker exited unexpectedly "
                        "(killed or crashed before replying)"
                    ) from None
                if message[0] == "fatal":
                    raise WorkerPoolError(
                        f"pool worker failed:\n{message[1]}"
                    )
                outcomes.extend(message[1])
                busy.discard(conn)
                idle.append(conn)
        return outcomes

    def _fail_pending(self, error: BaseException) -> None:
        """Resolve every queued-but-unstarted handle after a break."""
        while True:
            try:
                job = self._jobs.get_nowait()
            except queue.Empty:
                return
            if job is not None:
                job.handle._fail(
                    WorkerPoolError(
                        f"worker pool broken by an earlier failure: "
                        f"{error}"
                    )
                )

"""The supervised, persistent warm worker pool behind campaign sweeps.

``run_parallel`` historically created a fresh ``multiprocessing.Pool``
per call and rebuilt the whole :class:`NetworkExperiment` (topology,
code pool, codecs, correlation matrices) in every worker via the pool
initializer.  That is fine for one 100-run sweep point, but a campaign
is hundreds of *small* shards — and with the chipless PHY backend the
run bodies are now so cheap that fork + re-pickle + rebuild dominates
the wall clock.

:class:`WorkerPool` amortizes all of that across a whole campaign:

- **Processes are spawned once** and reused for every shard.  Sizing
  respects the scheduler's CPU affinity mask
  (:func:`available_cpu_count`), not the raw machine core count.
- **Workers cache constructed experiments** in a small LRU keyed by a
  content hash of the experiment parameters
  (:meth:`ExperimentSpec.content_key`), so consecutive shards of the
  same sweep point — and revisits of a point anywhere in the grid —
  skip the rebuild entirely.  New points are announced with one cheap
  ``configure`` broadcast carrying the spec; the per-process artifact
  cache (codecs, correlation matrices, waveforms) stays warm for the
  pool's whole lifetime.
- **Submission is asynchronous.**  :meth:`WorkerPool.submit` returns a
  :class:`PendingRun` immediately while a dispatcher thread feeds the
  workers demand-driven chunks; the campaign executor uses this to
  overlap shard N's SQLite commit with shard N+1's execution.

**Supervision.**  An overnight campaign is only as reliable as its
least reliable process, so the dispatcher does not treat a worker
death as fatal.  Under a :class:`SupervisionPolicy`:

- a dead worker (EOF mid-chunk, broken pipe, ``fatal`` report) is
  **respawned** and its in-flight runs are **retried** as singleton
  chunks under bounded exponential backoff — runs are seed-pure, so a
  retried run is bit-identical to an undisturbed one;
- a run that keeps killing its worker past ``max_run_retries`` is
  **quarantined**: it comes back as a tagged failure outcome carrying
  :data:`~repro.errors.QUARANTINE_MARKER` (surfacing through
  ``ParallelExecutionError``) instead of sinking the pool;
- an optional per-chunk soft timeout (``run_timeout``) classifies a
  **hung** worker, which is killed, counted, and respawned like a
  crash;
- only *infrastructure* failures — the per-job respawn budget
  exhausted, a spawn failure, the pool closed mid-job — raise
  :class:`~repro.errors.WorkerPoolError` and break the pool.

An :class:`~repro.faults.execution.ExecutionFaultPlan` can be attached
at construction (test-only hook): workers call its ``before_run`` hook
ahead of every run attempt, which is how the seeded ``WorkerKiller`` /
``RunHang`` / ``SlowWorker`` injectors drive the supervisor
deterministically in tests and chaos CI.

Determinism is untouched: a run's randomness depends only on
``(seed, run_index)`` and workers execute ``run_once`` exactly as the
serial and fresh-pool paths do, so all three produce bit-identical
:class:`~repro.experiments.runner.RunResult` streams (pinned by
``tests/experiments/test_pool.py``) — with or without respawns in
between.

Pool activity is observable through the ``pool.*`` counters in
:mod:`repro.obs.names`: workers spawned/respawned/timed-out/
force-killed, configure broadcasts, warm cache hits/misses, tasks
dispatched, runs retried, and runs quarantined.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import queue
import threading
import time
import traceback
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_ready
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.adversary.jammer import JammerStrategy
from repro.core.config import JRSNDConfig
from repro.errors import (
    WORKER_TRAPPED_ERRORS,
    ConfigurationError,
    WorkerPoolError,
    quarantine_failure,
)
from repro.experiments.runner import NetworkExperiment, RunResult
from repro.obs import current
from repro.obs import names as _names
from repro.utils.validation import check_positive

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "ExperimentSpec",
    "PendingRun",
    "SupervisionPolicy",
    "WorkerPool",
    "adaptive_chunksize",
    "available_cpu_count",
]

#: Constructed experiments a worker process keeps warm; beyond this the
#: least recently used one is dropped (its spec is retained, so a
#: revisit rebuilds locally without any IPC).
DEFAULT_CACHE_SIZE = 8

#: Hard cap on run indices shipped per task message, bounding both the
#: request payload and the ``RunResult`` batch coming back.
MAX_CHUNKSIZE = 32

_Outcome = Tuple[int, Optional[RunResult], Optional[str]]


def available_cpu_count() -> int:
    """CPUs actually available to this process.

    ``multiprocessing.cpu_count()`` reports the machine, not the
    process: in a cgroup-limited container or under ``taskset`` it
    over-spawns workers that then fight for the same few cores.  Where
    the platform exposes a scheduler affinity mask
    (``os.sched_getaffinity``), its size is the honest worker budget;
    elsewhere the machine count remains the best available answer.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            affinity = getaffinity(0)
        except OSError:
            affinity = None
        if affinity:
            return len(affinity)
    return multiprocessing.cpu_count()


def adaptive_chunksize(
    n_tasks: int, workers: int, chunksize: Optional[int] = None
) -> int:
    """Run indices per task message.

    ``multiprocessing``'s implicit chunksize of 1 costs one IPC round
    trip per run — pure overhead on many-run shards of cheap runs.
    Mirroring ``Pool.map``'s heuristic, aim for about four chunks per
    worker (keeping the tail balanced), capped at :data:`MAX_CHUNKSIZE`
    so a single reply can never carry an unbounded result batch.  An
    explicit ``chunksize`` overrides the heuristic.
    """
    if chunksize is not None:
        check_positive("chunksize", chunksize)
        return int(chunksize)
    check_positive("workers", workers)
    if n_tasks <= 0:
        return 1
    per_worker = -(-int(n_tasks) // (int(workers) * 4))
    return max(1, min(MAX_CHUNKSIZE, per_worker))


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the pool reacts when workers die, hang, or wedge.

    Parameters
    ----------
    max_run_retries:
        How many times one run may kill (or hang) its worker and still
        be re-dispatched.  A run failing attempt ``max_run_retries``
        (i.e. on its ``max_run_retries + 1``-th try) is quarantined as
        a tagged failure outcome.
    max_respawns:
        Per-job respawn budget.  More worker deaths than this within a
        single job is an infrastructure failure: the pool breaks with
        ``WorkerPoolError`` (the campaign executor then degrades to a
        simpler engine).
    backoff_base / backoff_factor / backoff_max:
        Bounded exponential backoff slept by the dispatcher after each
        *consecutive* worker death — ``base * factor**(n-1)`` capped at
        ``backoff_max`` — so a crash-looping machine is not hammered
        with respawn storms.  The counter resets on any completed
        chunk.
    run_timeout:
        Optional per-chunk soft timeout (seconds).  A worker holding a
        chunk longer than this is classified as hung, killed, and
        respawned; its runs are retried/quarantined exactly like a
        crash.  ``None`` (default) disables the timeout and the
        dispatcher blocks without polling.
    close_grace:
        Per-escalation-step grace (seconds) used when reaping worker
        processes: join → ``terminate()`` → ``kill()``.
    """

    max_run_retries: int = 2
    max_respawns: int = 16
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    run_timeout: Optional[float] = None
    close_grace: float = 10.0

    def __post_init__(self) -> None:
        if self.max_run_retries < 0:
            raise ConfigurationError(
                f"max_run_retries must be >= 0, got {self.max_run_retries}"
            )
        if self.max_respawns < 0:
            raise ConfigurationError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff bounds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.run_timeout is not None:
            check_positive("run_timeout", self.run_timeout)
        check_positive("close_grace", self.close_grace)

    def retry_delay(self, consecutive_deaths: int) -> float:
        """Backoff before the dispatch following the n-th straight death."""
        if consecutive_deaths <= 0 or self.backoff_base == 0:
            return 0.0
        exponent = self.backoff_factor ** (consecutive_deaths - 1)
        return float(min(self.backoff_max, self.backoff_base * exponent))


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything a worker needs to construct one experiment.

    This is the pool's unit of configuration: a picklable value object
    whose :meth:`content_key` is a content hash over every field that
    influences results, used to key the per-worker LRU of constructed
    experiments.  Two shards of the same sweep point produce equal
    keys, so the second one reuses the first one's warm experiment.
    """

    config: JRSNDConfig
    seed: int
    strategy_value: Any = JammerStrategy.REACTIVE.value
    mndp_rounds: int = 1
    link_model: str = "codes"
    correlation_backend: Optional[str] = None
    collect_metrics: bool = False
    compute_backend: str = "vectorized"
    phy_backend: Optional[str] = None

    def content_key(self) -> str:
        """Stable hash of ``(config, seed, strategy, ...)`` (16 hex)."""
        material = repr((
            sorted(dataclasses.asdict(self.config).items()),
            int(self.seed),
            self.strategy_value,
            int(self.mndp_rounds),
            self.link_model,
            self.correlation_backend,
            bool(self.collect_metrics),
            self.compute_backend,
            self.phy_backend,
        ))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def build(self) -> NetworkExperiment:
        """Construct the experiment exactly as ``_init_worker`` does."""
        return NetworkExperiment(
            self.config,
            seed=self.seed,
            strategy=JammerStrategy(self.strategy_value),
            mndp_rounds=self.mndp_rounds,
            link_model=self.link_model,
            correlation_backend=self.correlation_backend,
            collect_metrics=self.collect_metrics,
            compute_backend=self.compute_backend,
            phy_backend=self.phy_backend,
        )


def _worker_main(
    conn: Any,
    close_conns: List[Any],
    cache_size: int,
    faults: Any = None,
) -> None:
    """Worker process loop: configure specs, run index chunks.

    Specs are retained for the process lifetime (they are tiny);
    constructed experiments live in an LRU of ``cache_size`` so a pool
    cycling through many points bounds its memory while revisited
    points stay warm.  Per-run failures are trapped exactly like
    ``run_parallel``'s ``_one_run`` and travel back as tagged outcome
    data; anything else is a pool fault reported as ``fatal``.

    ``close_conns`` carries every *parent-side* pipe end this process
    inherited (its own and those of already-running siblings) and is
    closed immediately.  If those ends stayed open, a worker whose
    parent was SIGKILLed would never observe EOF (a sibling — or the
    worker itself — still holds a live write end) and the orphaned
    pool would survive the crash forever.  Closing them makes "parent
    died" indistinguishable from a clean shutdown: ``recv`` raises
    ``EOFError`` and the worker exits.  The same argument covers
    respawned workers: each new worker closes every older sibling's
    parent end, so its own parent end is held by the parent alone.

    ``faults`` is the execution-plane chaos hook: when set, its
    ``before_run(index, attempt)`` runs ahead of every run attempt —
    the seeded injectors use it to kill, hang, or slow this process at
    deterministic points.
    """
    for foreign in close_conns:
        foreign.close()
    specs: Dict[str, ExperimentSpec] = {}
    experiments: "OrderedDict[str, NetworkExperiment]" = OrderedDict()
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            tag = message[0]
            if tag == "stop":
                break
            if tag == "configure":
                specs[message[1]] = message[2]
                continue
            if tag != "run":
                raise WorkerPoolError(
                    f"unknown pool message tag {tag!r}"
                )
            _, key, index_attempts = message
            experiment = experiments.pop(key, None)
            if experiment is None:
                spec = specs.get(key)
                if spec is None:
                    raise WorkerPoolError(
                        f"run task for unconfigured spec key {key!r}"
                    )
                experiment = spec.build()
            experiments[key] = experiment  # most recently used last
            while len(experiments) > cache_size:
                experiments.popitem(last=False)
            outcomes: List[_Outcome] = []
            for index, attempt in index_attempts:
                if faults is not None:
                    faults.before_run(index, attempt)
                try:
                    outcomes.append(
                        (index, experiment.run_once(index), None)
                    )
                except WORKER_TRAPPED_ERRORS:
                    outcomes.append(
                        (index, None, traceback.format_exc())
                    )
            conn.send(("done", outcomes))
    except BaseException:  # jrsnd: noqa(JRS003) -- worker crash containment: every failure must reach the parent as a 'fatal' report before this process exits
        try:
            conn.send(("fatal", traceback.format_exc()))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


class PendingRun:
    """Handle for one submitted job; resolved by the dispatcher."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._outcomes: Optional[List[_Outcome]] = None
        self._error: Optional[BaseException] = None
        self._cancelled = False

    def done(self) -> bool:
        """True once the job has finished (successfully or not)."""
        return self._event.is_set()

    @property
    def cancelled(self) -> bool:
        """True once the job has been cancelled by a timed-out wait."""
        return self._cancelled

    def cancel(self) -> None:
        """Withdraw the job: the dispatcher skips it if not yet started.

        A job already executing runs to completion (its results are
        simply discarded with this handle); a queued job is resolved
        with ``WorkerPoolError`` instead of occupying the pool.  This
        is what :meth:`wait` does on timeout, closing the old
        outstanding-slot leak where a timed-out job stayed registered
        with the dispatcher and could race the caller's next job.
        """
        self._cancelled = True

    def wait(self, timeout: Optional[float] = None) -> List[_Outcome]:
        """Block until the job resolves; return its tagged outcomes.

        Outcomes are ``(run_index, RunResult | None, traceback | None)``
        triples in completion order — callers sort by index, exactly as
        ``run_parallel`` does for ``imap_unordered``.

        On timeout the job is cancelled (see :meth:`cancel`) before
        ``WorkerPoolError`` is raised, so it cannot fire late into a
        dispatcher slot the caller has mentally reclaimed.
        """
        if not self._event.wait(timeout):
            self.cancel()
            raise WorkerPoolError(
                f"pool job did not finish within {timeout} s; the job "
                f"was cancelled (skipped unless already running)"
            )
        if self._error is not None:
            raise self._error
        assert self._outcomes is not None
        return self._outcomes

    def _finish(self, outcomes: List[_Outcome]) -> None:
        self._outcomes = outcomes
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass
class _Job:
    spec: ExperimentSpec
    indices: List[int]
    chunksize: Optional[int]
    handle: PendingRun


@dataclass
class _Worker:
    """One live worker process and its parent-side pipe end."""

    slot: int
    process: Any
    conn: Any
    delivered: Set[str] = field(default_factory=set)


class WorkerPool:
    """A supervised pool of long-lived workers with warm experiments.

    Create one per campaign (or once per caller of ``run_parallel``)
    and reuse it across every shard::

        with WorkerPool(processes=4) as pool:
            for shard in shards:
                result = run_parallel(..., pool=pool)

    Jobs execute one at a time in submission order on a dispatcher
    thread that hands idle workers demand-driven index chunks, so a
    slow worker never stalls the fast ones.  Worker deaths and hangs
    are absorbed by the :class:`SupervisionPolicy` (respawn + retry +
    quarantine); the pool only becomes *broken* — refusing further
    submissions — on an infrastructure failure such as an exhausted
    respawn budget.  Per-run failures never break it.

    Parameters
    ----------
    processes:
        Worker process count; defaults to :func:`available_cpu_count`.
    cache_size:
        Constructed experiments each worker keeps warm (LRU).
    policy:
        Supervision knobs; defaults to ``SupervisionPolicy()``.
    execution_faults:
        Test-only :class:`~repro.faults.execution.ExecutionFaultPlan`
        delivered to every worker (original and respawned alike).
    """

    def __init__(
        self,
        processes: Optional[int] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        policy: Optional[SupervisionPolicy] = None,
        execution_faults: Any = None,
    ) -> None:
        if processes is None:
            processes = available_cpu_count()
        check_positive("processes", processes)
        check_positive("cache_size", cache_size)
        self._policy = policy or SupervisionPolicy()
        self._cache_size = int(cache_size)
        if execution_faults is not None and not getattr(
            execution_faults, "enabled", True
        ):
            execution_faults = None  # inert plan == no plan (bit-identical)
        self._faults = execution_faults
        self._context = multiprocessing.get_context()
        self._workers: List[_Worker] = []
        for slot in range(int(processes)):
            self._workers.append(self._spawn_worker(slot))
        self._specs: Dict[str, ExperimentSpec] = {}
        self._job_respawns = 0
        self._jobs: "queue.Queue[Optional[_Job]]" = queue.Queue()
        self._lock = threading.Lock()
        self._closed = False
        self._broken = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="repro-pool-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    # -- lifecycle -----------------------------------------------------

    @property
    def processes(self) -> int:
        """Worker process count."""
        return len(self._workers)

    @property
    def _processes(self) -> List[Any]:
        """The live worker ``Process`` objects (testing/debug aid)."""
        return [worker.process for worker in self._workers]

    @property
    def broken(self) -> bool:
        """True once an infrastructure failure has disabled the pool."""
        with self._lock:
            return self._broken

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Stop the dispatcher and workers; idempotent.

        An in-flight job is given ``close_grace`` seconds to finish;
        after that shutdown escalates per worker — join, then
        ``terminate()``, then ``kill()`` — so a wedged or
        SIGTERM-ignoring worker can not leak past close.  Workers that
        needed ``kill()`` are surfaced on the
        ``pool.workers_force_killed`` counter.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        grace = self._policy.close_grace
        self._jobs.put(None)
        self._dispatcher.join(timeout=grace)
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass  # worker already gone
        force_killed = 0
        for worker in self._workers:
            if self._stop_process(worker.process, grace):
                force_killed += 1
        if force_killed:
            current().inc(
                _names.POOL_WORKERS_FORCE_KILLED, force_killed
            )
        if self._dispatcher.is_alive():
            # The workers are gone now, so a dispatcher that was stuck
            # waiting on one unwinds via EOF and exits promptly.
            self._dispatcher.join(timeout=grace)
        for worker in self._workers:
            try:
                worker.conn.close()
            except OSError:
                pass

    @staticmethod
    def _stop_process(
        process: Any, grace: float, suspect: bool = False
    ) -> bool:
        """Reap ``process``: join → terminate → kill escalation.

        Returns True if SIGKILL was required.  ``suspect`` skips the
        polite join — used for workers already classified as hung.
        """
        if not suspect:
            process.join(timeout=grace)
            if not process.is_alive():
                return False
        process.terminate()
        process.join(timeout=grace)
        if not process.is_alive():
            return False
        process.kill()
        process.join(timeout=grace)
        return True

    # -- submission ----------------------------------------------------

    def submit(
        self,
        spec: ExperimentSpec,
        run_indices: Sequence[int],
        chunksize: Optional[int] = None,
    ) -> PendingRun:
        """Queue ``run_indices`` of ``spec``; returns immediately.

        The caller may submit the next job before waiting on this one —
        the campaign executor relies on that to commit shard N while
        the workers are already draining shard N+1.
        """
        indices = [int(index) for index in run_indices]
        if not indices:
            raise ConfigurationError("run_indices must be non-empty")
        if any(index < 0 for index in indices):
            raise ConfigurationError("run_indices must be non-negative")
        if chunksize is not None:
            check_positive("chunksize", chunksize)
        with self._lock:
            if self._broken:
                raise WorkerPoolError(
                    "worker pool is broken (respawn budget exhausted "
                    "or the dispatch protocol failed); create a new "
                    "pool"
                )
            if self._closed:
                raise ConfigurationError(
                    "worker pool is closed; create a new pool"
                )
            handle = PendingRun()
            self._jobs.put(
                _Job(
                    spec=spec,
                    indices=indices,
                    chunksize=chunksize,
                    handle=handle,
                )
            )
        return handle

    def run(
        self,
        spec: ExperimentSpec,
        run_indices: Sequence[int],
        chunksize: Optional[int] = None,
    ) -> List[_Outcome]:
        """Synchronous convenience: ``submit(...).wait()``."""
        return self.submit(spec, run_indices, chunksize).wait()

    # -- worker management ---------------------------------------------

    def _spawn_worker(self, slot: int) -> _Worker:
        """Start one worker process wired for orphan-free shutdown."""
        parent_end, child_end = self._context.Pipe(duplex=True)
        close_conns = [
            worker.conn for worker in getattr(self, "_workers", [])
        ]
        close_conns.append(parent_end)
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_end,
                close_conns,
                self._cache_size,
                self._faults,
            ),
            daemon=True,
        )
        process.start()
        child_end.close()
        current().inc(_names.POOL_WORKERS_SPAWNED)
        return _Worker(slot=slot, process=process, conn=parent_end)

    def _respawn(self, slot: int, reason: str, hung: bool = False) -> None:
        """Replace the worker in ``slot`` after a death or hang.

        Raises ``WorkerPoolError`` (infrastructure) when the pool is
        closing, the per-job respawn budget is exhausted, or the
        replacement itself cannot be spawned.
        """
        with self._lock:
            closing = self._closed
        worker = self._workers[slot]
        self._stop_process(worker.process, self._policy.close_grace,
                           suspect=hung)
        try:
            worker.conn.close()
        except OSError:
            pass
        if closing:
            raise WorkerPoolError(
                "worker pool closed while a job was in flight"
            )
        self._job_respawns += 1
        if self._job_respawns > self._policy.max_respawns:
            raise WorkerPoolError(
                f"respawn budget exhausted ({self._policy.max_respawns}"
                f" worker deaths in one job); last failure: {reason}"
            )
        try:
            self._workers[slot] = self._spawn_worker(slot)
        except (OSError, ValueError) as error:
            raise WorkerPoolError(
                f"could not respawn pool worker {slot}: {error}"
            ) from error
        current().inc(_names.POOL_WORKERS_RESPAWNED)

    def _deliver(
        self,
        worker: _Worker,
        key: str,
        chunk: List[int],
        attempts: Dict[int, int],
    ) -> bool:
        """Send (configure if needed +) a run chunk; False if the pipe
        is dead — the caller respawns and the chunk stays queued."""
        try:
            if key not in worker.delivered:
                worker.conn.send(
                    ("configure", key, self._specs[key])
                )
                worker.delivered.add(key)
                current().inc(_names.POOL_RECONFIGURES)
            worker.conn.send(
                ("run", key,
                 [(index, attempts[index]) for index in chunk])
            )
        except (OSError, ValueError):
            return False
        return True

    # -- dispatcher ----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:
                return
            if job.handle.cancelled:
                job.handle._fail(
                    WorkerPoolError(
                        "pool job was cancelled by a timed-out wait "
                        "before it started"
                    )
                )
                continue
            try:
                outcomes = self._execute(job)
            except BaseException as error:  # jrsnd: noqa(JRS003) -- dispatcher thread boundary: any failure must resolve the pending handle, not die silently in a daemon thread
                with self._lock:
                    self._broken = True
                job.handle._fail(error)
                self._fail_pending(error)
                return
            job.handle._finish(outcomes)

    def _execute(self, job: _Job) -> List[_Outcome]:
        registry = current()
        policy = self._policy
        key = job.spec.content_key()
        if key in self._specs:
            registry.inc(_names.POOL_WARM_HITS)
        else:
            self._specs[key] = job.spec
            registry.inc(_names.POOL_WARM_MISSES)
        self._job_respawns = 0
        # Configure broadcast up front: one cheap spec message per
        # worker missing this key replaces what used to be a full
        # fork + config re-pickle + experiment rebuild per worker.
        for slot in range(len(self._workers)):
            while key not in self._workers[slot].delivered:
                worker = self._workers[slot]
                try:
                    worker.conn.send(("configure", key, job.spec))
                    worker.delivered.add(key)
                    registry.inc(_names.POOL_RECONFIGURES)
                except (OSError, ValueError):
                    self._respawn(
                        slot, "worker gone before configure"
                    )
        chunk = adaptive_chunksize(
            len(job.indices), len(self._workers), job.chunksize
        )
        attempts: Dict[int, int] = {
            int(index): 0 for index in job.indices
        }
        pending: Deque[List[int]] = deque(
            job.indices[start : start + chunk]
            for start in range(0, len(job.indices), chunk)
        )
        in_flight: Dict[int, Tuple[List[int], float]] = {}
        outcomes: List[_Outcome] = []
        consecutive_deaths = 0
        while pending or in_flight:
            # -- dispatch to idle workers ------------------------------
            for slot in range(len(self._workers)):
                if not pending:
                    break
                if slot in in_flight:
                    continue
                worker = self._workers[slot]
                chunk_indices = pending[0]
                if self._deliver(worker, key, chunk_indices, attempts):
                    pending.popleft()
                    in_flight[slot] = (
                        chunk_indices, time.monotonic()
                    )
                    registry.inc(_names.POOL_TASKS_DISPATCHED)
                else:
                    # Dead before the chunk was even dispatched: the
                    # chunk carries no blame (stays queued as-is); the
                    # respawn budget still bounds this.
                    consecutive_deaths += 1
                    self._respawn(
                        slot, "worker gone before dispatch"
                    )
            if not in_flight:
                continue
            # -- wait for replies (bounded by the soft timeout) --------
            conn_to_slot = {
                self._workers[slot].conn: slot for slot in in_flight
            }
            timeout: Optional[float] = None
            if policy.run_timeout is not None:
                now = time.monotonic()
                deadline = min(
                    started + policy.run_timeout
                    for _, started in in_flight.values()
                )
                timeout = max(0.001, deadline - now)
            ready = _wait_ready(list(conn_to_slot), timeout)
            if not ready:
                # Soft timeout expired: classify hung workers, kill
                # and respawn them, retry/quarantine their runs.
                assert policy.run_timeout is not None
                now = time.monotonic()
                for slot in list(in_flight):
                    chunk_indices, started = in_flight[slot]
                    if now - started < policy.run_timeout:
                        continue
                    registry.inc(_names.POOL_WORKERS_TIMED_OUT)
                    consecutive_deaths += 1
                    del in_flight[slot]
                    reason = (
                        f"chunk exceeded the {policy.run_timeout} s "
                        f"soft timeout (hung worker killed)"
                    )
                    self._respawn(slot, reason, hung=True)
                    self._absorb_failure(
                        chunk_indices, attempts, pending, outcomes,
                        reason, registry,
                    )
                self._backoff(consecutive_deaths)
                continue
            for conn in ready:
                slot = conn_to_slot[conn]
                if slot not in in_flight:
                    continue  # already handled this sweep
                try:
                    message: Optional[Tuple[Any, ...]] = conn.recv()
                except (EOFError, OSError):
                    message = None
                if message is not None and message[0] == "done":
                    in_flight.pop(slot)
                    outcomes.extend(message[1])
                    consecutive_deaths = 0
                    continue
                # EOF (killed / crashed) or a 'fatal' report: either
                # way this worker is done for — respawn it and put the
                # blame on the runs it was holding.
                chunk_indices, _ = in_flight.pop(slot)
                reason = (
                    "worker died mid-chunk (killed or crashed "
                    "before replying)"
                    if message is None
                    else f"worker fault:\n{message[1]}"
                )
                consecutive_deaths += 1
                self._respawn(slot, reason)
                self._absorb_failure(
                    chunk_indices, attempts, pending, outcomes,
                    reason, registry,
                )
                self._backoff(consecutive_deaths)
        return outcomes

    def _absorb_failure(
        self,
        chunk_indices: List[int],
        attempts: Dict[int, int],
        pending: Deque[List[int]],
        outcomes: List[_Outcome],
        reason: str,
        registry: Any,
    ) -> None:
        """Retry or quarantine every run of a failed chunk.

        Retried runs go back as *singleton* chunks: a run sharing a
        chunk with a poison run must not inherit its blame, and after
        one isolation round the killer is unambiguous.
        """
        policy = self._policy
        for index in chunk_indices:
            attempts[index] += 1
            if attempts[index] > policy.max_run_retries:
                outcomes.append((
                    index,
                    None,
                    quarantine_failure(index, attempts[index], reason),
                ))
                registry.inc(_names.POOL_RUNS_QUARANTINED)
            else:
                pending.append([index])
                registry.inc(_names.POOL_RUNS_RETRIED)

    def _backoff(self, consecutive_deaths: int) -> None:
        delay = self._policy.retry_delay(consecutive_deaths)
        if delay > 0:
            time.sleep(delay)

    def _fail_pending(self, error: BaseException) -> None:
        """Resolve every queued-but-unstarted handle after a break."""
        while True:
            try:
                job = self._jobs.get_nowait()
            except queue.Empty:
                return
            if job is not None:
                job.handle._fail(
                    WorkerPoolError(
                        f"worker pool broken by an earlier failure: "
                        f"{error}"
                    )
                )

"""Chaos soak scenarios: seeded fault plans with invariant auditing.

:func:`run_chaos` builds an event network with a
:class:`~repro.faults.FaultPlan` attached to the medium, drives periodic
discovery plus the session garbage collector under the plan for a fixed
simulated duration, and audits the final state with an
:class:`~repro.faults.InvariantChecker`.  The point is not throughput
but *graceful degradation*: however hostile the schedule, the run must
terminate, no node may list a false neighbor, and no session or monitor
refcount may leak.

:func:`default_chaos_plan` composes the standard soak mix — chip-burst
jamming windows, probabilistic drop, duplicate and reordered delivery,
node churn and per-node clock skew — from plain knobs, which is also
what the ``chaos`` CLI subcommand exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.config import JRSNDConfig
from repro.obs import names as _names
from repro.experiments.scenarios import build_event_network
from repro.faults import (
    BurstJammer,
    ClockSkew,
    Duplicator,
    FaultPlan,
    InvariantChecker,
    InvariantViolation,
    MessageDrop,
    NodeChurn,
    Reorderer,
)

__all__ = ["ChaosReport", "default_chaos_plan", "run_chaos"]


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one chaos soak."""

    seed: int
    duration: float
    terminated: bool
    events: int
    logical_links: int
    sessions_gced: int
    violations: Tuple[InvariantViolation, ...]
    fault_counters: Dict[str, int]
    trace_counters: Dict[str, int]

    @property
    def ok(self) -> bool:
        """True when the run terminated with zero invariant violations."""
        return self.terminated and not self.violations

    def summary_lines(self) -> Tuple[str, ...]:
        """Human-readable report lines for the CLI."""
        lines = [
            f"chaos soak: seed={self.seed} duration={self.duration:g}s "
            f"events={self.events} links={self.logical_links}",
            f"sessions gc'd: {self.sessions_gced}",
        ]
        if self.fault_counters:
            injected = ", ".join(
                f"{name.split('.', 1)[1]}={value}"
                for name, value in sorted(self.fault_counters.items())
            )
            lines.append(f"faults injected: {injected}")
        retry = {
            name: value
            for name, value in sorted(self.trace_counters.items())
            if name.startswith(_names.RETRY_PREFIX)
        }
        if retry:
            lines.append(
                "recovery: "
                + ", ".join(
                    f"{name.split('.', 1)[1]}={value}"
                    for name, value in retry.items()
                )
            )
        if self.violations:
            lines.append(f"INVARIANT VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"  {violation}" for violation in self.violations)
        else:
            lines.append("invariants: all hold")
        return tuple(lines)


def default_chaos_plan(
    config: JRSNDConfig,
    seed: int,
    duration: float,
    drop: float = 0.05,
    burst: float = 0.5,
    burst_period: float = 5.0,
    churn: bool = True,
    skew: float = 1e-3,
    duplicate: float = 0.02,
    reorder: float = 0.02,
    reorder_delay: float = 5e-3,
) -> FaultPlan:
    """The standard soak mix; pass 0 / ``False`` to disable a fault.

    Defaults compose all six injector types: periodic chip-burst jam
    windows, 5% message drop, 2% duplication, 2% reordering, random
    exponential node churn, and ~1 ms per-node clock skew.
    """
    injectors = []
    if burst > 0.0 and burst_period > 0.0:
        count = max(1, int(duration // burst_period))
        injectors.append(
            BurstJammer.periodic(
                start=0.5 * burst_period,
                period=burst_period,
                burst=burst,
                count=count,
            )
        )
    if drop > 0.0:
        injectors.append(MessageDrop(drop))
    if duplicate > 0.0:
        injectors.append(Duplicator(duplicate, gap=2e-3))
    if reorder > 0.0:
        injectors.append(Reorderer(reorder, max_delay=reorder_delay))
    if churn:
        injectors.append(
            NodeChurn.random(
                nodes=range(config.n_nodes),
                horizon=duration,
                mean_uptime=max(duration / 3.0, 1.0),
                mean_downtime=max(duration / 12.0, 0.5),
            )
        )
    if skew > 0.0:
        injectors.append(ClockSkew(max_skew=skew))
    return FaultPlan(injectors, seed=seed)


def chaos_config(n_nodes: int = 8) -> JRSNDConfig:
    """A small, fast deployment suited to event-level chaos soaks."""
    return JRSNDConfig(
        n_nodes=n_nodes,
        codes_per_node=3,
        share_count=3,
        n_compromised=0,
        field_width=500.0,
        field_height=500.0,
        tx_range=300.0,
        rho=1e-9,
    )


def run_chaos(
    config: JRSNDConfig,
    seed: int,
    duration: float = 30.0,
    plan: Optional[FaultPlan] = None,
    discovery_period: float = 10.0,
    gc_interval: float = 5.0,
    mndp: bool = True,
) -> ChaosReport:
    """Run one invariant-checked chaos soak and return its report.

    ``plan=None`` composes :func:`default_chaos_plan`; pass an explicit
    plan (e.g. :class:`~repro.faults.NullFaultPlan`) to control the mix.
    The network runs randomized periodic discovery and the per-node
    session GC for ``duration`` simulated seconds, then a final GC
    sweep precedes the invariant audit so only genuinely wedged state
    can fail the session checks.
    """
    if plan is None:
        plan = default_chaos_plan(config, seed=seed, duration=duration)
    net = build_event_network(config, seed=seed, faults=plan)
    checker = InvariantChecker().attach(net.simulator)
    for node in net.nodes:
        node.start_periodic_discovery(discovery_period, mndp=mndp)
        node.start_session_gc(gc_interval)
    net.simulator.run(until=duration)
    terminated = net.simulator.now <= duration + 1e-9
    for node in net.nodes:
        node.gc_stale_sessions()
    checker.check_network(net)
    counters = dict(net.trace.counters())
    return ChaosReport(
        seed=seed,
        duration=duration,
        terminated=terminated,
        events=checker.events_seen,
        logical_links=len(net.logical_pairs()),
        sessions_gced=counters.get(_names.RETRY_SESSIONS_GCED, 0),
        violations=tuple(checker.violations),
        fault_counters=dict(getattr(plan, "counters", {})),
        trace_counters=counters,
    )

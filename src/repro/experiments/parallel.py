"""Multiprocess Monte Carlo execution.

The paper averages every point over 100 runs; runs are embarrassingly
parallel (each derives its own seed stream), so
:func:`run_parallel` fans them out over worker processes and returns the
same :class:`~repro.experiments.runner.ExperimentResult` a serial
``NetworkExperiment.run`` would.  Results are bit-identical to the
serial path because each run's randomness depends only on
``(seed, run_index)``.

Robustness and efficiency:

- the experiment parameters (including the full ``JRSNDConfig``) are
  shipped to each worker **once** via a configure broadcast instead of
  being re-pickled with every task — a task is just a run index;
- workers never let a run exception escape the dispatch protocol:
  failures come back tagged with their run index, and after all tasks
  drain the completed runs are preserved on the raised
  :class:`~repro.errors.ParallelExecutionError` instead of being lost
  to a bare mid-map traceback;
- outcomes arrive in completion order (fastest drain) and are
  reordered deterministically by run index before aggregation, so the
  returned result is independent of worker scheduling;
- tasks are batched with an adaptive ``chunksize``
  (:func:`~repro.experiments.pool.adaptive_chunksize`) instead of the
  implicit 1, cutting per-task IPC on many-run sweeps;
- both multiprocess paths run on the supervised
  :class:`~repro.experiments.pool.WorkerPool` — a worker death is
  respawned and its runs retried (seed-pure, so bit-identical) rather
  than aborting the sweep;
- a persistent :class:`~repro.experiments.pool.WorkerPool` can be
  passed as ``pool=`` to reuse warm worker processes (and their cached
  experiments) across many calls — the campaign executor does this for
  every shard of a grid.  ``pool=None`` keeps the self-contained
  behavior (a fresh per-call pool); all three paths (serial, fresh
  pool, persistent pool) are bit-identical.

With ``collect_metrics=True`` each worker attaches a per-run
:class:`~repro.obs.MetricsSnapshot` to its ``RunResult`` (the
process-global registry of the *parent* is not shared with workers);
``ExperimentResult.merged_metrics()`` then yields counter totals
identical to a serial instrumented run of the same seed.
"""

from __future__ import annotations

import traceback
from typing import Any, List, Optional, Sequence, Tuple

from repro.adversary.jammer import JammerStrategy
from repro.core.config import JRSNDConfig
from repro.errors import (
    WORKER_TRAPPED_ERRORS,
    ConfigurationError,
    ParallelExecutionError,
)
from repro.experiments.pool import (
    ExperimentSpec,
    SupervisionPolicy,
    WorkerPool,
    available_cpu_count,
)
from repro.experiments.runner import (
    ExperimentResult,
    NetworkExperiment,
    RunResult,
)
from repro.utils.validation import check_positive

__all__ = ["collect_outcomes", "run_parallel"]

# Per-worker-process experiment, built once by _init_worker so that the
# configuration is pickled once per worker instead of once per task.
_worker_experiment: Optional[NetworkExperiment] = None

_Outcome = Tuple[int, Optional[RunResult], Optional[str]]


def _init_worker(
    config: JRSNDConfig,
    seed: int,
    strategy_value: Any,
    mndp_rounds: int,
    link_model: str,
    correlation_backend: Optional[str],
    collect_metrics: bool,
    compute_backend: str = "vectorized",
    phy_backend: Optional[str] = None,
) -> None:
    """Pool initializer: rebuild the experiment once per worker."""
    global _worker_experiment
    _worker_experiment = NetworkExperiment(
        config,
        seed=seed,
        strategy=JammerStrategy(strategy_value),
        mndp_rounds=mndp_rounds,
        link_model=link_model,
        correlation_backend=correlation_backend,
        collect_metrics=collect_metrics,
        compute_backend=compute_backend,
        phy_backend=phy_backend,
    )


def _one_run(index: int) -> _Outcome:
    """Worker: execute one snapshot, tagging any failure with its index.

    An exception inside a raw ``pool.map`` callable aborts the whole
    map and discards every completed run, so every failure family a
    run can realistically produce —
    :data:`~repro.errors.WORKER_TRAPPED_ERRORS` — travels back as data
    instead.  Exceptions outside those families (``KeyboardInterrupt``,
    ``SystemExit``, non-``ReproError`` customs) still propagate: they
    signal cancellation or a plugged-in component misusing the error
    taxonomy, not a failed run.
    """
    try:
        return index, _worker_experiment.run_once(index), None
    except WORKER_TRAPPED_ERRORS:
        return index, None, traceback.format_exc()


def collect_outcomes(
    outcomes: List[_Outcome], runs: int
) -> ExperimentResult:
    """Aggregate tagged outcomes into a result, raising on failures.

    Shared by every execution path (serial, fresh pool, persistent
    pool): outcomes are reordered deterministically by run index, and
    any failure raises :class:`~repro.errors.ParallelExecutionError`
    carrying the runs that did complete.
    """
    outcomes.sort(key=lambda outcome: outcome[0])
    failures = [
        (index, tb) for index, _, tb in outcomes if tb is not None
    ]
    completed = tuple(
        result for _, result, tb in outcomes if tb is None
    )
    if failures:
        failed_indices = ", ".join(str(index) for index, _ in failures)
        raise ParallelExecutionError(
            f"{len(failures)} of {runs} runs failed "
            f"(indices {failed_indices}); first failure:\n"
            f"{failures[0][1]}",
            failures=failures,
            completed=ExperimentResult(runs=completed),
        )
    return ExperimentResult(runs=completed)


def run_parallel(
    config: JRSNDConfig,
    seed: int,
    runs: int,
    processes: Optional[int] = None,
    strategy: JammerStrategy = JammerStrategy.REACTIVE,
    mndp_rounds: int = 1,
    link_model: str = "codes",
    correlation_backend: Optional[str] = None,
    collect_metrics: bool = False,
    compute_backend: str = "vectorized",
    run_indices: Optional[Sequence[int]] = None,
    phy_backend: Optional[str] = None,
    pool: Optional[WorkerPool] = None,
    chunksize: Optional[int] = None,
    supervision: Optional[SupervisionPolicy] = None,
    execution_faults: Any = None,
) -> ExperimentResult:
    """Execute ``runs`` snapshots across ``processes`` workers.

    ``processes`` defaults to the CPUs available to *this process*
    (the scheduler affinity mask where the platform exposes one, via
    :func:`~repro.experiments.pool.available_cpu_count`), capped at
    ``runs``.
    Results are identical to ``NetworkExperiment(...).run(runs)``;
    ``correlation_backend`` (when set) overrides the configured
    chip-level backend in every worker, exactly as it does serially,
    and ``compute_backend`` selects the snapshot-pipeline
    implementation just like the serial constructor argument.
    ``phy_backend`` (when set) overrides ``config.phy_backend`` in every
    worker, selecting the message / chip / chipless D-NDP sampling path.

    ``run_indices`` selects which run indices to execute (default
    ``range(runs)``).  A run's randomness depends only on
    ``(seed, run_index)``, so executing indices ``[4, 5, 6, 7]`` here
    yields exactly the runs 4-7 of a full ``range(8)`` sweep — this is
    what lets ``repro.campaigns`` split one sweep point into
    independently checkpointed shards without perturbing any stream.
    When given, ``runs`` must equal ``len(run_indices)``.

    ``pool`` (when set) executes the runs on a persistent
    :class:`~repro.experiments.pool.WorkerPool` instead of a throwaway
    one: the workers and their cached experiments survive across
    calls, so repeated calls for the same parameters skip the per-call
    rebuild entirely.  ``processes`` is ignored in that case (the pool
    was sized at construction).  Without a ``pool``, multi-worker
    execution still runs on a (fresh, per-call) supervised
    ``WorkerPool``, so worker deaths are respawned/retried rather than
    aborting the sweep; ``supervision`` tunes that policy and
    ``execution_faults`` is the test-only chaos hook, both ignored
    when a persistent ``pool`` is passed (it carries its own).
    ``chunksize`` overrides the adaptive run-indices-per-task batch on
    either multiprocess path.

    Raises :class:`~repro.errors.ParallelExecutionError` if any run
    fails, after all tasks have drained — the exception carries every
    failure's index and traceback plus an ``ExperimentResult`` of the
    runs that did complete.
    """
    check_positive("runs", runs)
    if processes is not None:
        check_positive("processes", processes)
    if run_indices is not None:
        indices_list = [int(index) for index in run_indices]
        if len(indices_list) != int(runs):
            raise ConfigurationError(
                f"runs ({runs}) must equal len(run_indices) "
                f"({len(indices_list)})"
            )
        if any(index < 0 for index in indices_list):
            raise ConfigurationError("run_indices must be non-negative")
    if chunksize is not None:
        check_positive("chunksize", chunksize)
    indices: Sequence[int] = (
        range(int(runs)) if run_indices is None else indices_list
    )
    spec = ExperimentSpec(
        config=config,
        seed=seed,
        strategy_value=strategy.value,
        mndp_rounds=mndp_rounds,
        link_model=link_model,
        correlation_backend=correlation_backend,
        collect_metrics=collect_metrics,
        compute_backend=compute_backend,
        phy_backend=phy_backend,
    )
    if pool is not None:
        return collect_outcomes(
            pool.run(spec, indices, chunksize=chunksize), int(runs)
        )
    workers = min(
        processes or available_cpu_count(), int(runs)
    )
    if workers <= 1:
        global _worker_experiment
        try:
            _init_worker(
                config,
                seed,
                strategy.value,
                mndp_rounds,
                link_model,
                correlation_backend,
                collect_metrics,
                compute_backend,
                phy_backend,
            )
            outcomes: List[_Outcome] = [
                _one_run(index) for index in indices
            ]
        finally:
            # The inline path runs in the *caller's* process: leaving
            # the built experiment in the module global would leak a
            # full topology/codec graph into every later caller.
            _worker_experiment = None
    else:
        # The fresh path is a throwaway *supervised* pool, not a raw
        # ``multiprocessing.Pool``: a worker SIGKILLed mid-map would
        # wedge ``imap_unordered`` forever, whereas the supervisor
        # respawns the worker and retries its runs (bit-identically —
        # a run's randomness depends only on ``(seed, run_index)``).
        with WorkerPool(
            processes=workers,
            policy=supervision,
            execution_faults=execution_faults,
        ) as fresh_pool:
            outcomes = fresh_pool.run(
                spec, indices, chunksize=chunksize
            )
    return collect_outcomes(outcomes, int(runs))

"""Multiprocess Monte Carlo execution.

The paper averages every point over 100 runs; runs are embarrassingly
parallel (each derives its own seed stream), so
:func:`run_parallel` fans them out over worker processes and returns the
same :class:`~repro.experiments.runner.ExperimentResult` a serial
``NetworkExperiment.run`` would.  Results are bit-identical to the
serial path because each run's randomness depends only on
``(seed, run_index)``.
"""

from __future__ import annotations

import multiprocessing
from typing import Optional

from repro.adversary.jammer import JammerStrategy
from repro.core.config import JRSNDConfig
from repro.experiments.runner import (
    ExperimentResult,
    NetworkExperiment,
    RunResult,
)
from repro.utils.validation import check_positive

__all__ = ["run_parallel"]


def _one_run(args) -> RunResult:
    """Worker: rebuild the experiment and execute one snapshot."""
    (
        config,
        seed,
        strategy_value,
        mndp_rounds,
        link_model,
        correlation_backend,
        index,
    ) = args
    experiment = NetworkExperiment(
        config,
        seed=seed,
        strategy=JammerStrategy(strategy_value),
        mndp_rounds=mndp_rounds,
        link_model=link_model,
        correlation_backend=correlation_backend,
    )
    return experiment.run_once(index)


def run_parallel(
    config: JRSNDConfig,
    seed: int,
    runs: int,
    processes: Optional[int] = None,
    strategy: JammerStrategy = JammerStrategy.REACTIVE,
    mndp_rounds: int = 1,
    link_model: str = "codes",
    correlation_backend: Optional[str] = None,
) -> ExperimentResult:
    """Execute ``runs`` snapshots across ``processes`` workers.

    ``processes`` defaults to the CPU count (capped at ``runs``).
    Results are identical to ``NetworkExperiment(...).run(runs)``;
    ``correlation_backend`` (when set) overrides the configured
    chip-level backend in every worker, exactly as it does serially.
    """
    check_positive("runs", runs)
    if processes is not None:
        check_positive("processes", processes)
    workers = min(
        processes or multiprocessing.cpu_count(), int(runs)
    )
    tasks = [
        (
            config,
            seed,
            strategy.value,
            mndp_rounds,
            link_model,
            correlation_backend,
            index,
        )
        for index in range(int(runs))
    ]
    if workers <= 1:
        results = [_one_run(task) for task in tasks]
    else:
        with multiprocessing.Pool(workers) as pool:
            results = pool.map(_one_run, tasks)
    return ExperimentResult(runs=tuple(results))

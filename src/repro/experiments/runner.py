"""The field-level Monte Carlo experiment.

One run mirrors the authors' C++ simulation:

1. place ``n`` nodes uniformly in the field and build the
   physical-neighbor pair list;
2. run the pre-distribution assignment;
3. compromise ``q`` random nodes, giving the jammer its code set;
4. sample every physical pair's D-NDP outcome under the chosen jamming
   strategy (the model validated against Theorem 1);
5. close the surviving logical graph under ``nu``-hop M-NDP;
6. report ``P_D`` (fraction of pairs direct), ``P_M`` (fraction of
   D-NDP failures recovered), and the combined ``P``.

The per-pair D-NDP sampling is vectorized over all pairs with a boolean
node-by-code membership matrix; ``tests/experiments`` checks statistical
agreement with the reference per-pair :class:`repro.core.dndp.DNDPSampler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.adversary.compromise import CompromiseModel
from repro.adversary.jammer import JammerStrategy, JammingModel
from repro.core.config import JRSNDConfig
from repro.core.dndp import DNDPSampler
from repro.core.mndp import COMPUTE_BACKENDS, LogicalGraph, MNDPSampler
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, MetricsSnapshot, current, installed
from repro.obs import names as _names
from repro.predistribution.authority import PreDistributor
from repro.sim.field import RectangularField
from repro.sim.mobility import uniform_positions
from repro.utils.rng import SeedSequencer
from repro.utils.validation import check_positive

__all__ = ["RunResult", "ExperimentResult", "NetworkExperiment"]


@dataclass(frozen=True)
class RunResult:
    """Counts from one simulated field snapshot.

    Attributes
    ----------
    n_pairs:
        Physical-neighbor pairs in the snapshot.
    dndp_successes:
        Pairs that discovered each other directly.
    mndp_successes:
        D-NDP-failed pairs recovered by M-NDP.
    mean_degree:
        Average physical degree ``g`` of this snapshot.
    mean_dndp_latency:
        Mean sampled handshake latency over direct successes (seconds),
        or ``None`` when latency sampling was off.
    metrics:
        Per-run :class:`~repro.obs.MetricsSnapshot` when the experiment
        was built with ``collect_metrics=True``; excluded from equality
        so instrumented and uninstrumented runs of the same seed still
        compare equal.
    """

    n_pairs: int
    dndp_successes: int
    mndp_successes: int
    mean_degree: float
    mean_dndp_latency: Optional[float] = None
    metrics: Optional[MetricsSnapshot] = field(
        default=None, compare=False, repr=False
    )

    @property
    def p_dndp(self) -> float:
        """Direct discovery probability of this run."""
        return self.dndp_successes / self.n_pairs if self.n_pairs else 0.0

    @property
    def dndp_failures(self) -> int:
        """Pairs whose direct discovery was jammed."""
        return self.n_pairs - self.dndp_successes

    @property
    def p_mndp(self) -> float:
        """Fraction of D-NDP failures recovered by M-NDP.

        Undefined when the run had no D-NDP failures; this property
        returns 0.0 then, which is why the across-run aggregation in
        :class:`ExperimentResult` skips such runs instead of averaging
        the 0.0 in.
        """
        failures = self.dndp_failures
        return self.mndp_successes / failures if failures else 0.0

    @property
    def p_jrsnd(self) -> float:
        """Combined discovery probability."""
        if not self.n_pairs:
            return 0.0
        return (self.dndp_successes + self.mndp_successes) / self.n_pairs


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregate over all runs of one experiment."""

    runs: Tuple[RunResult, ...]

    def discovery_probability(self, kind: str) -> float:
        """Mean probability across runs; ``kind`` is ``dndp`` (direct),
        ``mndp`` (recovery rate of failures), or ``jrsnd`` (combined).

        The ``mndp`` mean is taken only over runs that had at least one
        D-NDP failure: a run with nothing to recover carries no
        information about the recovery rate, and averaging its
        ``p_mndp = 0.0`` in would bias ``P_M`` downward (most visibly
        at light compromise, where many runs have no failures at all).
        Returns 0.0 when no run qualifies.
        """
        values = self._series(kind)
        return float(np.mean(values)) if values else 0.0

    def std(self, kind: str) -> float:
        """Across-run *sample* standard deviation (``ddof=1``).

        The paper's error bars come from the Student-t interval in
        :meth:`confidence_interval`, which is built on the sample
        variance; reporting the population sigma (``ddof=0``) here made
        the two disagree and biased the quoted spread low by a factor
        of ``sqrt((n-1)/n)`` — about 0.5% at the paper's 100 runs but
        over 18% at the 3-5 run counts the smoke sweeps use.  A single
        run (or none) carries no spread information and yields 0.0.
        """
        values = self._series(kind)
        if len(values) < 2:
            return 0.0
        return float(np.std(values, ddof=1))

    def confidence_interval(
        self, kind: str, confidence: float = 0.95
    ) -> Tuple[float, float, float]:
        """``(mean, low, high)`` Student-t interval across runs."""
        from repro.utils.stats import mean_confidence_interval

        return mean_confidence_interval(self._series(kind), confidence)

    def mean_degree(self) -> float:
        """Average physical degree across runs (0.0 with no runs).

        ``np.mean([])`` would emit a ``RuntimeWarning`` and return
        ``nan`` — a value that, once persisted into a results store,
        poisons every later comparison; an empty aggregate reports 0.0
        instead.
        """
        if not self.runs:
            return 0.0
        return float(np.mean([r.mean_degree for r in self.runs]))

    def mean_dndp_latency(self) -> Optional[float]:
        """Sampled direct-discovery latency averaged across runs.

        Per-run means are weighted by each run's D-NDP success count:
        a run whose mean came from 900 successful handshakes should
        dominate one that sampled 3, which the previous unweighted
        average of per-run means ignored.  Runs without latency
        sampling (or without a single direct success) contribute
        nothing; returns ``None`` when no run qualifies instead of
        letting ``np.mean([])`` produce a ``nan``.
        """
        weighted = [
            (r.mean_dndp_latency, r.dndp_successes)
            for r in self.runs
            if r.mean_dndp_latency is not None and r.dndp_successes > 0
        ]
        if not weighted:
            return None
        total_weight = sum(weight for _, weight in weighted)
        return float(
            sum(value * weight for value, weight in weighted)
            / total_weight
        )

    def merged_metrics(self) -> MetricsSnapshot:
        """All per-run snapshots folded into experiment totals.

        Counter totals are deterministic for a given seed and identical
        between the serial and parallel execution paths; runs without a
        snapshot (``collect_metrics=False``) contribute nothing.
        """
        return MetricsSnapshot.merge_all(r.metrics for r in self.runs)

    def _series(self, kind: str) -> List[float]:
        if kind == "dndp":
            return [r.p_dndp for r in self.runs]
        if kind == "mndp":
            # Only runs with failures estimate the recovery rate; a
            # zero-failure run's p_mndp of 0.0 is a placeholder, not a
            # measurement (see discovery_probability).
            return [r.p_mndp for r in self.runs if r.dndp_failures > 0]
        if kind == "jrsnd":
            return [r.p_jrsnd for r in self.runs]
        raise ConfigurationError(
            f"kind must be dndp/mndp/jrsnd, got {kind!r}"
        )


class NetworkExperiment:
    """Runs field snapshots under a configuration.

    Parameters
    ----------
    config:
        Deployment parameters (Table I defaults).
    seed:
        Root seed; every run derives independent sub-streams.
    strategy:
        Jamming strategy; the paper reports reactive (worst case).
    mndp_rounds:
        M-NDP closure rounds (1 = Theorem 3's assumption).
    sample_latency:
        Record per-pair latency samples for successful D-NDP runs.
    link_model:
        ``"codes"`` (default) samples every pair's D-NDP outcome from
        its actual shared codes and the compromise state — the faithful
        model, in which one relay's clean code set helps *all* its
        links, so M-NDP recovers more than the paper plots.
        ``"independent"`` draws each physical link i.i.d. with the
        Theorem 1 probability for the strategy; this matches the
        authors' plotted M-NDP behaviour (notably Fig. 5(a)'s strong
        dependence on nu) and is almost certainly what their C++
        simulator did.  See EXPERIMENTS.md for the comparison.
    correlation_backend:
        When set, overrides ``config.correlation_backend`` for every
        chip-level receiver built from this experiment's configuration
        (event-driven validation runs, ``JRSNDNode.build_synchronizer``).
        The message-level sampling itself is backend-independent.
    collect_metrics:
        Capture a per-run :class:`~repro.obs.MetricsSnapshot` on every
        :class:`RunResult` (and forward it to any registry installed in
        the calling process).  Off by default; the layers then report
        into the no-op registry at negligible cost.
    compute_backend:
        ``"vectorized"`` (default) runs the snapshot pipeline on the
        packed/NumPy implementations (neighbor search, pre-distribution,
        D-NDP sampling, M-NDP closure); ``"reference"`` keeps the
        original per-item loops.  Both backends consume identical rng
        streams and produce identical :class:`RunResult` values.
    phy_backend:
        When set, overrides ``config.phy_backend`` for the D-NDP
        sampling step (``"codes"`` link model only): ``"message"``
        keeps the per-message Bernoulli model; ``"chipless"`` computes
        each pair's success probability in closed form from the
        correlation statistics and decides all pairs in one batched
        sweep (one uniform per pair — by far the fastest path);
        ``"chip"`` spreads, superposes, and re-synchronizes every
        message of every sub-session on a real
        :class:`~repro.dsss.channel.ChipChannel` — the slow reference
        the chipless results are validated against.
    """

    def __init__(
        self,
        config: JRSNDConfig,
        seed: int,
        strategy: JammerStrategy = JammerStrategy.REACTIVE,
        mndp_rounds: int = 1,
        sample_latency: bool = False,
        link_model: str = "codes",
        correlation_backend: Optional[str] = None,
        collect_metrics: bool = False,
        compute_backend: str = "vectorized",
        phy_backend: Optional[str] = None,
    ) -> None:
        check_positive("mndp_rounds", mndp_rounds)
        if strategy not in (JammerStrategy.REACTIVE, JammerStrategy.RANDOM):
            raise ConfigurationError(
                "NetworkExperiment supports the paper's RANDOM and "
                "REACTIVE strategies; use DNDPSampler directly for the "
                f"{strategy} ablation"
            )
        if link_model not in ("codes", "independent"):
            raise ConfigurationError(
                f"link_model must be 'codes' or 'independent', "
                f"got {link_model!r}"
            )
        if compute_backend not in COMPUTE_BACKENDS:
            raise ConfigurationError(
                f"compute_backend must be one of {COMPUTE_BACKENDS}, "
                f"got {compute_backend!r}"
            )
        if correlation_backend is not None:
            # replace() re-validates, so an unknown backend fails here
            # rather than deep inside a worker process.
            config = config.replace(correlation_backend=correlation_backend)
        if phy_backend is not None:
            config = config.replace(phy_backend=phy_backend)
        self._config = config
        self._seeds = SeedSequencer(seed)
        self._strategy = strategy
        self._mndp_rounds = int(mndp_rounds)
        self._sample_latency = bool(sample_latency)
        self._link_model = link_model
        self._collect_metrics = bool(collect_metrics)
        self._compute_backend = compute_backend

    @property
    def config(self) -> JRSNDConfig:
        """The experiment's configuration."""
        return self._config

    @property
    def collect_metrics(self) -> bool:
        """Whether runs carry per-run metric snapshots."""
        return self._collect_metrics

    @property
    def compute_backend(self) -> str:
        """The snapshot-pipeline implementation in use."""
        return self._compute_backend

    def run(self, runs: int = 1) -> ExperimentResult:
        """Execute ``runs`` independent snapshots."""
        check_positive("runs", runs)
        with current().timer(_names.EXPERIMENT_RUN_SECONDS):
            results = [self.run_once(i) for i in range(runs)]
        return ExperimentResult(runs=tuple(results))

    def run_once(self, run_index: int) -> RunResult:
        """Execute one snapshot with its own derived seed.

        With ``collect_metrics`` a fresh registry is installed for the
        duration of the snapshot so every layer's counters land in this
        run's :attr:`RunResult.metrics`; the snapshot is then absorbed
        into whatever registry the caller had installed, keeping
        process-global totals (e.g. the CLI's ``--metrics-out``)
        consistent.
        """
        if not self._collect_metrics:
            return self._execute_run(run_index)
        outer = current()
        registry = MetricsRegistry()
        with installed(registry):
            result = self._execute_run(run_index)
        snapshot = registry.snapshot()
        outer.absorb(snapshot)
        return replace(result, metrics=snapshot)

    def _execute_run(self, run_index: int) -> RunResult:
        seeds = self._seeds.child(f"run-{run_index}")
        config = self._config

        field = RectangularField(
            config.field_width, config.field_height, config.tx_range
        )
        positions = uniform_positions(
            field, config.n_nodes, seeds.rng("placement")
        )
        pairs = field.neighbor_pairs(
            positions, backend=self._compute_backend
        )
        mean_degree = (
            2.0 * len(pairs) / config.n_nodes if config.n_nodes else 0.0
        )

        distributor = PreDistributor(
            config.n_nodes, config.codes_per_node, config.share_count
        )
        assignment = distributor.assign(
            seeds.rng("assignment"), backend=self._compute_backend
        )

        compromise = CompromiseModel(assignment).compromise_random(
            config.n_compromised, seeds.rng("compromise")
        )
        jamming = JammingModel.from_compromise(
            self._strategy, compromise, config.z_jamming_signals, config.mu
        )

        if self._link_model == "independent":
            direct = self._sample_independent(pairs, seeds.rng("jamming"))
        elif config.phy_backend == "chipless":
            direct = self._sample_dndp_chipless(
                pairs, assignment, jamming, seeds.rng("jamming")
            )
        elif config.phy_backend == "chip":
            direct = self._sample_dndp_chip(
                pairs, assignment, jamming, seeds
            )
        else:
            direct = self._sample_dndp(
                pairs, assignment, jamming, seeds.rng("jamming")
            )
        logical = LogicalGraph(config.n_nodes)
        if self._compute_backend == "vectorized":
            if pairs:
                logical.add_links(
                    np.asarray(pairs, dtype=np.int64)[direct]
                )
        else:
            for (a, b), success in zip(pairs, direct):
                if success:
                    logical.add_link(a, b)
        mndp = MNDPSampler(config.nu, backend=self._compute_backend)
        recovered = mndp.discover(
            pairs, logical, rounds=self._mndp_rounds
        )

        mean_latency = None
        dndp_successes = int(np.count_nonzero(direct))
        if self._sample_latency and dndp_successes:
            sampler = DNDPSampler(config, jamming)
            rng = seeds.rng("latency")
            samples = [
                sampler.sample_latency(rng)
                for _ in range(min(dndp_successes, 1000))
            ]
            mean_latency = float(np.mean(samples))

        registry = current()
        if registry.enabled:
            registry.inc(_names.EXPERIMENT_RUNS)
            registry.inc(_names.EXPERIMENT_PAIRS, len(pairs))
            registry.inc(_names.EXPERIMENT_DNDP_SUCCESSES, dndp_successes)
            registry.inc(_names.EXPERIMENT_MNDP_RECOVERED, len(recovered))
            registry.observe(_names.EXPERIMENT_MEAN_DEGREE, mean_degree)

        return RunResult(
            n_pairs=len(pairs),
            dndp_successes=dndp_successes,
            mndp_successes=len(recovered),
            mean_degree=mean_degree,
            mean_dndp_latency=mean_latency,
        )

    # ------------------------------------------------------------------

    def _sample_independent(
        self,
        pairs: Sequence[Tuple[int, int]],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """The i.i.d. link model: Bernoulli(P) per physical pair with
        Theorem 1's closed-form probability for the strategy."""
        from repro.analysis.dndp_theory import (
            dndp_lower_bound,
            dndp_upper_bound,
        )

        if self._strategy is JammerStrategy.REACTIVE:
            p = dndp_lower_bound(self._config, self._config.n_compromised)
        else:
            p = dndp_upper_bound(self._config, self._config.n_compromised)
        return rng.random(len(pairs)) < p

    def _sample_dndp(
        self,
        pairs: Sequence[Tuple[int, int]],
        assignment,
        jamming: JammingModel,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorized per-pair D-NDP outcomes.

        Implements exactly :meth:`repro.core.dndp.DNDPSampler.sample_pair`:
        a pair succeeds iff it shares a non-compromised code, or (random
        jamming only) some shared compromised code's sub-session escapes
        both the HELLO jam (prob ``beta``) and the burst jam
        (prob ``beta'``).

        The ``"vectorized"`` compute backend runs the same chunked sweep
        over bit-packed membership rows (8x less memory traffic, popcount
        for the at-risk counts); chunk boundaries and per-chunk rng draws
        are identical, so both backends consume the same rng stream and
        return the same outcomes.
        """
        if not pairs:
            return np.zeros(0, dtype=bool)
        membership, compromised = self._build_membership(
            assignment, jamming
        )
        pair_array = np.asarray(pairs, dtype=np.int64)
        if self._compute_backend == "vectorized":
            return self._sample_dndp_packed(
                pair_array, membership, compromised, jamming, rng
            )
        success = np.zeros(len(pairs), dtype=bool)
        chunk = 4096
        for start in range(0, len(pairs), chunk):
            stop = min(start + chunk, len(pairs))
            rows_a = membership[pair_array[start:stop, 0]]
            rows_b = membership[pair_array[start:stop, 1]]
            shared = rows_a & rows_b
            safe_shared = shared & ~compromised
            direct = safe_shared.any(axis=1)
            if self._strategy is JammerStrategy.RANDOM and jamming.n_compromised:
                # Compromised shared codes may still survive random
                # jamming: per sub-session failure prob is
                # beta + beta' - beta*beta' (same arithmetic as
                # DNDPSampler's message_jammed/burst_jammed).
                tries = min(
                    jamming.codes_per_message, jamming.n_compromised
                )
                beta = tries / jamming.n_compromised
                beta_prime = min(3.0 * beta, 1.0)
                kill = beta + beta_prime - beta * beta_prime
                at_risk = (shared & compromised).sum(axis=1)
                survive_any = np.zeros(stop - start, dtype=bool)
                positive = at_risk > 0
                if positive.any():
                    fail_all = kill ** at_risk[positive]
                    survive_any[positive] = (
                        rng.random(int(positive.sum())) >= fail_all
                    )
                success[start:stop] = direct | survive_any
            else:
                success[start:stop] = direct
        return success

    def _build_membership(
        self, assignment, jamming: JammingModel
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The node-by-code boolean membership matrix and the
        compromised-code indicator vector every sampling path shares."""
        config = self._config
        membership = np.zeros(
            (config.n_nodes, assignment.pool_size), dtype=bool
        )
        node_codes = np.asarray(assignment.node_codes)
        if node_codes.dtype != object and node_codes.ndim == 2:
            membership[
                np.arange(config.n_nodes)[:, None], node_codes
            ] = True
        else:
            for node, codes in enumerate(assignment.node_codes):
                membership[node, codes] = True
        compromised = np.zeros(assignment.pool_size, dtype=bool)
        if jamming.n_compromised:
            compromised[sorted(
                c for c in range(assignment.pool_size) if jamming.knows(c)
            )] = True
        return membership, compromised

    def _sample_dndp_chipless(
        self,
        pairs: Sequence[Tuple[int, int]],
        assignment,
        jamming: JammingModel,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """The analytic PHY sweep: all pairs decided in one batch.

        A :class:`~repro.dsss.phy.ChiplessModel` reduces the chipless
        per-message model to two sub-session probabilities (safe /
        compromised shared code); each pair's success probability is
        then ``1 - (1-p_s)^x_s (1-p_c)^x_c`` over its shared-code
        counts, and one uniform per pair decides the outcome.  Same
        4096-pair chunks and one ``rng.random(chunk)`` draw per chunk on
        both compute backends, so reference and vectorized consume
        identical rng streams and return identical outcomes.
        """
        from repro.dsss.phy import ChiplessModel

        if not pairs:
            return np.zeros(0, dtype=bool)
        model = ChiplessModel(self._config, jamming)
        membership, compromised = self._build_membership(
            assignment, jamming
        )
        pair_array = np.asarray(pairs, dtype=np.int64)
        n_pairs = pair_array.shape[0]
        success = np.zeros(n_pairs, dtype=bool)
        vectorized = self._compute_backend == "vectorized"
        if vectorized:
            packed = np.packbits(membership, axis=1)
            comp_packed = np.packbits(compromised)
            safe_packed = np.packbits(~compromised)
        registry = current()
        with registry.timer(_names.PHY_SWEEP_SECONDS):
            chunk = 4096
            for start in range(0, n_pairs, chunk):
                stop = min(start + chunk, n_pairs)
                if vectorized:
                    shared = (
                        packed[pair_array[start:stop, 0]]
                        & packed[pair_array[start:stop, 1]]
                    )
                    safe_count = _POPCOUNT[shared & safe_packed].sum(
                        axis=1, dtype=np.int64
                    )
                    comp_count = _POPCOUNT[shared & comp_packed].sum(
                        axis=1, dtype=np.int64
                    )
                else:
                    rows_a = membership[pair_array[start:stop, 0]]
                    rows_b = membership[pair_array[start:stop, 1]]
                    shared = rows_a & rows_b
                    safe_count = (shared & ~compromised).sum(axis=1)
                    comp_count = (shared & compromised).sum(axis=1)
                probability = model.pair_success_probability(
                    safe_count, comp_count
                )
                success[start:stop] = (
                    rng.random(stop - start) < probability
                )
        if registry.enabled:
            registry.inc(_names.PHY_PAIRS_SWEPT, n_pairs)
        return success

    def _sample_dndp_chip(
        self,
        pairs: Sequence[Tuple[int, int]],
        assignment,
        jamming: JammingModel,
        seeds: SeedSequencer,
    ) -> np.ndarray:
        """The chip-level reference: every message of every sub-session
        of every pair is spread, superposed, jammed, and re-synchronized
        on a real :class:`~repro.dsss.channel.ChipChannel`.

        Only practical on small fields (or subsampled pair lists); the
        equivalence suite validates the chipless sweep against it.
        """
        from repro.core.dndp import DNDPSampler
        from repro.dsss.phy import make_pair_phy
        from repro.dsss.spread_code import CodePool

        if not pairs:
            return np.zeros(0, dtype=bool)
        config = self._config
        pool_seed = int(seeds.rng("phy-pool").integers(0, 2**31 - 1))
        pool = CodePool.generate(
            assignment.pool_size, config.code_length, pool_seed
        )
        phy = make_pair_phy("chip", config, jamming, pool=pool)
        sampler = DNDPSampler(config, jamming, phy=phy)
        membership, _ = self._build_membership(assignment, jamming)
        rng = seeds.rng("jamming")
        success = np.zeros(len(pairs), dtype=bool)
        registry = current()
        with registry.timer(_names.PHY_SWEEP_SECONDS):
            for index, (a, b) in enumerate(pairs):
                shared = np.flatnonzero(membership[a] & membership[b])
                outcome = sampler.sample_pair(
                    [int(code) for code in shared], rng
                )
                success[index] = outcome.success
        if registry.enabled:
            registry.inc(_names.PHY_PAIRS_SWEPT, len(pairs))
        return success

    def _sample_dndp_packed(
        self,
        pair_array: np.ndarray,
        membership: np.ndarray,
        compromised: np.ndarray,
        jamming: JammingModel,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Bit-packed form of the `_sample_dndp` chunk sweep.

        ``np.packbits`` pads rows with zero bits, so packed AND/any give
        the same answers as the boolean rows; at-risk counts come from a
        256-entry popcount table over the packed shared bytes.
        """
        n_pairs = pair_array.shape[0]
        packed = np.packbits(membership, axis=1)
        comp_packed = np.packbits(compromised)
        # ~compromised would flip the pad bits to 1; packing the negated
        # *unpacked* vector keeps them 0.
        safe_packed = np.packbits(~compromised)
        random_strategy = (
            self._strategy is JammerStrategy.RANDOM and jamming.n_compromised
        )
        if random_strategy:
            tries = min(jamming.codes_per_message, jamming.n_compromised)
            beta = tries / jamming.n_compromised
            beta_prime = min(3.0 * beta, 1.0)
            kill = beta + beta_prime - beta * beta_prime
        success = np.zeros(n_pairs, dtype=bool)
        chunk = 4096
        for start in range(0, n_pairs, chunk):
            stop = min(start + chunk, n_pairs)
            shared = (
                packed[pair_array[start:stop, 0]]
                & packed[pair_array[start:stop, 1]]
            )
            direct = (shared & safe_packed).any(axis=1)
            if random_strategy:
                at_risk = _POPCOUNT[shared & comp_packed].sum(
                    axis=1, dtype=np.int64
                )
                survive_any = np.zeros(stop - start, dtype=bool)
                positive = at_risk > 0
                if positive.any():
                    fail_all = kill ** at_risk[positive]
                    survive_any[positive] = (
                        rng.random(int(positive.sum())) >= fail_all
                    )
                success[start:stop] = direct | survive_any
            else:
                success[start:stop] = direct
        return success


# Bits set per byte value; used by the packed D-NDP sweep in place of
# np.bitwise_count so older NumPy releases stay supported.
_POPCOUNT = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)

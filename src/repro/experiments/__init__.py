"""The Monte Carlo experiment harness (Section VI-B).

:class:`~repro.experiments.runner.NetworkExperiment` reproduces the
authors' simulation setup — 2000 nodes in a 5000 x 5000 m field, 300 m
range, averages over independently seeded runs — and
:mod:`repro.experiments.figures` defines the exact parameter sweeps
behind every figure of the evaluation section.
"""

from repro.experiments.figures import (
    figure2_sweep,
    figure3a_sweep,
    figure3b_sweep,
    figure4_sweep,
    figure5_sweep,
)
from repro.experiments.charts import ascii_chart
from repro.experiments.parallel import run_parallel
from repro.experiments.reporting import format_series_table
from repro.experiments.validation import (
    ValidationPoint,
    validate_theorem1_grid,
    worst_deviation,
)
from repro.experiments.runner import (
    ExperimentResult,
    NetworkExperiment,
    RunResult,
)

__all__ = [
    "NetworkExperiment",
    "ExperimentResult",
    "RunResult",
    "figure2_sweep",
    "figure3a_sweep",
    "figure3b_sweep",
    "figure4_sweep",
    "figure5_sweep",
    "format_series_table",
    "run_parallel",
    "ascii_chart",
    "ValidationPoint",
    "validate_theorem1_grid",
    "worst_deviation",
]

"""Parameter sweeps reproducing every figure of Section VI-B.

Each ``figureX_sweep`` returns a list of row dicts, one per x-axis
point, carrying the same series the paper plots.  The benchmark files in
``benchmarks/`` call these and print the tables; ``EXPERIMENTS.md``
records paper-vs-measured values.

Probabilities come from the Monte Carlo runner (reactive jamming, the
paper's reported worst case); latencies come from the Theorem 2/4
closed forms, which is what the paper's latency plots are built from
(our event-driven simulation validates those closed forms separately in
``tests/core/test_event_latency.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.adversary.jammer import JammerStrategy
from repro.analysis.combined import combined_probability
from repro.analysis.dndp_theory import dndp_expected_latency
from repro.analysis.mndp_theory import mndp_expected_latency
from repro.core.config import JRSNDConfig, default_config
from repro.experiments.runner import NetworkExperiment
from repro.utils.validation import check_positive

__all__ = [
    "figure2_sweep",
    "figure3a_sweep",
    "figure3b_sweep",
    "figure4_sweep",
    "figure5_sweep",
]

Row = Dict[str, float]


def _probability_row(
    config: JRSNDConfig,
    seed: int,
    runs: int,
    strategy: JammerStrategy,
    mndp_rounds: int = 1,
    link_model: str = "codes",
) -> Dict[str, float]:
    result = NetworkExperiment(
        config, seed=seed, strategy=strategy, mndp_rounds=mndp_rounds,
        link_model=link_model,
    ).run(runs)
    return {
        "p_dndp": result.discovery_probability("dndp"),
        "p_mndp": result.discovery_probability("mndp"),
        "p_jrsnd": result.discovery_probability("jrsnd"),
        "degree": result.mean_degree(),
    }


def figure2_sweep(
    m_values: Sequence[int] = (20, 40, 60, 80, 100, 140, 200),
    runs: int = 10,
    seed: int = 2011,
    base: Optional[JRSNDConfig] = None,
    strategy: JammerStrategy = JammerStrategy.REACTIVE,
) -> List[Row]:
    """Figure 2: impact of ``m`` on probability (a) and latency (b)."""
    check_positive("runs", runs)
    config0 = base if base is not None else default_config()
    rows: List[Row] = []
    for m in m_values:
        config = config0.replace(codes_per_node=int(m))
        row: Row = {"m": float(m)}
        row.update(_probability_row(config, seed, runs, strategy))
        row["t_dndp"] = dndp_expected_latency(config)
        row["t_mndp"] = mndp_expected_latency(config)
        row["t_jrsnd"] = max(row["t_dndp"], row["t_mndp"])
        rows.append(row)
    return rows


def figure3a_sweep(
    l_values: Sequence[int] = (5, 10, 20, 40, 60, 100, 150, 200),
    runs: int = 10,
    seed: int = 2011,
    base: Optional[JRSNDConfig] = None,
    strategy: JammerStrategy = JammerStrategy.REACTIVE,
) -> List[Row]:
    """Figure 3(a): impact of ``l`` on the discovery probability."""
    config0 = base if base is not None else default_config()
    rows: List[Row] = []
    for l in l_values:
        config = config0.replace(share_count=int(l))
        row: Row = {"l": float(l)}
        row.update(_probability_row(config, seed, runs, strategy))
        rows.append(row)
    return rows


def figure3b_sweep(
    n_values: Sequence[int] = (500, 1000, 1500, 2000, 3000, 4000),
    runs: int = 10,
    seed: int = 2011,
    base: Optional[JRSNDConfig] = None,
    strategy: JammerStrategy = JammerStrategy.REACTIVE,
) -> List[Row]:
    """Figure 3(b): impact of ``n`` on the discovery probability."""
    config0 = base if base is not None else default_config()
    rows: List[Row] = []
    for n in n_values:
        config = config0.replace(n_nodes=int(n))
        row: Row = {"n": float(n)}
        row.update(_probability_row(config, seed, runs, strategy))
        rows.append(row)
    return rows


def figure4_sweep(
    share_count: int,
    q_values: Sequence[int] = (0, 20, 40, 60, 80, 100),
    runs: int = 10,
    seed: int = 2011,
    base: Optional[JRSNDConfig] = None,
    strategy: JammerStrategy = JammerStrategy.REACTIVE,
) -> List[Row]:
    """Figure 4: impact of ``q`` at fixed ``l`` (paper: 40 and 20)."""
    config0 = base if base is not None else default_config()
    rows: List[Row] = []
    for q in q_values:
        config = config0.replace(
            share_count=int(share_count), n_compromised=int(q)
        )
        row: Row = {"q": float(q), "l": float(share_count)}
        row.update(_probability_row(config, seed, runs, strategy))
        rows.append(row)
    return rows


def figure5_sweep(
    nu_values: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    q: int = 100,
    runs: int = 10,
    seed: int = 2011,
    base: Optional[JRSNDConfig] = None,
    strategy: JammerStrategy = JammerStrategy.REACTIVE,
    mndp_rounds: int = 1,
    link_model: str = "codes",
) -> List[Row]:
    """Figure 5: impact of ``nu`` at heavy compromise.

    The paper fixes ``P_D = 0.2`` by setting ``q = 100`` at ``l = 40``
    (its Fig. 4(a) point) and sweeps the hop budget; latency (b) comes
    from Theorem 4.  ``link_model="independent"`` reproduces the
    paper's plotted nu-dependence (see the runner's docstring).
    """
    config0 = base if base is not None else default_config()
    rows: List[Row] = []
    for nu in nu_values:
        config = config0.replace(nu=int(nu), n_compromised=int(q))
        row: Row = {"nu": float(nu), "q": float(q)}
        row.update(
            _probability_row(
                config, seed, runs, strategy, mndp_rounds=mndp_rounds,
                link_model=link_model,
            )
        )
        row["p_combined_check"] = combined_probability(
            row["p_dndp"], row["p_mndp"]
        )
        row["t_mndp"] = mndp_expected_latency(config)
        rows.append(row)
    return rows

"""Plain-text rendering of experiment sweeps.

The benchmark harness prints each figure's series as an aligned table so
the run log doubles as the reproduction record in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError

__all__ = ["format_series_table", "format_row", "format_kv_block"]


def format_kv_block(pairs: Sequence[tuple], title: str = "") -> str:
    """Aligned ``key: value`` lines (campaign status, summaries)."""
    if not pairs:
        raise ConfigurationError("no pairs to format")
    width = max(len(str(key)) for key, _ in pairs)
    lines = [title] if title else []
    for key, value in pairs:
        lines.append(f"{str(key).rjust(width)}: {value}")
    return "\n".join(lines)


def format_row(values: Sequence[object], widths: Sequence[int]) -> str:
    """One aligned table row."""
    cells = []
    for value, width in zip(values, widths):
        if isinstance(value, float):
            text = f"{value:.4f}" if abs(value) < 1000 else f"{value:.1f}"
        else:
            text = str(value)
        cells.append(text.rjust(width))
    return "  ".join(cells)


def format_series_table(
    rows: List[Dict[str, float]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render sweep rows as an aligned text table.

    ``columns`` defaults to the keys of the first row, in order.
    """
    if not rows:
        raise ConfigurationError("no rows to format")
    keys = list(columns) if columns else list(rows[0].keys())
    for key in keys:
        if key not in rows[0]:
            raise ConfigurationError(f"unknown column {key!r}")
    widths = [max(len(key), 9) for key in keys]
    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(keys, widths))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(format_row([row[key] for key in keys], widths))
    return "\n".join(lines)

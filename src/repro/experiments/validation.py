"""Systematic analysis-vs-simulation validation.

Sweeps a grid of configurations, runs the Monte Carlo experiment under
both jammer strategies, and reports each point's deviation from its
Theorem 1 closed form.  Used by ``python -m repro validate`` and by the
integration tests as a regression net: if a model change silently
breaks the Theorem 1 agreement anywhere on the grid, this catches it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.adversary.jammer import JammerStrategy
from repro.analysis.dndp_theory import (
    dndp_lower_bound,
    dndp_upper_bound,
)
from repro.core.config import JRSNDConfig, default_config
from repro.experiments.runner import NetworkExperiment
from repro.utils.validation import check_positive

__all__ = ["ValidationPoint", "validate_theorem1_grid", "worst_deviation"]


@dataclass(frozen=True)
class ValidationPoint:
    """One grid point's simulated vs predicted D-NDP probability."""

    q: int
    share_count: int
    strategy: str
    simulated: float
    predicted: float

    @property
    def deviation(self) -> float:
        """Absolute simulation-theory gap."""
        return abs(self.simulated - self.predicted)


def validate_theorem1_grid(
    q_values: Sequence[int] = (0, 20, 60),
    l_values: Sequence[int] = (20, 40),
    runs: int = 3,
    seed: int = 2011,
    base: Optional[JRSNDConfig] = None,
) -> List[ValidationPoint]:
    """Run the grid and return every point's deviation.

    Reactive runs are compared against ``P^-`` and random runs against
    ``P^+`` — the strategy each bound models exactly.
    """
    check_positive("runs", runs)
    config0 = base if base is not None else default_config()
    points: List[ValidationPoint] = []
    for l in l_values:
        for q in q_values:
            config = config0.replace(
                share_count=int(l), n_compromised=int(q)
            )
            for strategy, bound in (
                (JammerStrategy.REACTIVE, dndp_lower_bound),
                (JammerStrategy.RANDOM, dndp_upper_bound),
            ):
                result = NetworkExperiment(
                    config, seed=seed, strategy=strategy
                ).run(runs)
                points.append(
                    ValidationPoint(
                        q=int(q),
                        share_count=int(l),
                        strategy=strategy.value,
                        simulated=result.discovery_probability("dndp"),
                        predicted=bound(config, int(q)),
                    )
                )
    return points


def worst_deviation(points: Sequence[ValidationPoint]) -> Tuple[
    float, Optional[ValidationPoint]
]:
    """The largest simulation-theory gap on the grid and its point."""
    worst: Optional[ValidationPoint] = None
    for point in points:
        if worst is None or point.deviation > worst.deviation:
            worst = point
    return (worst.deviation if worst else 0.0), worst

"""Pre-wired event-driven scenarios.

Building a full event-driven JR-SND network takes a dozen steps (pool,
pre-distribution, authority, per-node keys, medium registration,
jammers); :func:`build_event_network` performs all of them from a
configuration and a seed, and is what the examples and the event-level
tests use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.adversary.compromise import CompromiseModel, CompromiseState
from repro.adversary.jammer import JammerStrategy, JammingModel, MediumJammer
from repro.core.config import JRSNDConfig
from repro.core.jrsnd import JRSNDNode
from repro.crypto.identity import TrustedAuthority
from repro.crypto.signatures import SignatureScheme
from repro.dsss.spread_code import CodePool
from repro.errors import ConfigurationError
from repro.predistribution.authority import CodeAssignment, PreDistributor
from repro.sim.engine import Simulator
from repro.sim.field import Position, RectangularField
from repro.sim.medium import RadioMedium
from repro.sim.mobility import uniform_positions
from repro.sim.trace import TraceRecorder
from repro.utils.rng import SeedSequencer

__all__ = [
    "EventNetwork",
    "build_event_network",
    "admit_node",
    "CONFIG_PRESETS",
    "preset_config",
]


def _paper_config() -> JRSNDConfig:
    """Table I exactly: 2000 nodes on the 5000 x 5000 m field."""
    return JRSNDConfig()


def _small_config() -> JRSNDConfig:
    """A 400-node field that keeps full sweeps tractable on a laptop."""
    return JRSNDConfig(
        n_nodes=400,
        codes_per_node=20,
        share_count=15,
        n_compromised=10,
        field_width=2000.0,
        field_height=2000.0,
        tx_range=300.0,
    )


def _tiny_config() -> JRSNDConfig:
    """A 120-node field for CI smoke campaigns (sub-second shards)."""
    return JRSNDConfig(
        n_nodes=120,
        codes_per_node=12,
        share_count=10,
        n_compromised=6,
        field_width=1200.0,
        field_height=1200.0,
        tx_range=300.0,
    )


def _paper_chipless_config() -> JRSNDConfig:
    """Table I on the analytic PHY: the full 2000-node field with every
    pair's D-NDP outcome decided by the closed-form chipless sweep."""
    return JRSNDConfig(phy_backend="chipless")


def _tiny_chipless_config() -> JRSNDConfig:
    """The CI smoke field on the chipless PHY backend."""
    return JRSNDConfig(
        n_nodes=120,
        codes_per_node=12,
        share_count=10,
        n_compromised=6,
        field_width=1200.0,
        field_height=1200.0,
        tx_range=300.0,
        phy_backend="chipless",
    )


#: Named base configurations a campaign spec's ``base`` field resolves
#: through.  Presets are factories (not instances) so every expansion
#: starts from a fresh, validated ``JRSNDConfig``.
CONFIG_PRESETS = {
    "paper": _paper_config,
    "small": _small_config,
    "tiny": _tiny_config,
    "paper-chipless": _paper_chipless_config,
    "tiny-chipless": _tiny_chipless_config,
}


def preset_config(name: str) -> JRSNDConfig:
    """The base :class:`JRSNDConfig` registered under ``name``."""
    try:
        factory = CONFIG_PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown config preset {name!r}; choose one of "
            f"{sorted(CONFIG_PRESETS)}"
        ) from None
    return factory()


@dataclass
class EventNetwork:
    """A fully wired event-driven JR-SND deployment."""

    config: JRSNDConfig
    simulator: Simulator
    field: RectangularField
    medium: RadioMedium
    nodes: List[JRSNDNode]
    trace: TraceRecorder
    pool: CodePool
    assignment: CodeAssignment
    authority: TrustedAuthority
    compromise: CompromiseState
    jammer: Optional[MediumJammer]

    def node_pairs_in_range(self) -> List[tuple]:
        """Physical-neighbor index pairs of the current placement."""
        positions = [node.position for node in self.nodes]
        return self.field.neighbor_pairs(positions)

    def logical_pairs(self) -> set:
        """All established logical links as ordered index pairs."""
        by_id = {node.node_id: node.index for node in self.nodes}
        links = set()
        for node in self.nodes:
            for peer in node.logical_neighbors:
                a, b = sorted((node.index, by_id[peer]))
                links.add((a, b))
        return links


def build_event_network(
    config: JRSNDConfig,
    seed: int,
    positions: Optional[Sequence[Position]] = None,
    jammer_strategy: Optional[JammerStrategy] = None,
    keep_trace_events: bool = True,
    link_model=None,
    faults=None,
) -> EventNetwork:
    """Wire up a complete event-driven network.

    Parameters
    ----------
    config:
        Deployment parameters; event-level runs want small ``n_nodes``
        and ``codes_per_node`` (event counts grow as ``r * m`` per
        initiator).
    seed:
        Root seed for pool, keys, placement, compromise, and every
        node's private stream.
    positions:
        Explicit placement (defaults to uniform).
    jammer_strategy:
        Attach a medium jammer with the configured ``q`` compromise; or
        ``None`` for a benign run.
    link_model:
        Optional :class:`repro.sim.links.LinkModel` (e.g.
        ``LogNormalShadowingModel``); defaults to the paper's unit
        disk.
    faults:
        Optional :class:`repro.sim.medium.FaultHook` (typically a
        :class:`repro.faults.FaultPlan`) injected into the medium;
        ``None`` keeps the legacy fault-free delivery path.
    """
    seeds = SeedSequencer(seed)
    simulator = Simulator()
    field = RectangularField(
        config.field_width, config.field_height, config.tx_range
    )
    medium = RadioMedium(
        simulator,
        field,
        config.mu,
        link_model=link_model,
        link_rng=seeds.rng("links"),
        faults=faults,
    )
    trace = TraceRecorder(keep_events=keep_trace_events)

    pool = CodePool.generate(
        config.pool_size, config.code_length, seeds.rng("pool-seed").integers(0, 2**31)
    )
    distributor = PreDistributor(
        config.n_nodes, config.codes_per_node, config.share_count
    )
    assignment = distributor.assign(seeds.rng("assignment"))

    authority = TrustedAuthority(b"jr-snd-authority", id_bits=config.id_bits)
    scheme = SignatureScheme(authority.public_parameters())

    if positions is None:
        positions = uniform_positions(
            field, config.n_nodes, seeds.rng("placement")
        )
    elif len(positions) != config.n_nodes:
        raise ValueError(
            f"{len(positions)} positions for {config.n_nodes} nodes"
        )

    nodes: List[JRSNDNode] = []
    for index in range(config.n_nodes):
        node_id = authority.make_id(index + 1)
        key = authority.issue_private_key(node_id)
        codes = pool.subset(assignment.node_codes[index])
        node = JRSNDNode(
            index=index,
            node_id=node_id,
            private_key=key,
            codes=codes,
            config=config,
            simulator=simulator,
            medium=medium,
            scheme=scheme,
            rng=seeds.rng(f"node-{index}"),
            trace=trace,
            position=tuple(positions[index]),
        )
        node.start()
        nodes.append(node)

    compromise = CompromiseModel(assignment).compromise_random(
        config.n_compromised, seeds.rng("compromise")
    )
    jammer: Optional[MediumJammer] = None
    if jammer_strategy is not None:
        model = JammingModel.from_compromise(
            jammer_strategy, compromise, config.z_jamming_signals, config.mu
        )
        jammer = MediumJammer(model, seeds.rng("jammer"))
        medium.add_jammer(jammer)

    return EventNetwork(
        config=config,
        simulator=simulator,
        field=field,
        medium=medium,
        nodes=nodes,
        trace=trace,
        pool=pool,
        assignment=assignment,
        authority=authority,
        compromise=compromise,
        jammer=jammer,
    )


def admit_node(
    network: EventNetwork,
    position: Position,
    seed_label: str = "joiner",
) -> JRSNDNode:
    """Admit one late joiner into a running event network.

    Runs the Section V-A join procedure (virtual-node slots first, then
    an extra distribution pass), issues the newcomer an ID-based key,
    wires it to the medium, and returns the started node — ready for
    ``initiate_dndp``.  The network's ``assignment`` is replaced by the
    extended one.
    """
    config = network.config
    distributor = PreDistributor(
        config.n_nodes, config.codes_per_node, config.share_count
    )
    # hash() is salted per process; the sequencer's label derivation is
    # the stable way to turn the label into a seed.
    seeds = SeedSequencer(4242).child(seed_label)
    extended, new_indices = distributor.admit_new_nodes(
        network.assignment, 1, seeds.rng("join")
    )
    network.assignment = extended
    index = new_indices[0]
    node_id = network.authority.make_id(index + 1)
    key = network.authority.issue_private_key(node_id)
    codes = network.pool.subset(extended.node_codes[index])
    scheme = SignatureScheme(network.authority.public_parameters())
    node = JRSNDNode(
        index=index,
        node_id=node_id,
        private_key=key,
        codes=codes,
        config=config,
        simulator=network.simulator,
        medium=network.medium,
        scheme=scheme,
        rng=seeds.rng(f"node-{index}"),
        trace=network.trace,
        position=tuple(position),
    )
    node.start()
    network.nodes.append(node)
    return node

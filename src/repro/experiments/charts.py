"""Terminal charts for the figure sweeps.

No plotting stack is assumed offline; :func:`ascii_chart` renders the
multi-series sweep rows the benches produce as a fixed-size character
grid with axes, per-series markers and a legend — enough to *see* the
crossovers and knees the paper's figures show, straight from
``python -m repro figure2 --chart``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.utils.validation import check_positive

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def _axis_ticks(low: float, high: float, count: int) -> List[float]:
    if count < 2:
        raise ConfigurationError("need at least two ticks")
    span = high - low
    return [low + span * i / (count - 1) for i in range(count)]


def ascii_chart(
    rows: Sequence[Dict[str, float]],
    x: str,
    series: Sequence[str],
    width: int = 64,
    height: int = 18,
    title: str = "",
) -> str:
    """Render sweep rows as a character chart.

    Parameters
    ----------
    rows:
        Sweep rows (one dict per x-axis point).
    x:
        Key of the x-axis column.
    series:
        Keys of the y-series to draw (each gets its own marker).
    width, height:
        Plot area size in characters (excluding axes).
    """
    if not rows:
        raise ConfigurationError("no rows to chart")
    if not series:
        raise ConfigurationError("no series selected")
    if len(series) > len(_MARKERS):
        raise ConfigurationError(
            f"at most {len(_MARKERS)} series supported"
        )
    check_positive("width", width)
    check_positive("height", height)
    for key in (x, *series):
        if key not in rows[0]:
            raise ConfigurationError(f"unknown column {key!r}")

    xs = [float(row[x]) for row in rows]
    ys = [float(row[key]) for row in rows for key in series]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0
    # A little headroom so extremes don't sit on the frame.
    pad = 0.05 * (y_high - y_low)
    y_low -= pad
    y_high += pad

    grid = [[" "] * width for _ in range(height)]

    def place(x_value: float, y_value: float, marker: str) -> None:
        column = round(
            (x_value - x_low) / (x_high - x_low) * (width - 1)
        )
        row_ = round(
            (y_value - y_low) / (y_high - y_low) * (height - 1)
        )
        grid[height - 1 - row_][column] = marker

    for index, key in enumerate(series):
        marker = _MARKERS[index]
        for row in rows:
            place(float(row[x]), float(row[key]), marker)

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = 9
    y_ticks = _axis_ticks(y_low, y_high, height)
    for i, grid_row in enumerate(grid):
        y_value = y_ticks[height - 1 - i]
        label = f"{y_value:>{label_width}.3f}" if i % 3 == 0 else (
            " " * label_width
        )
        lines.append(f"{label} |" + "".join(grid_row))
    lines.append(" " * label_width + "+" + "-" * width)
    x_ticks = _axis_ticks(x_low, x_high, 5)
    tick_labels = []
    for tick in x_ticks:
        column = round((tick - x_low) / (x_high - x_low) * (width - 1))
        tick_labels.append((column, f"{tick:g}"))
    # Extra margin so the last tick label is never clipped.
    axis_line = [" "] * (width + label_width + 10)
    for column, text in tick_labels:
        start = label_width + 1 + column
        for j, ch in enumerate(text):
            if start + j < len(axis_line):
                axis_line[start + j] = ch
    lines.append("".join(axis_line).rstrip())
    legend = "   ".join(
        f"{_MARKERS[i]} {key}" for i, key in enumerate(series)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)

"""The authority's code-assignment procedure (Section V-A).

``m`` rounds of random equal partition: in round ``i`` the authority
splits the ``n`` nodes into ``w`` subsets of cardinality ``l`` and
assigns code ``C_{w(i-1)+j}`` to subset ``j``.  When ``l`` does not
divide ``n``, virtual nodes pad the last subsets; their assignments are
banked and handed to late joiners.  If more than the banked number of new
nodes arrive, a whole extra distribution round re-runs over the existing
pool, raising each code's share count by one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_positive

__all__ = ["CodeAssignment", "PreDistributor"]


@dataclass
class CodeAssignment:
    """The result of pre-distribution.

    Attributes
    ----------
    node_codes:
        ``node_codes[i]`` is the ordered list of pool indices assigned to
        node ``i`` (length ``m``).
    code_holders:
        ``code_holders[c]`` is the set of node indices holding pool code
        ``c``.
    pool_size:
        Total number of pool codes ``s = w * m`` used by the assignment.
    """

    node_codes: List[List[int]]
    code_holders: Dict[int, Set[int]] = field(repr=False)
    pool_size: int = 0

    @property
    def n_nodes(self) -> int:
        """Number of (real) nodes covered by the assignment."""
        return len(self.node_codes)

    @property
    def codes_per_node(self) -> int:
        """The paper's ``m``."""
        return len(self.node_codes[0]) if self.node_codes else 0

    def shared_codes(self, a: int, b: int) -> List[int]:
        """Pool indices shared by nodes ``a`` and ``b`` (the paper's
        ``C_A ∩ C_B``)."""
        return sorted(set(self.node_codes[a]) & set(self.node_codes[b]))

    def holders_of(self, code_index: int) -> Set[int]:
        """Nodes holding pool code ``code_index``."""
        return set(self.code_holders.get(code_index, set()))

    def max_share_count(self) -> int:
        """Largest number of nodes sharing any one code (``<= l`` plus
        any late-join increments)."""
        return max(
            (len(holders) for holders in self.code_holders.values()),
            default=0,
        )

    def compromised_codes(self, compromised_nodes: Sequence[int]) -> Set[int]:
        """Union of pool indices held by the given nodes."""
        codes: Set[int] = set()
        for node in compromised_nodes:
            if not 0 <= node < self.n_nodes:
                raise ConfigurationError(
                    f"node index {node} out of range [0, {self.n_nodes})"
                )
            codes.update(self.node_codes[node])
        return codes


class PreDistributor:
    """Runs the ``m``-round partition assignment.

    Parameters
    ----------
    n_nodes:
        Number of nodes ``n``.
    codes_per_node:
        Codes per node ``m``.
    share_count:
        Nodes per code ``l``.
    """

    def __init__(
        self, n_nodes: int, codes_per_node: int, share_count: int
    ) -> None:
        check_positive("n_nodes", n_nodes)
        check_positive("codes_per_node", codes_per_node)
        check_positive("share_count", share_count)
        if share_count < 2:
            raise ConfigurationError(
                f"share_count (l) must be >= 2 for any code to be shared, "
                f"got {share_count}"
            )
        if share_count > n_nodes:
            raise ConfigurationError(
                f"share_count l={share_count} cannot exceed n={n_nodes}"
            )
        self._n = int(n_nodes)
        self._m = int(codes_per_node)
        self._l = int(share_count)
        # Virtual nodes pad n up to a multiple of l (Section V-A).
        self._w = math.ceil(self._n / self._l)
        self._n_virtual = self._w * self._l - self._n

    @property
    def n_nodes(self) -> int:
        """Real node count ``n``."""
        return self._n

    @property
    def codes_per_node(self) -> int:
        """Codes per node ``m``."""
        return self._m

    @property
    def share_count(self) -> int:
        """Target share count ``l``."""
        return self._l

    @property
    def subsets_per_round(self) -> int:
        """The paper's ``w = ceil(n / l)``."""
        return self._w

    @property
    def n_virtual(self) -> int:
        """Virtual nodes introduced to pad the partition (``l'``)."""
        return self._n_virtual

    @property
    def pool_size(self) -> int:
        """Pool codes consumed: ``s = w * m``."""
        return self._w * self._m

    def assign(
        self, rng: np.random.Generator, backend: str = "vectorized"
    ) -> CodeAssignment:
        """Run the ``m`` rounds and return the assignment.

        Virtual node slots participate in the partition but their codes
        are simply not recorded against any real node, so some codes end
        up shared by fewer than ``l`` real nodes — the behaviour the
        paper describes as "not affect the performance very much".

        Both backends consume exactly one ``rng.permutation`` per round
        and build identical assignments; ``"reference"`` keeps the
        original per-subset loops, ``"vectorized"`` (default) derives
        each node's subset from the inverse permutation.
        """
        from repro.core.mndp import COMPUTE_BACKENDS

        if backend not in COMPUTE_BACKENDS:
            raise ConfigurationError(
                f"assign backend must be one of {COMPUTE_BACKENDS}, "
                f"got {backend!r}"
            )
        if backend == "reference":
            return self._assign_reference(rng)
        return self._assign_vectorized(rng)

    def _assign_reference(self, rng: np.random.Generator) -> CodeAssignment:
        total = self._n + self._n_virtual
        node_codes: List[List[int]] = [[] for _ in range(self._n)]
        code_holders: Dict[int, Set[int]] = {}
        for round_index in range(self._m):
            order = rng.permutation(total)
            for subset_index in range(self._w):
                code_index = self._w * round_index + subset_index
                members = order[
                    subset_index * self._l : (subset_index + 1) * self._l
                ]
                holders = {int(node) for node in members if node < self._n}
                code_holders[code_index] = holders
                for node in holders:
                    node_codes[node].append(code_index)
        return CodeAssignment(
            node_codes=node_codes,
            code_holders=code_holders,
            pool_size=self.pool_size,
        )

    def _assign_vectorized(self, rng: np.random.Generator) -> CodeAssignment:
        """Inverse-permutation form of :meth:`_assign_reference`.

        A node lands in subset ``position // l``, so one scatter per
        round yields every node's code; holder sets come from grouping
        the real slots of the permutation by subset.
        """
        total = self._n + self._n_virtual
        codes_matrix = np.empty((self._n, self._m), dtype=np.int64)
        position_of = np.empty(total, dtype=np.int64)
        slots = np.arange(total, dtype=np.int64)
        code_holders: Dict[int, Set[int]] = {}
        for round_index in range(self._m):
            order = rng.permutation(total)
            position_of[order] = slots
            codes_matrix[:, round_index] = (
                self._w * round_index + position_of[: self._n] // self._l
            )
            base = self._w * round_index
            if self._n_virtual == 0:
                # Every slot is a real node: subsets are plain l-sized
                # slices of the permutation.
                nodes = order.tolist()
                for subset_index in range(self._w):
                    begin = subset_index * self._l
                    code_holders[base + subset_index] = set(
                        nodes[begin : begin + self._l]
                    )
            else:
                real_mask = order < self._n
                nodes = order[real_mask].tolist()
                counts = np.bincount(
                    np.flatnonzero(real_mask) // self._l,
                    minlength=self._w,
                )
                stops = np.cumsum(counts).tolist()
                begin = 0
                for subset_index in range(self._w):
                    stop = stops[subset_index]
                    code_holders[base + subset_index] = set(
                        nodes[begin:stop]
                    )
                    begin = stop
        return CodeAssignment(
            node_codes=codes_matrix.tolist(),
            code_holders=code_holders,
            pool_size=self.pool_size,
        )

    def admit_new_nodes(
        self,
        assignment: CodeAssignment,
        n_new: int,
        rng: np.random.Generator,
    ) -> Tuple[CodeAssignment, List[int]]:
        """Admit ``n_new`` late joiners (Section V-A's join procedure).

        Virtual-node slots are consumed first: each new node inherits a
        random unused code from each round's short subsets.  Once the
        virtual budget is exhausted, a full extra pass re-partitions
        ``w`` new nodes over the existing pool, raising share counts by
        one.  Returns the extended assignment and the indices of the new
        nodes.
        """
        check_positive("n_new", n_new)
        node_codes = [list(codes) for codes in assignment.node_codes]
        code_holders = {
            code: set(holders)
            for code, holders in assignment.code_holders.items()
        }
        new_indices: List[int] = []
        remaining = int(n_new)
        virtual_budget = self._n_virtual - (len(node_codes) - self._n)
        while remaining > 0 and virtual_budget > 0:
            new_node = len(node_codes)
            codes = self._codes_for_virtual_slot(code_holders, rng)
            node_codes.append(codes)
            for code in codes:
                code_holders.setdefault(code, set()).add(new_node)
            new_indices.append(new_node)
            remaining -= 1
            virtual_budget -= 1
        while remaining > 0:
            batch = min(remaining, self._w)
            start = len(node_codes)
            # One extra distribution round-set over the existing s codes.
            for round_index in range(self._m):
                order = rng.permutation(self._w)
                for offset in range(batch):
                    node = start + offset
                    code_index = self._w * round_index + int(order[offset])
                    if node >= len(node_codes):
                        node_codes.extend(
                            [] for _ in range(node - len(node_codes) + 1)
                        )
                    node_codes[node].append(code_index)
                    code_holders.setdefault(code_index, set()).add(node)
            new_indices.extend(range(start, start + batch))
            remaining -= batch
        extended = CodeAssignment(
            node_codes=node_codes,
            code_holders=code_holders,
            pool_size=assignment.pool_size,
        )
        return extended, new_indices

    def _codes_for_virtual_slot(
        self, code_holders: Dict[int, Set[int]], rng: np.random.Generator
    ) -> List[int]:
        """Pick one under-subscribed code per round for a late joiner."""
        codes: List[int] = []
        for round_index in range(self._m):
            round_codes = range(
                self._w * round_index, self._w * (round_index + 1)
            )
            short = [
                c for c in round_codes if len(code_holders.get(c, ())) < self._l
            ]
            pool = short if short else list(round_codes)
            codes.append(int(pool[int(rng.integers(0, len(pool)))]))
        return codes

"""Local spread-code revocation (Section V-D).

Each node keeps a counter per spread code it holds; every invalid
neighbor-discovery request received under that code (bad signature, bad
MAC) increments the counter, and once it exceeds the threshold ``gamma``
the node locally revokes the code.  With every code held by at most
``l`` nodes, a compromised code can force at most ``(l - 1) * gamma``
wasted verifications across the network — the bound the DoS-resilience
benchmark checks.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.errors import ConfigurationError, RevokedCodeError
from repro.utils.validation import check_positive

__all__ = ["RevocationList"]


class RevocationList:
    """Per-node counters and revocation state for its spread codes.

    Parameters
    ----------
    codes:
        The pool indices this node holds.
    gamma:
        Invalid-request threshold; exceeding it revokes the code.
    """

    def __init__(self, codes: Iterable[int], gamma: int) -> None:
        check_positive("gamma", gamma)
        self._gamma = int(gamma)
        self._counters: Dict[int, int] = {int(c): 0 for c in codes}
        if not self._counters:
            raise ConfigurationError("a node must hold at least one code")
        self._revoked: Set[int] = set()

    @property
    def gamma(self) -> int:
        """The revocation threshold."""
        return self._gamma

    @property
    def revoked(self) -> Set[int]:
        """Pool indices this node has locally revoked."""
        return set(self._revoked)

    def active_codes(self) -> Set[int]:
        """Codes still accepted for spreading/de-spreading."""
        return set(self._counters) - self._revoked

    def is_active(self, code_index: int) -> bool:
        """Whether the node still uses ``code_index``."""
        return code_index in self._counters and code_index not in self._revoked

    def counter(self, code_index: int) -> int:
        """Current invalid-request count for a held code."""
        self._require_held(code_index)
        return self._counters[code_index]

    def record_invalid_request(self, code_index: int) -> bool:
        """Count one invalid request under ``code_index``.

        Returns True if this request tipped the code into revocation.
        Requests under already-revoked codes raise
        :class:`RevokedCodeError` — the node no longer de-spreads them,
        so the caller (the simulation's medium) should not have delivered
        the message at all.
        """
        self._require_held(code_index)
        if code_index in self._revoked:
            raise RevokedCodeError(
                f"code {code_index} is already revoked at this node"
            )
        self._counters[code_index] += 1
        if self._counters[code_index] > self._gamma:
            self._revoked.add(code_index)
            return True
        return False

    def _require_held(self, code_index: int) -> None:
        if code_index not in self._counters:
            raise ConfigurationError(
                f"code {code_index} is not held by this node"
            )

"""Local spread-code revocation (Section V-D).

Each node keeps a counter per spread code it holds; every invalid
neighbor-discovery request received under that code (bad signature, bad
MAC) increments the counter, and once it *reaches* the threshold
``gamma`` the node locally revokes the code.  Each of the up to
``l - 1`` other holders of a compromised code therefore performs at
most ``gamma`` wasted verifications, giving the paper's exact
network-wide bound of ``(l - 1) * gamma`` per compromised code — the
bound the DoS-resilience tests and benchmark pin.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.errors import ConfigurationError, RevokedCodeError
from repro.obs import current as _metrics
from repro.obs import names as _names
from repro.utils.validation import check_positive

__all__ = ["RevocationList"]


class RevocationList:
    """Per-node counters and revocation state for its spread codes.

    Parameters
    ----------
    codes:
        The pool indices this node holds.
    gamma:
        Invalid-request threshold; reaching it revokes the code.
    """

    def __init__(self, codes: Iterable[int], gamma: int) -> None:
        check_positive("gamma", gamma)
        self._gamma = int(gamma)
        self._counters: Dict[int, int] = {int(c): 0 for c in codes}
        if not self._counters:
            raise ConfigurationError("a node must hold at least one code")
        self._revoked: Set[int] = set()

    @property
    def gamma(self) -> int:
        """The revocation threshold."""
        return self._gamma

    @property
    def revoked(self) -> Set[int]:
        """Pool indices this node has locally revoked."""
        return set(self._revoked)

    def active_codes(self) -> Set[int]:
        """Codes still accepted for spreading/de-spreading."""
        return set(self._counters) - self._revoked

    def is_active(self, code_index: int) -> bool:
        """Whether the node still uses ``code_index``."""
        return code_index in self._counters and code_index not in self._revoked

    def counter(self, code_index: int) -> int:
        """Current invalid-request count for a held code."""
        self._require_held(code_index)
        return self._counters[code_index]

    def record_invalid_request(self, code_index: int) -> bool:
        """Count one invalid request under ``code_index``.

        Returns True if this request tipped the code into revocation,
        which happens on the ``gamma``-th invalid request — so one node
        wastes at most ``gamma`` verifications per code, matching the
        paper's ``(l - 1) * gamma`` network-wide bound.  Requests under
        already-revoked codes raise :class:`RevokedCodeError` — the node
        no longer de-spreads them, so the caller (the simulation's
        medium) should not have delivered the message at all.
        """
        self._require_held(code_index)
        if code_index in self._revoked:
            raise RevokedCodeError(
                f"code {code_index} is already revoked at this node"
            )
        self._counters[code_index] += 1
        registry = _metrics()
        if registry.enabled:
            registry.inc(_names.REVOCATION_INVALID_REQUESTS)
        if self._counters[code_index] >= self._gamma:
            self._revoked.add(code_index)
            if registry.enabled:
                registry.inc(_names.REVOCATION_CODES_REVOKED)
                registry.event(
                    _names.REVOCATION_REVOKED,
                    code=int(code_index),
                    counter=self._counters[code_index],
                )
            return True
        return False

    def _require_held(self, code_index: int) -> None:
        if code_index not in self._counters:
            raise ConfigurationError(
                f"code {code_index} is not held by this node"
            )

"""Closed-form analysis of the pre-distribution scheme (Section VI-A1).

Two results from the paper:

- Eq. (1): the number of codes shared by two nodes is binomial,
  ``Pr[x] = C(m, x) * ((l-1)/(n-1))^x * ((n-l)/(n-1))^(m-x)``,
  because each of the ``m`` independent rounds pairs the two nodes into
  the same subset with probability ``(l-1)/(n-1)``.

- Eq. (2): after ``q`` node compromises, any single pool code is
  compromised with probability ``alpha = 1 - C(n-l, q) / C(n, q)``
  (the complement of "none of the code's l holders is among the q").
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "shared_codes_probability",
    "shared_code_pmf",
    "expected_shared_codes",
    "probability_at_least_one_shared",
    "code_compromise_probability",
    "expected_compromised_codes",
]


def _check_population(n: int, l: int) -> None:
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    if not 2 <= l <= n:
        raise ConfigurationError(f"l must be in [2, n={n}], got {l}")


def shared_codes_probability(x: int, n: int, m: int, l: int) -> float:
    """Eq. (1): probability two nodes share exactly ``x`` codes.

    >>> round(sum(shared_codes_probability(x, 100, 10, 20) for x in range(11)), 9)
    1.0
    """
    _check_population(n, l)
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    if not 0 <= x <= m:
        return 0.0
    p_round = (l - 1) / (n - 1)
    return (
        math.comb(m, x) * p_round**x * (1.0 - p_round) ** (m - x)
    )


def shared_code_pmf(n: int, m: int, l: int) -> np.ndarray:
    """The full pmf of Eq. (1), indices 0..m."""
    return np.array(
        [shared_codes_probability(x, n, m, l) for x in range(m + 1)]
    )


def expected_shared_codes(n: int, m: int, l: int) -> float:
    """Mean shared-code count: ``m (l-1)/(n-1)``."""
    _check_population(n, l)
    return m * (l - 1) / (n - 1)


def probability_at_least_one_shared(n: int, m: int, l: int) -> float:
    """Probability two nodes can even attempt D-NDP: ``1 - Pr[0]``."""
    return 1.0 - shared_codes_probability(0, n, m, l)


def code_compromise_probability(n: int, l: int, q: int) -> float:
    """Eq. (2): probability a given pool code is compromised.

    ``q`` is the number of compromised nodes; the code is safe only if
    all ``q`` fall outside its ``l`` holders.
    """
    _check_population(n, l)
    if q < 0:
        raise ConfigurationError(f"q must be >= 0, got {q}")
    if q == 0:
        return 0.0
    if q > n - l:
        return 1.0
    # C(n-l, q) / C(n, q) computed stably in log space.
    log_ratio = (
        math.lgamma(n - l + 1)
        - math.lgamma(n - l - q + 1)
        - math.lgamma(n + 1)
        + math.lgamma(n - q + 1)
    )
    return 1.0 - math.exp(log_ratio)


def expected_compromised_codes(s: int, n: int, l: int, q: int) -> float:
    """Expected compromised pool codes ``c = s * alpha``."""
    if s < 1:
        raise ConfigurationError(f"s must be >= 1, got {s}")
    return s * code_compromise_probability(n, l, q)

"""Random spread-code pre-distribution (Section V-A of the paper).

The authority generates a pool of ``s`` secret spread codes and runs ``m``
assignment rounds; in each round the ``n`` nodes are randomly partitioned
into ``w = n / l`` subsets of size ``l`` and each subset receives one
fresh code.  After ``m`` rounds every node holds ``m`` codes and every
code is held by exactly ``l`` nodes, which gives the authority *fine
control of the damage from compromised spread codes* — the paper's core
departure from Eschenauer-Gligor-style random drawing.
"""

from repro.predistribution.analysis import (
    code_compromise_probability,
    expected_compromised_codes,
    expected_shared_codes,
    probability_at_least_one_shared,
    shared_code_pmf,
    shared_codes_probability,
)
from repro.predistribution.authority import CodeAssignment, PreDistributor
from repro.predistribution.revocation import RevocationList

__all__ = [
    "PreDistributor",
    "CodeAssignment",
    "RevocationList",
    "shared_codes_probability",
    "shared_code_pmf",
    "code_compromise_probability",
    "expected_compromised_codes",
    "expected_shared_codes",
    "probability_at_least_one_shared",
]

"""A process-local LRU cache for PHY artifacts.

The per-pair hot path of the protocol rebuilds several artifacts that
are invariant across rounds and trials: the stacked code matrices inside
:class:`~repro.dsss.engine.CorrelationEngine`, the spread chip waveform
of a repeated HELLO, and :class:`~repro.ecc.reed_solomon.ReedSolomonCodec`
instances for each parity width.  :class:`ArtifactCache` memoizes them
behind one explicit, bounded interface:

- entries are keyed by ``(kind, key)`` where ``kind`` is a short
  namespace string (``"rs_codec"``, ``"correlation_engine"``,
  ``"waveform"``) and ``key`` is any hashable value derived from the
  artifact's *content identity* (e.g. chip bytes, not object identity);
- the cache is LRU-bounded, so pathological workloads (a different
  message per call) degrade to miss-and-evict instead of leaking;
- every lookup reports a ``cache.<kind>.hits`` / ``cache.<kind>.misses``
  counter to the installed :mod:`repro.obs` registry, so cache
  effectiveness shows up in ``--metrics-out`` snapshots;
- :func:`shared_cache` exposes one cache per process.  Worker processes
  spawned by :func:`~repro.experiments.parallel.run_parallel` each start
  with an empty module global and rebuild their own cache, so no state
  (and no cross-process invalidation problem) is ever shared.

Cached values are treated as immutable by every caller: NumPy arrays
placed in the cache are marked read-only, and callers that need a
mutable copy must copy explicitly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs import current as _metrics
from repro.obs import names as _names

__all__ = ["ArtifactCache", "shared_cache", "clear_shared_cache"]

_MISSING = object()


class ArtifactCache:
    """A bounded LRU mapping of ``(kind, key)`` to built artifacts.

    Parameters
    ----------
    max_entries:
        Capacity; the least recently used entry is evicted beyond it.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise ConfigurationError(
                f"max_entries must be positive, got {max_entries}"
            )
        self._max_entries = int(max_entries)
        self._entries: "OrderedDict[Tuple[str, Hashable], Any]" = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0

    @property
    def max_entries(self) -> int:
        """The cache capacity."""
        return self._max_entries

    @property
    def hits(self) -> int:
        """Lifetime hit count (survives :meth:`clear`)."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lifetime miss count (survives :meth:`clear`)."""
        return self._misses

    def get_or_build(
        self, kind: str, key: Hashable, builder: Callable[[], Any]
    ) -> Any:
        """The cached artifact for ``(kind, key)``, building on miss.

        ``builder`` is invoked only on a miss; its result is stored and
        returned.  Hits refresh the entry's LRU position.  Both outcomes
        increment the corresponding ``cache.<kind>`` counter on the
        installed metrics registry.
        """
        full_key = (kind, key)
        value = self._entries.get(full_key, _MISSING)
        registry = _metrics()
        if value is not _MISSING:
            self._entries.move_to_end(full_key)
            self._hits += 1
            if registry.enabled:
                registry.inc(_names.cache_hits(kind))
            return value
        self._misses += 1
        if registry.enabled:
            registry.inc(_names.cache_misses(kind))
        value = builder()
        self._entries[full_key] = value
        if len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        """Drop every entry (hit/miss totals are preserved)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, full_key: Tuple[str, Hashable]) -> bool:
        return full_key in self._entries

    def __repr__(self) -> str:
        return (
            f"ArtifactCache(entries={len(self._entries)}, "
            f"max_entries={self._max_entries}, hits={self._hits}, "
            f"misses={self._misses})"
        )


_shared: Optional[ArtifactCache] = None


def shared_cache() -> ArtifactCache:
    """The process-wide cache, created lazily on first use.

    Each OS process has its own instance (the module global is never
    inherited as shared memory), which is what makes the cache safe
    under ``run_parallel``: workers simply warm their own copies.
    """
    global _shared
    if _shared is None:
        _shared = ArtifactCache()
    return _shared


def clear_shared_cache() -> None:
    """Empty the process-wide cache (tests, memory pressure)."""
    if _shared is not None:
        _shared.clear()

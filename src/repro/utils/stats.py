"""Small statistics helpers for experiment reporting.

The paper averages every measurement over 100 independently seeded
runs; :func:`mean_confidence_interval` quantifies how tight such an
average is (Student-t), and :func:`wilson_interval` bounds a success
probability estimated from Bernoulli counts — used by the experiment
result objects and the reporting tables.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from scipy import stats as scipy_stats

from repro.errors import ConfigurationError
from repro.utils.validation import check_fraction, check_non_negative

__all__ = ["mean_confidence_interval", "wilson_interval"]


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """``(mean, low, high)`` Student-t confidence interval.

    A single sample yields a degenerate interval at the point estimate.
    """
    check_fraction("confidence", confidence)
    values = [float(v) for v in samples]
    if not values:
        raise ConfigurationError("no samples")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, mean, mean
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half_width = (
        scipy_stats.t.ppf((1 + confidence) / 2, n - 1)
        * math.sqrt(variance / n)
    )
    return mean, mean - half_width, mean + half_width


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float, float]:
    """``(estimate, low, high)`` Wilson score interval for a proportion.

    Better behaved than the normal approximation near 0 and 1, which is
    where discovery probabilities live.
    """
    check_non_negative("successes", successes)
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if successes > trials:
        raise ConfigurationError(
            f"successes ({successes}) exceed trials ({trials})"
        )
    check_fraction("confidence", confidence)
    z = float(scipy_stats.norm.ppf((1 + confidence) / 2))
    p = successes / trials
    denom = 1 + z**2 / trials
    center = (p + z**2 / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2))
        / denom
    )
    low = 0.0 if successes == 0 else max(0.0, center - half)
    high = 1.0 if successes == trials else min(1.0, center + half)
    return p, low, high

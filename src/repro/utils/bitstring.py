"""Bit-sequence utilities.

The DSSS layer (Section III of the paper) works on *NRZ* (non-return-to-zero)
sequences: bit ``1`` maps to ``+1`` and bit ``0`` maps to ``-1``.  Everything
above the physical layer works on ordinary 0/1 bits or bytes.  This module
provides the conversions between those representations.

Bits are represented as ``numpy`` arrays of dtype ``int8`` with values in
{0, 1}; NRZ sequences are ``int8`` arrays with values in {-1, +1}.  Using a
fixed dtype keeps chip-level simulations of 512-chip codes over multi-bit
messages cheap.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "bits_from_bytes",
    "bits_to_bytes",
    "bits_from_int",
    "bits_to_int",
    "nrz_from_bits",
    "nrz_to_bits",
    "random_bits",
    "xor_bits",
    "hamming_distance",
]


def bits_from_bytes(data: bytes) -> np.ndarray:
    """Expand ``data`` into a bit array, most significant bit first.

    >>> bits_from_bytes(b"\\x80").tolist()
    [1, 0, 0, 0, 0, 0, 0, 0]
    """
    if not isinstance(data, (bytes, bytearray)):
        raise ConfigurationError(f"expected bytes, got {type(data).__name__}")
    raw = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(raw).astype(np.int8)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a 0/1 bit array (MSB first) back into bytes.

    The bit length must be a multiple of 8; use :func:`bits_from_int` for
    arbitrary-width fields.
    """
    bits = np.asarray(bits)
    if bits.size % 8 != 0:
        raise ConfigurationError(
            f"bit length {bits.size} is not a multiple of 8"
        )
    if bits.size and not np.isin(bits, (0, 1)).all():
        raise ConfigurationError("bit array must contain only 0 and 1")
    return np.packbits(bits.astype(np.uint8)).tobytes()


def bits_from_int(value: int, width: int) -> np.ndarray:
    """Encode a non-negative integer as a fixed-width bit array (MSB first)."""
    if width <= 0:
        raise ConfigurationError(f"width must be positive, got {width}")
    if value < 0:
        raise ConfigurationError(f"value must be non-negative, got {value}")
    if value >= (1 << width):
        raise ConfigurationError(f"value {value} does not fit in {width} bits")
    return np.array(
        [(value >> (width - 1 - i)) & 1 for i in range(width)], dtype=np.int8
    )


def bits_to_int(bits: np.ndarray) -> int:
    """Decode a bit array (MSB first) into an integer."""
    result = 0
    for bit in np.asarray(bits).tolist():
        if bit not in (0, 1):
            raise ConfigurationError(f"invalid bit value {bit}")
        result = (result << 1) | bit
    return result


def nrz_from_bits(bits: np.ndarray) -> np.ndarray:
    """Map bits {0, 1} to NRZ symbols {-1, +1} (Section III of the paper)."""
    bits = np.asarray(bits, dtype=np.int8)
    if bits.size and not np.isin(bits, (0, 1)).all():
        raise ConfigurationError("bit array must contain only 0 and 1")
    return (2 * bits - 1).astype(np.int8)


def nrz_to_bits(nrz: np.ndarray) -> np.ndarray:
    """Map NRZ symbols {-1, +1} back to bits {0, 1}."""
    nrz = np.asarray(nrz, dtype=np.int8)
    if nrz.size and not np.isin(nrz, (-1, 1)).all():
        raise ConfigurationError("NRZ array must contain only -1 and +1")
    return ((nrz + 1) // 2).astype(np.int8)


def random_bits(length: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``length`` uniform random bits from ``rng``."""
    if length < 0:
        raise ConfigurationError(f"length must be non-negative, got {length}")
    return rng.integers(0, 2, size=length, dtype=np.int8)


def xor_bits(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bitwise XOR of two equal-length bit arrays."""
    a = np.asarray(a, dtype=np.int8)
    b = np.asarray(b, dtype=np.int8)
    if a.shape != b.shape:
        raise ConfigurationError(
            f"shape mismatch: {a.shape} vs {b.shape}"
        )
    return np.bitwise_xor(a, b).astype(np.int8)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Number of positions where two equal-length bit arrays differ."""
    return int(xor_bits(a, b).sum())

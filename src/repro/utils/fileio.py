"""Crash-safe file writes.

Results that feed later analysis — ``--metrics-out`` snapshots, the
campaign store's JSON sidecars, benchmark records — must never be left
half-written: a truncated JSON file is worse than a missing one because
downstream tooling trusts whatever parses.  :func:`atomic_write_text`
writes the full payload to a temporary file in the *same directory*
(so the final rename never crosses a filesystem boundary) and promotes
it with ``os.replace``, which POSIX guarantees is atomic.  An interrupt
at any point leaves either the old file or the new file, never a mix.
"""

from __future__ import annotations

import os
import tempfile
from typing import Union

__all__ = ["atomic_write_text", "atomic_write_bytes"]


def atomic_write_bytes(path: Union[str, "os.PathLike[str]"], data: bytes) -> None:
    """Atomically replace ``path`` with ``data``.

    The payload lands in a ``tempfile`` sibling first and is fsynced
    before the rename, so a crash mid-write cannot truncate an existing
    file and a crash mid-rename leaves the old content intact.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, target)
    except OSError:
        # Leave no orphaned partial temp file behind on failure; the
        # target itself was never touched.
        try:
            os.unlink(tmp_path)
        except FileNotFoundError:
            pass
        raise


def atomic_write_text(
    path: Union[str, "os.PathLike[str]"],
    text: str,
    *,
    ensure_newline: bool = True,
) -> None:
    """Atomically replace ``path`` with ``text`` (UTF-8).

    With ``ensure_newline`` (the default) a missing trailing newline is
    appended, so every artifact this package writes is a well-formed
    text file for ``diff``/``cat``/POSIX tools.
    """
    if ensure_newline and not text.endswith("\n"):
        text += "\n"
    atomic_write_bytes(path, text.encode("utf-8"))

"""Shared low-level utilities: bit sequences, NRZ conversion, RNG helpers."""

from repro.utils.bitstring import (
    bits_from_bytes,
    bits_from_int,
    bits_to_bytes,
    bits_to_int,
    hamming_distance,
    nrz_from_bits,
    nrz_to_bits,
    random_bits,
    xor_bits,
)
from repro.utils.rng import SeedSequencer, derive_rng, fraction_indices
from repro.utils.stats import mean_confidence_interval, wilson_interval
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)

__all__ = [
    "bits_from_bytes",
    "bits_from_int",
    "bits_to_bytes",
    "bits_to_int",
    "hamming_distance",
    "nrz_from_bits",
    "nrz_to_bits",
    "random_bits",
    "xor_bits",
    "SeedSequencer",
    "derive_rng",
    "fraction_indices",
    "mean_confidence_interval",
    "wilson_interval",
    "check_fraction",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_type",
]

"""Deterministic randomness plumbing.

Every stochastic component in this package draws from a
``numpy.random.Generator`` that is *passed in*, never from a module-level
global.  :class:`SeedSequencer` hands out independent child generators from a
single experiment seed so that (a) a whole experiment is reproducible from
one integer and (b) changing how many draws one subsystem makes does not
perturb another subsystem's stream.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SeedSequencer", "derive_rng", "fraction_indices"]


class SeedSequencer:
    """Hands out independent, reproducible child RNGs from a root seed.

    Children are keyed by a string label; asking for the same label twice
    returns generators with identical streams, so components can be
    re-created mid-experiment without losing reproducibility.

    >>> seq = SeedSequencer(42)
    >>> a1 = seq.rng("jammer")
    >>> a2 = seq.rng("jammer")
    >>> bool((a1.integers(0, 100, 5) == a2.integers(0, 100, 5)).all())
    True
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise ConfigurationError(
                f"seed must be an int, got {type(seed).__name__}"
            )
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed."""
        return self._seed

    def rng(self, label: str) -> np.random.Generator:
        """Return the child generator for ``label``."""
        return derive_rng(self._seed, label)

    def child(self, label: str) -> "SeedSequencer":
        """Return a child sequencer with its own namespace."""
        entropy = np.random.SeedSequence(
            self._seed, spawn_key=(_label_key(label),)
        )
        return SeedSequencer(int(entropy.generate_state(1)[0]))

    def spawn(self, labels: Iterable[str]) -> List[np.random.Generator]:
        """Return one child generator per label, in order."""
        return [self.rng(label) for label in labels]


def _label_key(label: str) -> int:
    """Map a string label to a stable 32-bit spawn key."""
    key = 2166136261
    for ch in label.encode("utf-8"):
        key = ((key ^ ch) * 16777619) & 0xFFFFFFFF
    return key


def derive_rng(seed: int, label: str) -> np.random.Generator:
    """Create a generator deterministically derived from ``seed`` + ``label``."""
    sequence = np.random.SeedSequence(int(seed), spawn_key=(_label_key(label),))
    return np.random.default_rng(sequence)


def fraction_indices(
    length: int, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Choose ``round(fraction * length)`` distinct indices in ``[0, length)``.

    Used by the channel and jammer models to corrupt a fraction of a
    message's bits or chips.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
    if length < 0:
        raise ConfigurationError(f"length must be non-negative, got {length}")
    count = int(round(fraction * length))
    count = min(count, length)
    return rng.choice(length, size=count, replace=False)

"""Small argument-validation helpers.

These raise :class:`repro.errors.ConfigurationError` with a uniform message
format, keeping the validation noise in constructors short and consistent.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union

from repro.errors import ConfigurationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_in_range",
    "check_type",
]

Number = Union[int, float]


def check_positive(name: str, value: Number) -> Number:
    """Require ``value > 0``; return it."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: Number) -> Number:
    """Require ``value >= 0``; return it."""
    if not value >= 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: Number) -> Number:
    """Require ``0 <= value <= 1``; return it."""
    if not 0 <= value <= 1:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(
    name: str, value: Number, low: Number, high: Number
) -> Number:
    """Require ``low <= value <= high``; return it."""
    if not low <= value <= high:
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )
    return value


def check_type(
    name: str, value: Any, types: Union[Type, Tuple[Type, ...]]
) -> Any:
    """Require ``isinstance(value, types)``; return the value."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = " or ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise ConfigurationError(
            f"{name} must be {expected}, got {type(value).__name__}"
        )
    return value

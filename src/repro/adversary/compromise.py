"""Node compromise (Section IV-B).

The adversary physically captures ``q`` nodes, learning every spread code
they hold and their ID-based private keys.  Codes held only by
non-compromised nodes stay secret — the property that makes the
pre-distribution scheme degrade gracefully (Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.predistribution.authority import CodeAssignment
from repro.utils.validation import check_non_negative

__all__ = ["CompromiseState", "CompromiseModel"]


@dataclass(frozen=True)
class CompromiseState:
    """What the adversary knows after compromising nodes.

    Attributes
    ----------
    nodes:
        Indices of compromised nodes.
    codes:
        Pool indices of every compromised spread code (union over the
        captured nodes' code sets).
    """

    nodes: FrozenSet[int]
    codes: FrozenSet[int]

    @property
    def n_nodes(self) -> int:
        """Number of compromised nodes (the paper's ``q``)."""
        return len(self.nodes)

    @property
    def n_codes(self) -> int:
        """Number of compromised codes (the paper's ``c``)."""
        return len(self.codes)

    def knows_code(self, code_index: int) -> bool:
        """Whether a pool code is compromised."""
        return code_index in self.codes

    def knows_node(self, node: int) -> bool:
        """Whether a node is compromised."""
        return node in self.nodes


class CompromiseModel:
    """Samples compromise states against a code assignment."""

    def __init__(self, assignment: CodeAssignment) -> None:
        self._assignment = assignment

    def compromise_random(
        self, q: int, rng: np.random.Generator
    ) -> CompromiseState:
        """Capture ``q`` nodes chosen uniformly without replacement."""
        check_non_negative("q", q)
        n = self._assignment.n_nodes
        if q > n:
            raise ConfigurationError(f"cannot compromise {q} of {n} nodes")
        nodes = (
            rng.choice(n, size=q, replace=False).tolist() if q else []
        )
        return self.compromise_nodes(nodes)

    def compromise_nodes(self, nodes: Sequence[int]) -> CompromiseState:
        """Capture a specific node set."""
        node_set = {int(node) for node in nodes}
        codes = self._assignment.compromised_codes(sorted(node_set))
        return CompromiseState(
            nodes=frozenset(node_set), codes=frozenset(codes)
        )

    def empty(self) -> CompromiseState:
        """A no-compromise state."""
        return CompromiseState(nodes=frozenset(), codes=frozenset())

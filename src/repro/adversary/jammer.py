"""The random and reactive jammer models (Section IV-B, Theorem 1).

Both jammers can transmit at most ``z`` signals in parallel against any
targeted message and only ever jam with *compromised* codes (guessing an
``N = 512``-chip code blind is hopeless).  Because a jam signal must
cover at least a fraction ``mu / (1 + mu)`` of the message to defeat the
ECC, a jammer can try at most ``z (1 + mu) / mu`` distinct codes against
one message.

- **Random jammer**: picks that many codes uniformly from the ``c``
  compromised codes; succeeds iff the target's code is among them —
  probability ``beta = min(z (1 + mu) / (c mu), 1)`` per message.
- **Reactive jammer**: spends the first part of the message identifying
  the code in use; if (and only if) the code is compromised, the
  identification succeeds before ``1 / (1 + mu)`` of the message has
  passed and the remaining ``mu / (1 + mu)`` fraction is jammed — enough
  to defeat the ECC.  This is the paper's worst case.

:class:`JammingModel` exposes per-message *sampling* used by the Monte
Carlo experiments; :class:`MediumJammer` adapts the same model to the
event-driven :class:`repro.sim.medium.RadioMedium`.
"""

from __future__ import annotations

import enum
import math
from typing import FrozenSet

import numpy as np

from repro.adversary.compromise import CompromiseState
from repro.errors import ConfigurationError
from repro.sim.medium import RadioMedium, Transmission
from repro.utils.validation import check_positive

__all__ = ["JammerStrategy", "JammingModel", "MediumJammer"]


class JammerStrategy(enum.Enum):
    """Which of the paper's jammer behaviours to use.

    ``INTELLIGENT`` is the Section V-B attack against the no-redundancy
    strawman: the jammer deliberately spares HELLO messages and spends
    its budget on the three later messages, hoping the responder picked
    a compromised code to spread them with.
    """

    RANDOM = "random"
    REACTIVE = "reactive"
    INTELLIGENT = "intelligent"


class JammingModel:
    """Per-message jamming outcome sampling.

    Parameters
    ----------
    strategy:
        Random or reactive.
    compromised_codes:
        Pool indices known to the adversary.
    z:
        Parallel jamming signals (the paper's ``z``).
    mu:
        ECC expansion parameter (sets both the code-dwell constraint and
        the reactive identification deadline).
    """

    def __init__(
        self,
        strategy: JammerStrategy,
        compromised_codes: FrozenSet[int],
        z: int,
        mu: float,
    ) -> None:
        if not isinstance(strategy, JammerStrategy):
            raise ConfigurationError(
                f"strategy must be a JammerStrategy, got {strategy!r}"
            )
        check_positive("z", z)
        check_positive("mu", mu)
        self._strategy = strategy
        self._codes = frozenset(int(c) for c in compromised_codes)
        self._z = int(z)
        self._mu = float(mu)

    @classmethod
    def from_compromise(
        cls,
        strategy: JammerStrategy,
        state: CompromiseState,
        z: int,
        mu: float,
    ) -> "JammingModel":
        """Build a model from a sampled compromise state."""
        return cls(strategy, state.codes, z, mu)

    @property
    def strategy(self) -> JammerStrategy:
        """The jammer's behaviour."""
        return self._strategy

    @property
    def n_compromised(self) -> int:
        """Number of compromised codes ``c`` available to the jammer."""
        return len(self._codes)

    @property
    def codes_per_message(self) -> int:
        """Distinct codes a random jammer can try on one message:
        ``floor(z (1 + mu) / mu)``."""
        return int(math.floor(self._z * (1.0 + self._mu) / self._mu))

    def random_success_probability(self) -> float:
        """Theorem 1's ``beta = min(z (1 + mu) / (c mu), 1)``."""
        if not self._codes:
            return 0.0
        return min(
            self._z * (1.0 + self._mu) / (len(self._codes) * self._mu), 1.0
        )

    def knows(self, code_index: int) -> bool:
        """Whether the jammer holds this code."""
        return int(code_index) in self._codes

    def message_jammed(
        self, code_index: int, rng: np.random.Generator
    ) -> bool:
        """Sample whether one message spread with ``code_index`` is lost.

        Session codes (non-integer keys) are never jammable — they are
        derived from pairwise keys the adversary does not hold.
        """
        if not isinstance(code_index, (int, np.integer)):
            return False
        if self._strategy is JammerStrategy.INTELLIGENT:
            return False  # deliberately lets HELLOs through
        if not self.knows(int(code_index)):
            return False
        if self._strategy is JammerStrategy.REACTIVE:
            return True
        # Random: target code must be among the codes tried this message.
        tries = min(self.codes_per_message, len(self._codes))
        return bool(rng.random() < tries / len(self._codes))

    def burst_jammed(
        self,
        code_index: int,
        n_messages: int,
        rng: np.random.Generator,
    ) -> bool:
        """Whether at least one of ``n_messages`` dependent messages
        (all spread with the same code) is lost.

        Mirrors Theorem 1's ``beta' = min(3 z (1+mu) / (c mu), 1)`` for
        the three post-HELLO messages: the jammer gets a fresh code
        budget per message.
        """
        check_positive("n_messages", n_messages)
        if not isinstance(code_index, (int, np.integer)):
            return False
        if not self.knows(int(code_index)):
            return False
        if self._strategy in (
            JammerStrategy.REACTIVE, JammerStrategy.INTELLIGENT
        ):
            return True
        tries = min(self.codes_per_message, len(self._codes))
        p_single = tries / len(self._codes)
        p_burst = min(n_messages * p_single, 1.0)
        return bool(rng.random() < p_burst)


class MediumJammer:
    """Adapts :class:`JammingModel` to the event-driven radio medium.

    On every transmission start the jammer decides, per its strategy,
    whether to emit a jam signal and how much of the message it covers:

    - reactive: if the code is compromised, jam from the identification
      point (``1 / (1 + mu)`` through the message) to the end;
    - random: if the (compromised) code is among this message's random
      picks, jam the whole message.
    """

    def __init__(
        self, model: JammingModel, rng: np.random.Generator
    ) -> None:
        self._model = model
        self._rng = rng
        self.attempts = 0
        self.effective = 0

    @property
    def model(self) -> JammingModel:
        """The underlying outcome model."""
        return self._model

    def on_transmission(self, tx: Transmission, medium: RadioMedium) -> None:
        """Medium callback: maybe place a jam against ``tx``."""
        code_key = tx.code_key
        if not isinstance(code_key, (int, np.integer)):
            return  # session codes are unknown to the jammer
        if not self._model.knows(int(code_key)):
            if self._model.strategy is JammerStrategy.RANDOM:
                self._maybe_random_jam(tx, medium)
            return
        self.attempts += 1
        if self._model.strategy is JammerStrategy.REACTIVE:
            # The jammer must identify the code before 1/(1+mu) of the
            # message has passed (Section IV-B); a capable reactive
            # jammer locks on from the first blocks, modelled here as
            # half the deadline, so the jammed tail strictly exceeds
            # the ECC tolerance mu/(1+mu).
            identify_fraction = 0.5 / (1.0 + self._model._mu)
            if medium.jam(tx, code_key, 1.0 - identify_fraction):
                self.effective += 1
        else:
            if self._rng.random() < self._model.random_success_probability():
                if medium.jam(tx, code_key, 1.0):
                    self.effective += 1

    def _maybe_random_jam(
        self, tx: Transmission, medium: RadioMedium
    ) -> None:
        """A random jammer wastes budget on codes that don't match."""
        # No effect on the medium: jam with a non-matching code is a
        # no-op, so nothing to do beyond accounting.
        self.attempts += 1

"""The fake-request DoS attack and its cost accounting (Section V-D).

With a public-strategy scheme the adversary could force *every* node into
endless signature verifications.  Under JR-SND it can only inject fake
neighbor-discovery requests spread with *compromised* codes, and each
such code is held by at most ``l - 1`` other nodes who each revoke it
after ``gamma`` invalid requests — bounding the total wasted
verifications per compromised code at ``(l - 1) * gamma``.

:class:`DoSAttacker` drives that attack against a set of victim
:class:`~repro.predistribution.revocation.RevocationList` instances and
reports the measured damage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.predistribution.revocation import RevocationList
from repro.utils.validation import check_positive

__all__ = ["DoSImpact", "DoSAttacker", "EventDoSInjector"]


@dataclass(frozen=True)
class DoSImpact:
    """Damage report of a DoS campaign.

    Attributes
    ----------
    injected:
        Fake requests the adversary transmitted.
    verifications:
        Signature verifications victims performed (the wasted work).
    revocations:
        Codes revoked (summed over victims).
    per_code_verifications:
        Wasted verifications keyed by attacked code.
    """

    injected: int
    verifications: int
    revocations: int
    per_code_verifications: Dict[int, int]

    def worst_code_verifications(self) -> int:
        """Largest per-code verification count."""
        return max(self.per_code_verifications.values(), default=0)


class DoSAttacker:
    """Floods fake requests under compromised codes.

    Parameters
    ----------
    compromised_codes:
        Pool indices the adversary can spread with.
    """

    def __init__(self, compromised_codes: Iterable[int]) -> None:
        self._codes = sorted({int(c) for c in compromised_codes})
        if not self._codes:
            raise ConfigurationError(
                "a DoS attacker needs at least one compromised code"
            )

    @property
    def codes(self) -> List[int]:
        """Codes available to the attacker."""
        return list(self._codes)

    def flood(
        self,
        victims: Mapping[int, RevocationList],
        holders: Mapping[int, Sequence[int]],
        requests_per_code: int,
        rng: np.random.Generator,
    ) -> DoSImpact:
        """Send ``requests_per_code`` fakes under every compromised code.

        ``victims`` maps node index to its revocation list; ``holders``
        maps code index to the nodes holding it.  A fake request reaches
        every holder that has not yet revoked the code; each reception
        costs one signature verification, increments the victim's
        counter, and possibly triggers revocation.  Request order is
        shuffled to avoid artifacts.
        """
        check_positive("requests_per_code", requests_per_code)
        schedule = [
            code for code in self._codes for _ in range(requests_per_code)
        ]
        rng.shuffle(schedule)
        injected = 0
        verifications = 0
        revocations = 0
        per_code: Dict[int, int] = {code: 0 for code in self._codes}
        for code in schedule:
            injected += 1
            for node in holders.get(code, ()):
                victim = victims.get(node)
                if victim is None or not victim.is_active(code):
                    continue
                verifications += 1
                per_code[code] += 1
                if victim.record_invalid_request(code):
                    revocations += 1
        return DoSImpact(
            injected=injected,
            verifications=verifications,
            revocations=revocations,
            per_code_verifications=per_code,
        )


class EventDoSInjector:
    """Drives the fake-request flood on the event-driven simulator.

    Transmits :class:`repro.core.jrsnd.FakeSignedRequest` frames under
    random compromised pool codes at a fixed rate from a fixed position.
    Victims process a fake only when it lands inside one of their
    buffered windows (or on a code they monitor in real time), exactly
    like legitimate traffic — so the measured verification load reflects
    the receiver schedule, not just the injection rate.
    """

    def __init__(
        self,
        medium,
        simulator,
        compromised_codes: Sequence[int],
        position,
        rng: np.random.Generator,
        claimed_sender,
        frame_duration: float = 1e-3,
    ) -> None:
        codes = sorted({int(c) for c in compromised_codes})
        if not codes:
            raise ConfigurationError(
                "the injector needs at least one compromised code"
            )
        check_positive("frame_duration", frame_duration)
        self._medium = medium
        self._sim = simulator
        self._codes = codes
        self._position = position
        self._rng = rng
        self._claimed_sender = claimed_sender
        self._duration = float(frame_duration)
        self._index = 10_000_000  # distinct medium address space
        self.injected = 0
        self._registered = False

    def start(self, interval: float, count: int):
        """Inject ``count`` fakes, one every ``interval`` seconds."""
        from repro.core.jrsnd import FakeSignedRequest
        from repro.sim.engine import Timeout

        check_positive("interval", interval)
        check_positive("count", count)
        if not self._registered:
            self._medium.register_node(
                self._index, lambda: self._position
            )
            self._registered = True
        fake = FakeSignedRequest(claimed_sender=self._claimed_sender)

        def inject():
            for _ in range(int(count)):
                code = self._codes[
                    int(self._rng.integers(0, len(self._codes)))
                ]
                self._medium.transmit(
                    self._index, code, fake, self._duration
                )
                self.injected += 1
                yield Timeout(interval)

        return self._sim.process(inject(), name="dos-injector")

"""Adversary models (Section IV-B).

- :mod:`repro.adversary.compromise` — node compromise: the adversary
  captures up to a small fraction of nodes and learns their spread codes
  and private keys.
- :mod:`repro.adversary.jammer` — the two jamming strategies the paper
  analyzes: *random* (pick compromised codes blindly, at most
  ``z (1 + mu) / mu`` distinct codes per message) and *reactive*
  (identify the code in use before ``1 / (1 + mu)`` of the message has
  passed, then jam the rest), both limited to ``z`` parallel signals.
- :mod:`repro.adversary.dos` — the fake-request injection attack whose
  damage the revocation defense bounds at ``(l - 1) gamma`` per code.
"""

from repro.adversary.compromise import CompromiseModel, CompromiseState
from repro.adversary.dos import DoSAttacker, DoSImpact, EventDoSInjector
from repro.adversary.jammer import (
    JammerStrategy,
    JammingModel,
    MediumJammer,
)

__all__ = [
    "CompromiseModel",
    "CompromiseState",
    "JammerStrategy",
    "JammingModel",
    "MediumJammer",
    "DoSAttacker",
    "EventDoSInjector",
    "DoSImpact",
]

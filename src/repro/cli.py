"""Command-line interface: ``python -m repro <command>``.

Regenerates each of the paper's evaluation artifacts from the terminal:

- ``table1``   — analysis-vs-simulation check at the Table I defaults;
- ``figure2`` … ``figure5`` — the corresponding sweep tables;
- ``theory``   — the Theorem 1-4 closed forms at given parameters;
- ``dsss``     — a jammed-HELLO PHY sweep exercising the spread /
  despread / ECC hot path and its artifact caches;
- ``chaos``    — an invariant-checked fault-injection soak driving a
  seeded :class:`~repro.faults.FaultPlan` against a small event
  network (exits non-zero if any invariant breaks);
- ``campaign`` — sharded, resumable sweep campaigns
  (``launch`` / ``resume`` / ``status`` / ``query`` / ``diff``)
  backed by the :mod:`repro.campaigns` SQLite results store; a killed
  campaign resumes from completed shards only and finishes with a
  store bit-identical to an uninterrupted run's.

Every command accepts ``--runs`` (Monte Carlo runs per point; the paper
uses 100), ``--seed``, and ``--metrics-out <path.json>`` — the latter
installs a :class:`~repro.obs.MetricsRegistry` for the duration of the
command and writes the resulting
:class:`~repro.obs.MetricsSnapshot` as JSON, giving benchmark runs
machine-readable telemetry to regress against.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import List, Optional

from repro.adversary.jammer import JammerStrategy
from repro.analysis.combined import combined_latency
from repro.analysis.dndp_theory import (
    dndp_expected_latency,
    dndp_probability_bounds,
)
from repro.analysis.mndp_theory import (
    mndp_expected_latency,
    mndp_two_hop_bound,
)
from repro.core.config import JRSNDConfig
from repro.experiments.figures import (
    figure2_sweep,
    figure3a_sweep,
    figure3b_sweep,
    figure4_sweep,
    figure5_sweep,
)
from repro.experiments.reporting import format_series_table
from repro.experiments.runner import NetworkExperiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JR-SND (ICDCS 2011) reproduction toolkit",
    )
    parser.add_argument("--runs", type=int, default=5,
                        help="Monte Carlo runs per sweep point "
                             "(paper: 100)")
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument("--chart", action="store_true",
                        help="draw the sweep as a terminal chart "
                             "in addition to the table")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="collect metrics across the command and "
                             "write the snapshot as JSON to PATH")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="defaults consistency check")
    sub.add_parser("figure2", help="impact of m (probability + latency)")
    sub.add_parser("figure3a", help="impact of l")
    sub.add_parser("figure3b", help="impact of n")
    fig4 = sub.add_parser("figure4", help="impact of q")
    fig4.add_argument("--share-count", type=int, default=40,
                      help="l (paper: 40 for (a), 20 for (b))")
    fig5 = sub.add_parser("figure5", help="impact of nu")
    fig5.add_argument("--q", type=int, default=100)
    fig5.add_argument(
        "--link-model", choices=("codes", "independent"),
        default="independent",
        help="independent matches the paper's plotted curves",
    )
    theory = sub.add_parser("theory", help="Theorem 1-4 closed forms")
    theory.add_argument("--q", type=int, default=20)
    theory.add_argument("--nu", type=int, default=2)
    dsss = sub.add_parser(
        "dsss",
        help="jammed-HELLO PHY sweep (spread, jam, despread, decode)",
    )
    dsss.add_argument("--messages", type=int, default=100,
                      help="distinct HELLO senders (each sent twice, so "
                           "the waveform cache registers hits)")
    dsss.add_argument("--ecc-backend", choices=("naive", "vectorized"),
                      default="vectorized",
                      help="Reed-Solomon arithmetic backend")
    dsss.add_argument("--burst", type=float, default=0.2,
                      help="fraction of coded bits erased by a "
                           "contiguous jamming burst")
    sub.add_parser(
        "validate",
        help="sweep a config grid checking Theorem 1 agreement",
    )
    chaos = sub.add_parser(
        "chaos",
        help="invariant-checked fault-injection soak "
             "(exits non-zero on any violation)",
    )
    chaos.add_argument("--nodes", type=int, default=8,
                       help="event-network size")
    chaos.add_argument("--duration", type=float, default=30.0,
                       help="simulated seconds to soak")
    chaos.add_argument("--drop", type=float, default=0.05,
                       help="per-delivery drop probability (0 disables)")
    chaos.add_argument("--burst", type=float, default=0.5,
                       help="chip-burst jam window length in seconds "
                            "(0 disables)")
    chaos.add_argument("--burst-period", type=float, default=5.0,
                       help="seconds between jam windows")
    chaos.add_argument("--no-churn", action="store_true",
                       help="disable node crash/restart churn")
    chaos.add_argument("--skew", type=float, default=1e-3,
                       help="max per-node clock skew in seconds "
                            "(0 disables)")
    chaos.add_argument("--duplicate", type=float, default=0.02,
                       help="duplicate-delivery probability (0 disables)")
    chaos.add_argument("--reorder", type=float, default=0.02,
                       help="reordered-delivery probability (0 disables)")
    chaos.add_argument("--no-faults", action="store_true",
                       help="run with the NullFaultPlan (baseline)")
    campaign = sub.add_parser(
        "campaign",
        help="sharded, resumable sweep campaigns backed by a "
             "SQLite results store",
    )
    campaign_sub = campaign.add_subparsers(
        dest="campaign_command", required=True
    )
    for verb, blurb in (
        ("launch", "start a campaign (skips shards already stored)"),
        ("resume", "continue an interrupted campaign"),
    ):
        runner = campaign_sub.add_parser(verb, help=blurb)
        runner.add_argument("--spec", metavar="PATH", default=None,
                            help="campaign spec JSON file")
        runner.add_argument("--store", metavar="PATH", required=True,
                            help="SQLite results store")
        runner.add_argument("--campaign", metavar="NAME", default=None,
                            help="reuse the spec stored under NAME "
                                 "instead of --spec")
        runner.add_argument("--processes", type=int, default=None,
                            help="worker processes (sizes the "
                                 "persistent pool)")
        runner.add_argument("--no-pool", action="store_true",
                            help="disable the persistent worker pool "
                                 "and fork one pool per shard "
                                 "(results are identical)")
        runner.add_argument("--max-shards", type=int, default=None,
                            help="stop (resumably) after this many "
                                 "shards")
        runner.add_argument("--kill-after-shards", type=int,
                            default=None,
                            help="testing hook: SIGKILL this process "
                                 "after the N-th shard commit")
        runner.add_argument("--revision", default=None,
                            help="override the git revision key "
                                 "(default: git rev-parse HEAD)")
        runner.add_argument("--retry-quarantined",
                            action="store_true",
                            help="clear quarantine records and "
                                 "re-execute their shards (default: "
                                 "quarantined shards are skipped)")
        runner.add_argument("--chaos-kill-rate", type=float,
                            default=0.0, metavar="P",
                            help="testing hook: each run SIGKILLs its "
                                 "worker with probability P (seeded)")
        runner.add_argument("--chaos-kill-seed", type=int, default=0,
                            metavar="SEED",
                            help="seed for --chaos-kill-rate draws")
        runner.add_argument("--chaos-max-kills", type=int, default=1,
                            metavar="N",
                            help="kills per selected run before it is "
                                 "allowed through (keep at or below "
                                 "the spec's max_run_retries for a "
                                 "clean finish)")
    status = campaign_sub.add_parser(
        "status", help="per-campaign shard progress and store digest"
    )
    status.add_argument("--store", metavar="PATH", required=True)
    status.add_argument("--json", action="store_true",
                        help="machine-readable status (shards done/"
                             "pending, quarantined runs, degradation "
                             "events); exit code 3 when quarantined "
                             "runs exist")
    query = campaign_sub.add_parser(
        "query", help="per-point aggregated results of a campaign"
    )
    query.add_argument("--store", metavar="PATH", required=True)
    query.add_argument("--campaign", metavar="NAME", required=True)
    query.add_argument("--revision", default=None,
                       help="revision to query (default: latest)")
    diff = campaign_sub.add_parser(
        "diff",
        help="per-point deltas of one campaign across two revisions "
             "or two stores",
    )
    diff.add_argument("--store", metavar="PATH", required=True)
    diff.add_argument("--campaign", metavar="NAME", required=True)
    diff.add_argument("--revision", default=None,
                      help="baseline revision (default: latest)")
    diff.add_argument("--against", default=None,
                      help="revision to compare against the baseline")
    diff.add_argument("--other", metavar="PATH", default=None,
                      help="read the --against side from this store "
                           "instead")
    return parser


def _cmd_table1(args: argparse.Namespace) -> None:
    config = JRSNDConfig()
    low, high = dndp_probability_bounds(config, config.n_compromised)
    reactive = NetworkExperiment(
        config, seed=args.seed, strategy=JammerStrategy.REACTIVE
    ).run(args.runs)
    random_ = NetworkExperiment(
        config, seed=args.seed, strategy=JammerStrategy.RANDOM
    ).run(args.runs)
    print(format_series_table(
        [{
            "p_dndp_reactive": reactive.discovery_probability("dndp"),
            "theory_P_minus": low,
            "p_dndp_random": random_.discovery_probability("dndp"),
            "theory_P_plus": high,
            "p_jrsnd": reactive.discovery_probability("jrsnd"),
        }],
        title="Table I defaults: simulation vs Theorem 1",
    ))


def _cmd_theory(args: argparse.Namespace) -> None:
    config = JRSNDConfig().replace(n_compromised=args.q, nu=args.nu)
    low, high = dndp_probability_bounds(config, args.q)
    print(format_series_table(
        [{
            "q": float(args.q),
            "P_minus": low,
            "P_plus": high,
            "P_M_bound": mndp_two_hop_bound(low, config.expected_degree),
            "T_D": dndp_expected_latency(config),
            "T_M": mndp_expected_latency(config),
            "T": combined_latency(config),
        }],
        title=f"Theorems 1-4 at q={args.q}, nu={args.nu}",
    ))


def _cmd_dsss(args: argparse.Namespace) -> None:
    """Drive the PHY hot path end to end: frame, ECC-encode, spread,
    superpose, despread, burst-erase, decode.

    Each distinct HELLO is transmitted twice with the same spread code,
    so the run exercises the waveform/rs_codec artifact caches and the
    selected Reed-Solomon backend — all visible in a ``--metrics-out``
    snapshot via the ``cache.*`` and ``ecc.*`` counters.
    """
    import numpy as np

    from repro.dsss.channel import ChipChannel
    from repro.dsss.frame import Frame, FrameCodec, MessageType
    from repro.dsss.spread_code import SpreadCode
    from repro.dsss.spreader import despread
    from repro.errors import DecodeError
    from repro.utils.artifact_cache import shared_cache
    from repro.utils.bitstring import bits_from_int

    if args.messages <= 0:
        raise SystemExit("--messages must be positive")
    if not 0.0 <= args.burst < 1.0:
        raise SystemExit("--burst must be in [0, 1)")
    config = JRSNDConfig()
    codec = FrameCodec(
        config.mu, config.type_bits, ecc_backend=args.ecc_backend
    )
    rng = np.random.default_rng(args.seed)
    code = SpreadCode.random(config.code_length, rng)
    cache = shared_cache()
    hits_before, misses_before = cache.hits, cache.misses
    sent = decoded_ok = 0
    for _round in range(2):
        for sender in range(args.messages):
            frame = Frame(
                MessageType.HELLO,
                bits_from_int(
                    sender % (1 << config.id_bits), config.id_bits
                ),
            )
            channel = ChipChannel(noise_std=0.0)
            channel.add_message(
                codec.encode(frame), code, offset=0,
                label=f"hello:{sender}",
            )
            decisions = despread(channel.render(), code, config.tau)
            burst = int(args.burst * len(decisions))
            if burst:
                start = int(
                    rng.integers(0, len(decisions) - burst + 1)
                )
                decisions[start : start + burst] = [None] * burst
            sent += 1
            try:
                if codec.decode(decisions, config.id_bits) == frame:
                    decoded_ok += 1
            except DecodeError:
                pass
    print(format_series_table(
        [{
            "hellos_sent": float(sent),
            "decoded_ok": float(decoded_ok),
            "success_rate": decoded_ok / sent,
            "burst_fraction": float(args.burst),
            "artifact_cache_hits": float(cache.hits - hits_before),
            "artifact_cache_misses": float(
                cache.misses - misses_before
            ),
        }],
        title=f"DSSS jammed-HELLO sweep ({args.ecc_backend} RS backend)",
    ))


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run an invariant-checked chaos soak; non-zero on violations."""
    from repro.experiments.chaos import (
        chaos_config,
        default_chaos_plan,
        run_chaos,
    )
    from repro.faults import NullFaultPlan

    config = chaos_config(args.nodes)
    if args.no_faults:
        plan = NullFaultPlan()
    else:
        plan = default_chaos_plan(
            config,
            seed=args.seed,
            duration=args.duration,
            drop=args.drop,
            burst=args.burst,
            burst_period=args.burst_period,
            churn=not args.no_churn,
            skew=args.skew,
            duplicate=args.duplicate,
            reorder=args.reorder,
        )
    report = run_chaos(
        config, seed=args.seed, duration=args.duration, plan=plan
    )
    for line in report.summary_lines():
        print(line)
    return 0 if report.ok else 1


def _campaign_spec(args: argparse.Namespace):
    """Resolve the spec for launch/resume from --spec or --campaign."""
    from repro.campaigns import CampaignSpec, CampaignStore

    if args.spec is not None:
        return CampaignSpec.from_file(args.spec)
    if args.campaign is not None:
        with CampaignStore(args.store) as store:
            spec, _revision = store.spec_for(args.campaign)
        return spec
    raise SystemExit("campaign launch/resume needs --spec or --campaign")


def _campaign_point_rows(results) -> List[dict]:
    """``point_results`` output flattened into printable table rows."""
    rows = []
    for point_index, (params, result) in results.items():
        row = {"point": point_index}
        row.update(params)
        row.update(
            p_dndp=result.discovery_probability("dndp"),
            p_mndp=result.discovery_probability("mndp"),
            p_jrsnd=result.discovery_probability("jrsnd"),
            t_dndp=result.mean_dndp_latency() or float("nan"),
            runs=len(result.runs),
        )
        rows.append(row)
    return rows


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Dispatch ``campaign launch|resume|status|query|diff``."""
    from repro.campaigns import CampaignStore, run_campaign
    from repro.experiments.reporting import format_kv_block

    if args.campaign_command in ("launch", "resume"):
        spec = _campaign_spec(args)
        execution_faults = None
        if args.chaos_kill_rate:
            from repro.faults import ExecutionFaultPlan, WorkerKiller

            execution_faults = ExecutionFaultPlan((
                WorkerKiller(
                    seed=args.chaos_kill_seed,
                    rate=args.chaos_kill_rate,
                    max_kills=args.chaos_max_kills,
                ),
            ))
        status = run_campaign(
            spec,
            args.store,
            processes=args.processes,
            max_shards=args.max_shards,
            kill_after_shards=args.kill_after_shards,
            git_revision=args.revision,
            progress=print,
            use_pool=not args.no_pool,
            retry_quarantined=args.retry_quarantined,
            execution_faults=execution_faults,
        )
        remaining = (
            status.shards_total
            - status.shards_executed
            - status.shards_skipped
        )
        print(format_kv_block(
            [
                ("campaign", status.campaign_id),
                ("spec hash", status.spec_hash),
                ("revision", status.git_revision),
                ("shards", f"{remaining} remaining / "
                           f"{status.shards_executed} executed / "
                           f"{status.shards_skipped} skipped"),
                ("runs executed", status.runs_executed),
                ("runs quarantined", status.runs_quarantined),
                ("degradations", len(status.degraded)),
                ("complete", status.complete),
                ("digest", status.canonical_digest),
            ],
            title=f"campaign {args.campaign_command}: {status.campaign_id}",
        ))
        if status.runs_quarantined:
            return 3
        return 0 if status.complete or args.max_shards is not None else 1
    if args.campaign_command == "status":
        import json as _json

        from repro.campaigns.store import (
            INFRASTRUCTURE_KIND,
            QUARANTINE_KIND,
        )

        with CampaignStore(args.store) as store:
            campaigns = store.list_campaigns()
            digest = store.canonical_digest()
            details = []
            for row in campaigns:
                key = (
                    row["campaign_id"], row["spec_hash"],
                    row["git_revision"],
                )
                details.append((
                    row,
                    store.failure_records(*key, kind=QUARANTINE_KIND),
                    store.failure_records(
                        *key, kind=INFRASTRUCTURE_KIND
                    ),
                ))
        total_quarantined = sum(
            len(quarantine) for _, quarantine, _ in details
        )
        if args.json:
            payload = {
                "store": args.store,
                "canonical_digest": digest,
                "runs_quarantined": total_quarantined,
                "campaigns": [
                    {
                        "campaign_id": row["campaign_id"],
                        "spec_hash": row["spec_hash"],
                        "git_revision": row["git_revision"],
                        "status": row["status"],
                        "shards_done": row["shards_done"],
                        "shards_total": row["shards_total"],
                        "shards_pending": (
                            row["shards_total"] - row["shards_done"]
                        ),
                        "runs_quarantined": len(quarantine),
                        "shards_quarantined": len(
                            {
                                record["shard_index"]
                                for record in quarantine
                            }
                        ),
                        "quarantined_runs": [
                            {
                                "shard_index": record["shard_index"],
                                "run_index": record["run_index"],
                                "attempts": record["attempts"],
                            }
                            for record in quarantine
                        ],
                        "degradation_events": [
                            record["detail"] for record in infra
                        ],
                    }
                    for row, quarantine, infra in details
                ],
            }
            print(_json.dumps(payload, indent=2, sort_keys=True))
            return 3 if total_quarantined else 0
        if not campaigns:
            print(f"no campaigns in {args.store}")
            return 0
        print(format_series_table(
            [
                {
                    "campaign": row["campaign_id"],
                    "spec_hash": row["spec_hash"],
                    "revision": row["git_revision"][:12],
                    "status": row["status"],
                    "shards": f"{row['shards_done']}/{row['shards_total']}",
                    "quarantined": len(quarantine),
                }
                for row, quarantine, _ in details
            ],
            title=f"campaigns in {args.store}",
        ))
        print(f"\ncanonical digest: {digest}")
        return 3 if total_quarantined else 0
    if args.campaign_command == "query":
        with CampaignStore(args.store) as store:
            spec, revision = store.spec_for(
                args.campaign, args.revision
            )
            results = store.point_results(
                args.campaign, spec.spec_hash(), revision
            )
        if not results:
            print(f"campaign {args.campaign!r} has no committed "
                  f"shards at revision {revision}")
            return 1
        print(format_series_table(
            _campaign_point_rows(results),
            title=f"{args.campaign} @ {revision[:12]} "
                  f"(spec {spec.spec_hash()})",
        ))
        return 0
    if args.campaign_command == "diff":
        with CampaignStore(args.store) as store:
            spec, revision = store.spec_for(
                args.campaign, args.revision
            )
            base = store.point_results(
                args.campaign, spec.spec_hash(), revision
            )
        other_path = args.other or args.store
        with CampaignStore(other_path) as store:
            other_spec, other_revision = store.spec_for(
                args.campaign, args.against
            )
            other = store.point_results(
                args.campaign, other_spec.spec_hash(), other_revision
            )
        if revision == other_revision and other_path == args.store:
            print("nothing to diff: both sides are "
                  f"{args.campaign} @ {revision[:12]}")
            return 1
        rows = []
        for point_index in sorted(set(base) & set(other)):
            params, result = base[point_index]
            _, other_result = other[point_index]
            row = {"point": point_index}
            row.update(params)
            for kind in ("dndp", "mndp", "jrsnd"):
                a = result.discovery_probability(kind)
                b = other_result.discovery_probability(kind)
                row[f"d_{kind}"] = b - a
            rows.append(row)
        if not rows:
            print("no common points to diff")
            return 1
        print(format_series_table(
            rows,
            title=f"{args.campaign}: {revision[:12]} -> "
                  f"{other_revision[:12]} (delta)",
        ))
        missing = sorted(set(base) ^ set(other))
        if missing:
            print(f"\npoints only on one side: {missing}")
        return 0
    raise SystemExit(
        f"unknown campaign command {args.campaign_command!r}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.metrics_out:
        from repro.obs import MetricsRegistry, installed

        registry = MetricsRegistry()
        context = installed(registry)
    else:
        registry = None
        context = nullcontext()
    with context:
        code = _dispatch(args) or 0
    if registry is not None:
        from repro.utils.fileio import atomic_write_text

        # tmp-file + os.replace: an interrupt mid-write can never leave
        # a truncated, unparseable snapshot behind.
        atomic_write_text(args.metrics_out, registry.snapshot().to_json())
        print(f"metrics snapshot written to {args.metrics_out}")
    return code


def _dispatch(args: argparse.Namespace) -> Optional[int]:
    """Execute the selected sub-command; may return an exit code."""
    if args.command == "table1":
        _cmd_table1(args)
    elif args.command == "figure2":
        rows = figure2_sweep(runs=args.runs, seed=args.seed)
        print(format_series_table(
            rows, columns=["m", "p_dndp", "p_mndp", "p_jrsnd"],
            title="Figure 2(a)",
        ))
        print()
        print(format_series_table(
            rows, columns=["m", "t_dndp", "t_mndp", "t_jrsnd"],
            title="Figure 2(b)",
        ))
        if args.chart:
            from repro.experiments.charts import ascii_chart

            print()
            print(ascii_chart(
                rows, "m", ["p_dndp", "p_mndp", "p_jrsnd"],
                title="Figure 2(a): probability vs m",
            ))
            print()
            print(ascii_chart(
                rows, "m", ["t_dndp", "t_mndp"],
                title="Figure 2(b): latency vs m (s)",
            ))
    elif args.command == "figure3a":
        print(format_series_table(
            figure3a_sweep(runs=args.runs, seed=args.seed),
            columns=["l", "p_dndp", "p_mndp", "p_jrsnd"],
            title="Figure 3(a)",
        ))
    elif args.command == "figure3b":
        print(format_series_table(
            figure3b_sweep(runs=args.runs, seed=args.seed),
            columns=["n", "p_dndp", "p_mndp", "p_jrsnd"],
            title="Figure 3(b)",
        ))
    elif args.command == "figure4":
        print(format_series_table(
            figure4_sweep(
                share_count=args.share_count, runs=args.runs,
                seed=args.seed,
            ),
            columns=["q", "p_dndp", "p_mndp", "p_jrsnd"],
            title=f"Figure 4 at l = {args.share_count}",
        ))
    elif args.command == "figure5":
        rows = figure5_sweep(
            q=args.q, runs=args.runs, seed=args.seed,
            link_model=args.link_model,
        )
        print(format_series_table(
            rows, columns=["nu", "p_dndp", "p_mndp", "p_jrsnd", "t_mndp"],
            title=f"Figure 5 (q = {args.q}, {args.link_model} links)",
        ))
        if args.chart:
            from repro.experiments.charts import ascii_chart

            print()
            print(ascii_chart(
                rows, "nu", ["p_dndp", "p_mndp", "p_jrsnd"],
                title="Figure 5(a): probability vs nu",
            ))
    elif args.command == "theory":
        _cmd_theory(args)
    elif args.command == "dsss":
        _cmd_dsss(args)
    elif args.command == "chaos":
        return _cmd_chaos(args)
    elif args.command == "campaign":
        return _cmd_campaign(args)
    elif args.command == "validate":
        from repro.experiments.validation import (
            validate_theorem1_grid,
            worst_deviation,
        )

        points = validate_theorem1_grid(runs=args.runs, seed=args.seed)
        rows = [
            {
                "q": float(p_.q),
                "l": float(p_.share_count),
                "strategy": 1.0 if p_.strategy == "reactive" else 2.0,
                "simulated": p_.simulated,
                "predicted": p_.predicted,
                "deviation": p_.deviation,
            }
            for p_ in points
        ]
        print(format_series_table(
            rows,
            title="Theorem 1 validation grid "
                  "(strategy 1 = reactive vs P^-, 2 = random vs P^+)",
        ))
        gap, worst = worst_deviation(points)
        print(f"\nworst deviation: {gap:.4f}"
              + (f" at q={worst.q} l={worst.share_count} "
                 f"{worst.strategy}" if worst else ""))


if __name__ == "__main__":
    sys.exit(main())

"""Spreading and de-spreading of bit sequences (Section III).

The sender converts each message bit to NRZ and multiplies it by the spread
code, producing ``len(bits) * N`` chips.  The receiver, once synchronized,
correlates each ``N``-chip block against the code and applies the threshold
``tau``: correlation above ``tau`` decodes to bit 1, below ``-tau`` to
bit 0, and anything in between is an *erasure* (the block was destroyed,
e.g. by a jammer using the correct code).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.dsss.spread_code import SpreadCode
from repro.errors import SpreadCodeError
from repro.utils.bitstring import nrz_from_bits

__all__ = ["spread", "despread"]


def spread(bits: np.ndarray, code: SpreadCode) -> np.ndarray:
    """Spread a 0/1 bit array with ``code``.

    Returns an ``int8`` chip array of length ``len(bits) * code.length``;
    each message bit contributes one NRZ-scaled copy of the code.

    >>> import numpy as np
    >>> code = SpreadCode([+1, -1, -1, +1])
    >>> spread(np.array([1, 0]), code).tolist()
    [1, -1, -1, 1, -1, 1, 1, -1]
    """
    nrz = nrz_from_bits(np.asarray(bits, dtype=np.int8))
    if nrz.size == 0:
        return np.zeros(0, dtype=np.int8)
    # Outer product: one row of +/-code per message bit, flattened.
    chips = np.outer(nrz, code.chips).astype(np.int8)
    return chips.reshape(-1)


def despread(
    chips: np.ndarray, code: SpreadCode, tau: float
) -> List[Optional[int]]:
    """De-spread a synchronized chip sequence with ``code``.

    ``chips`` may be a float array (a superposed channel signal) whose
    length is a multiple of ``code.length``.  Returns one entry per message
    bit: ``1``, ``0``, or ``None`` for an erasure where the correlation
    magnitude fell below ``tau``.
    """
    chips = np.asarray(chips, dtype=np.float64)
    n = code.length
    if chips.size % n != 0:
        raise SpreadCodeError(
            f"chip count {chips.size} is not a multiple of N={n}"
        )
    if not 0 < tau <= 1:
        # (0, 1]: the bit decisions use >= tau / <= -tau, and an exact
        # noiseless block correlates to exactly +/-1.0 — tau = 1.0 means
        # "perfect blocks only", same boundary the synchronizer accepts.
        raise SpreadCodeError(f"tau must be in (0, 1], got {tau}")
    blocks = chips.reshape(-1, n)
    correlations = blocks @ code.chips.astype(np.float64) / n
    # Vectorized thresholding: decide all blocks at once, then swap the
    # erasure sentinel in.  object dtype keeps true ints/None in the
    # returned list (the List[Optional[int]] contract).
    decisions = np.where(
        correlations >= tau, 1, np.where(correlations <= -tau, 0, -1)
    )
    bits: List[Optional[int]] = decisions.tolist()
    if (decisions < 0).any():
        bits = [None if b < 0 else b for b in bits]
    return bits

"""Chip-level Direct Sequence Spread Spectrum (DSSS) substrate.

Implements Section III of the paper: pseudorandom spread codes, NRZ
spreading, correlation-threshold de-spreading, a superposition channel that
mixes concurrent (possibly jamming) transmissions, and the sliding-window
synchronizer that receivers use to locate a message of unknown start
position inside a chip buffer.
"""

from repro.dsss.channel import ChannelTransmission, ChipChannel
from repro.dsss.correlator import (
    code_matrix,
    correlate,
    correlate_many,
    decide_bit,
)
from repro.dsss.engine import (
    CORRELATION_BACKENDS,
    BatchedCorrelationEngine,
    CorrelationEngine,
    NaiveCorrelationEngine,
    make_engine,
)
from repro.dsss.frame import Frame, FrameCodec, MessageType
from repro.dsss.modulation import BPSKModulator
from repro.dsss.phy import (
    PHY_BACKENDS,
    ChiplessModel,
    ChiplessPairPHY,
    ChipPairPHY,
    PairPHY,
    make_pair_phy,
    message_success_probability,
)
from repro.dsss.receiver import (
    BufferSchedule,
    ScheduleWindow,
    required_hello_rounds,
)
from repro.dsss.spread_code import CodePool, SpreadCode
from repro.dsss.spreader import despread, spread
from repro.dsss.synchronizer import SlidingWindowSynchronizer, SyncResult

__all__ = [
    "SpreadCode",
    "CodePool",
    "spread",
    "despread",
    "correlate",
    "correlate_many",
    "code_matrix",
    "decide_bit",
    "CorrelationEngine",
    "NaiveCorrelationEngine",
    "BatchedCorrelationEngine",
    "CORRELATION_BACKENDS",
    "make_engine",
    "ChipChannel",
    "ChannelTransmission",
    "SlidingWindowSynchronizer",
    "SyncResult",
    "BufferSchedule",
    "ScheduleWindow",
    "required_hello_rounds",
    "PHY_BACKENDS",
    "PairPHY",
    "ChipPairPHY",
    "ChiplessPairPHY",
    "ChiplessModel",
    "make_pair_phy",
    "message_success_probability",
    "BPSKModulator",
    "Frame",
    "FrameCodec",
    "MessageType",
]

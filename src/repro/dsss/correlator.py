"""Correlation primitives used by the synchronizer and receivers.

The paper defines the correlation between two NRZ sequences
``(u_1..u_N)`` and ``(v_1..v_N)`` as ``(1/N) * sum(u_i * v_i)`` and decodes
a bit when the magnitude exceeds a threshold ``tau`` (0.15 at N = 512,
following Popper et al.).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.dsss.spread_code import SpreadCode
from repro.errors import SpreadCodeError

__all__ = ["correlate", "correlate_many", "code_matrix", "decide_bit"]


def correlate(window: np.ndarray, code: SpreadCode) -> float:
    """Normalized correlation of one N-chip window against one code."""
    return code.correlation(window)


def code_matrix(codes: Sequence[SpreadCode]) -> np.ndarray:
    """Stack several codes into one ``(m x N)`` float64 chip matrix.

    All codes must share the same chip length.  The batched correlation
    engines build this once per synchronizer; :func:`correlate_many`
    rebuilds it per call (the naive reference behaviour).
    """
    if not codes:
        raise SpreadCodeError("cannot stack an empty code set")
    n = codes[0].length
    if any(code.length != n for code in codes):
        raise SpreadCodeError("codes must all share one chip length")
    return np.stack([code.chips for code in codes]).astype(np.float64)


def correlate_many(
    buffer: np.ndarray, codes: Sequence[SpreadCode], position: int
) -> np.ndarray:
    """Correlate the window starting at ``position`` against several codes.

    Returns an array of one correlation per code.  All codes must share the
    same length, and the window must fit inside ``buffer``.
    """
    if not codes:
        return np.zeros(0, dtype=np.float64)
    matrix = code_matrix(codes)
    n = matrix.shape[1]
    buffer = np.asarray(buffer, dtype=np.float64)
    if position < 0 or position + n > buffer.size:
        raise SpreadCodeError(
            f"window [{position}, {position + n}) out of buffer "
            f"of {buffer.size} chips"
        )
    window = buffer[position : position + n]
    return matrix @ window / n


def decide_bit(correlation: float, tau: float) -> Optional[int]:
    """Threshold decision: 1 above ``tau``, 0 below ``-tau``, else erasure."""
    if not 0 < tau < 1:
        raise SpreadCodeError(f"tau must be in (0, 1), got {tau}")
    if correlation >= tau:
        return 1
    if correlation <= -tau:
        return 0
    return None

"""A chip-level superposition channel.

Concurrent DSSS transmissions — legitimate and jamming alike — add up on
the air.  :class:`ChipChannel` places each transmission's chip sequence at
its chip offset, sums all of them into one float signal, and optionally
adds white Gaussian noise.  A receiver then sees a single buffer in which
transmissions spread with *its* codes stand out under correlation while
others look like noise (the paper's assumption that differently-coded
concurrent transmissions interfere negligibly at N = 512, which the tests
verify empirically).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.dsss.spread_code import SpreadCode
from repro.dsss.spreader import spread
from repro.errors import SpreadCodeError
from repro.utils.artifact_cache import shared_cache

__all__ = ["ChannelTransmission", "ChipChannel"]


@dataclass(frozen=True)
class ChannelTransmission:
    """One transmission placed on the channel.

    Attributes
    ----------
    chips:
        The transmitted chip sequence (already spread).
    offset:
        Chip index at which the transmission begins.
    amplitude:
        Relative received power; 1.0 for an in-range legitimate sender.
    label:
        Free-form tag for tracing (e.g. ``"hello:A"`` or ``"jam"``).
    """

    chips: np.ndarray
    offset: int
    amplitude: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise SpreadCodeError(
                f"offset must be non-negative, got {self.offset}"
            )
        if self.amplitude <= 0:
            raise SpreadCodeError(
                f"amplitude must be positive, got {self.amplitude}"
            )

    @property
    def end(self) -> int:
        """One past the last chip index occupied by this transmission."""
        return self.offset + int(np.asarray(self.chips).size)


class ChipChannel:
    """Accumulates transmissions and renders the superposed signal.

    >>> import numpy as np
    >>> from repro.utils.rng import derive_rng
    >>> rng = derive_rng(1, "doc")
    >>> code = SpreadCode.random(64, rng)
    >>> ch = ChipChannel(noise_std=0.0)
    >>> ch.add_message(np.array([1, 0, 1]), code, offset=10)
    >>> signal = ch.render()
    >>> len(signal) >= 10 + 3 * 64
    True
    """

    def __init__(self, noise_std: float = 0.0) -> None:
        if noise_std < 0:
            raise SpreadCodeError(
                f"noise_std must be non-negative, got {noise_std}"
            )
        self._noise_std = float(noise_std)
        self._transmissions: List[ChannelTransmission] = []

    @property
    def transmissions(self) -> List[ChannelTransmission]:
        """The transmissions placed so far (read-only view)."""
        return list(self._transmissions)

    def add_transmission(self, transmission: ChannelTransmission) -> None:
        """Place a raw chip sequence on the channel.

        The chip array is converted to float64 *once* here; every
        subsequent :meth:`render` reuses it instead of re-converting the
        caller's dtype per render.
        """
        chips = transmission.chips
        if not (
            isinstance(chips, np.ndarray) and chips.dtype == np.float64
        ):
            transmission = replace(
                transmission,
                chips=np.asarray(chips, dtype=np.float64),
            )
        self._transmissions.append(transmission)

    def add_message(
        self,
        bits: np.ndarray,
        code: SpreadCode,
        offset: int,
        amplitude: float = 1.0,
        label: str = "",
    ) -> None:
        """Spread ``bits`` with ``code`` and place the result at ``offset``.

        The spread waveform depends only on (code chips, payload bits),
        so it is memoized in the process-local artifact cache — a HELLO
        repeated every round costs one spread total.  Cached waveforms
        are read-only float64 arrays shared between transmissions.
        """
        bits_arr = np.asarray(bits, dtype=np.int8)
        chips = shared_cache().get_or_build(
            "waveform",
            (code.chips.tobytes(), bits_arr.tobytes()),
            lambda: self._spread_waveform(bits_arr, code),
        )
        self.add_transmission(
            ChannelTransmission(chips, offset, amplitude, label)
        )

    @staticmethod
    def _spread_waveform(
        bits: np.ndarray, code: SpreadCode
    ) -> np.ndarray:
        """Spread and pre-convert to the render dtype, frozen read-only."""
        chips = spread(bits, code).astype(np.float64)
        chips.setflags(write=False)
        return chips

    def add_jamming(
        self,
        code: SpreadCode,
        offset: int,
        n_bits: int,
        rng: np.random.Generator,
        amplitude: float = 1.0,
        label: str = "jam",
    ) -> None:
        """Place a jamming burst spread with ``code``.

        The jammer transmits random data spread with the (compromised) code
        and chip-synchronized with the target, which is the paper's jamming
        model: random bits under the correct code cancel the correlation of
        the legitimate bits they overlap.
        """
        if n_bits <= 0:
            raise SpreadCodeError(f"n_bits must be positive, got {n_bits}")
        bits = rng.integers(0, 2, size=n_bits, dtype=np.int8)
        self.add_message(bits, code, offset, amplitude, label)

    def render(
        self,
        length: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Sum all transmissions (plus noise) into one float signal.

        ``length`` defaults to the smallest buffer containing every
        transmission.  ``rng`` is required when ``noise_std > 0``.
        """
        natural = max((t.end for t in self._transmissions), default=0)
        total = natural if length is None else int(length)
        if total < natural:
            raise SpreadCodeError(
                f"length {total} clips a transmission ending at {natural}"
            )
        if self._noise_std > 0 and rng is None:
            # Checked before any work: a noisy channel without an rng is
            # a caller error and must fail with a typed, actionable
            # message instead of an AttributeError deep in the noise
            # draw (None.normal) after the superposition was built.
            raise SpreadCodeError(
                "an rng is required to render a noisy channel "
                f"(noise_std={self._noise_std})"
            )
        signal = np.zeros(total, dtype=np.float64)
        for t in self._transmissions:
            chips = t.chips  # already float64 (see add_transmission)
            signal[t.offset : t.offset + chips.size] += t.amplitude * chips
        if self._noise_std > 0:
            signal += rng.normal(0.0, self._noise_std, size=total)
        return signal

    def mix(
        self,
        length: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Render the superposed signal and reset the channel.

        The one-shot form the per-message PHY paths use: place the
        message and any jam overlay, ``mix`` once, and the channel is
        ready for the next message without re-allocating it.  Like
        :meth:`render`, an ``rng`` is required whenever ``noise_std > 0``
        and its absence raises a typed :class:`SpreadCodeError` up front
        (never a bare ``AttributeError`` from the noise draw).
        """
        signal = self.render(length=length, rng=rng)
        self._transmissions.clear()
        return signal

    def clear(self) -> None:
        """Remove all transmissions."""
        self._transmissions.clear()

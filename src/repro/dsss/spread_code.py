"""Spread codes and spread-code pools.

A spread code (Section III) is a pseudorandom NRZ sequence of length ``N``
(the paper uses ``N = 512``) whose chips take values in {-1, +1}.  The
MANET authority generates a pool of ``s`` such codes (Section V-A); nodes
receive subsets of the pool through the pre-distribution scheme in
:mod:`repro.predistribution`.

Codes are value objects: equality and hashing are by content, and the
``code_id`` identifies the code's slot in the authority's pool (or labels a
session code derived at runtime).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import SpreadCodeError
from repro.utils.bitstring import nrz_from_bits
from repro.utils.rng import derive_rng

__all__ = ["SpreadCode", "CodePool"]


class SpreadCode:
    """An ``N``-chip pseudorandom NRZ spreading sequence.

    Parameters
    ----------
    chips:
        Sequence of -1/+1 chip values.
    code_id:
        Identifier of the code.  Pool codes use their pool index; session
        codes derived during neighbor discovery use a string label.
    """

    __slots__ = ("_chips", "_code_id", "_hash")

    def __init__(self, chips: Sequence[int], code_id: object = None) -> None:
        # Always copy: np.asarray can return the caller's own array, and
        # freezing that would make the caller's buffer read-only as a
        # side effect.
        arr = np.array(chips, dtype=np.int8, copy=True)
        if arr.ndim != 1 or arr.size == 0:
            raise SpreadCodeError("chips must be a non-empty 1-D sequence")
        if not np.isin(arr, (-1, 1)).all():
            raise SpreadCodeError("chips must contain only -1 and +1")
        arr.setflags(write=False)
        self._chips = arr
        self._code_id = code_id
        self._hash = hash(arr.tobytes())

    @property
    def chips(self) -> np.ndarray:
        """The read-only chip array."""
        return self._chips

    @property
    def code_id(self) -> object:
        """Pool index or session label of this code."""
        return self._code_id

    @property
    def length(self) -> int:
        """Number of chips, the paper's ``N``."""
        return int(self._chips.size)

    @classmethod
    def random(
        cls, length: int, rng: np.random.Generator, code_id: object = None
    ) -> "SpreadCode":
        """Draw a uniform random code of ``length`` chips."""
        if length <= 0:
            raise SpreadCodeError(f"length must be positive, got {length}")
        bits = rng.integers(0, 2, size=length, dtype=np.int8)
        return cls(nrz_from_bits(bits), code_id=code_id)

    @classmethod
    def from_bits(
        cls, bits: Sequence[int], code_id: object = None
    ) -> "SpreadCode":
        """Build a code from a 0/1 bit sequence (bit 0 -> chip -1)."""
        return cls(nrz_from_bits(np.asarray(bits, dtype=np.int8)), code_id)

    def correlation(self, window: np.ndarray) -> float:
        """Normalized correlation of a chip window against this code.

        Implements the paper's definition: ``(1/N) * sum(u_i * v_i)``.
        ``window`` may be a float array (superposed signal) and must have
        exactly ``N`` entries.
        """
        window = np.asarray(window, dtype=np.float64)
        if window.size != self.length:
            raise SpreadCodeError(
                f"window has {window.size} chips, code has {self.length}"
            )
        return float(window @ self._chips) / self.length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpreadCode):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.length == other.length
            and bool((self._chips == other._chips).all())
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"SpreadCode(id={self._code_id!r}, N={self.length})"


class CodePool:
    """The authority's secret pool of ``s`` spread codes.

    The pool is generated deterministically from a seed so experiments are
    reproducible.  Only the authority (and this object) holds all codes;
    nodes see only the subsets handed out by the pre-distribution scheme.
    """

    def __init__(self, codes: Sequence[SpreadCode]) -> None:
        if not codes:
            raise SpreadCodeError("a code pool must contain at least one code")
        lengths = {code.length for code in codes}
        if len(lengths) != 1:
            raise SpreadCodeError(
                f"all codes in a pool must share one length, got {lengths}"
            )
        ids = [code.code_id for code in codes]
        if len(set(ids)) != len(ids):
            raise SpreadCodeError("code ids in a pool must be unique")
        self._codes: List[SpreadCode] = list(codes)
        # Content-keyed lookup table (codes hash by chip content), built
        # once so index_of is O(1) instead of a linear scan over the
        # pool.  setdefault keeps the first slot on duplicate content,
        # matching the old first-match scan.
        self._slots: Dict[SpreadCode, int] = {}
        for i, code in enumerate(self._codes):
            self._slots.setdefault(code, i)

    @classmethod
    def generate(
        cls, size: int, code_length: int, seed: int
    ) -> "CodePool":
        """Generate ``size`` random codes of ``code_length`` chips.

        Distinctness is enforced; with ``code_length >= 64`` collisions are
        astronomically unlikely, but a duplicated draw is redrawn anyway.
        """
        if size <= 0:
            raise SpreadCodeError(f"pool size must be positive, got {size}")
        rng = derive_rng(seed, "code-pool")
        codes: List[SpreadCode] = []
        seen = set()
        while len(codes) < size:
            code = SpreadCode.random(code_length, rng, code_id=len(codes))
            if code in seen:
                continue
            seen.add(code)
            codes.append(code)
        return cls(codes)

    @property
    def size(self) -> int:
        """Number of codes in the pool, the paper's ``s``."""
        return len(self._codes)

    @property
    def code_length(self) -> int:
        """Chip length shared by every code in the pool."""
        return self._codes[0].length

    def code(self, index: int) -> SpreadCode:
        """Return the code at pool slot ``index``."""
        if not 0 <= index < self.size:
            raise SpreadCodeError(
                f"code index {index} out of range [0, {self.size})"
            )
        return self._codes[index]

    def subset(self, indices: Sequence[int]) -> List[SpreadCode]:
        """Return the codes at the given pool slots."""
        return [self.code(i) for i in indices]

    def index_of(self, code: SpreadCode) -> Optional[int]:
        """Return the pool slot holding ``code``, or ``None``."""
        return self._slots.get(code)

    def __iter__(self) -> Iterator[SpreadCode]:
        return iter(self._codes)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"CodePool(s={self.size}, N={self.code_length})"

"""Message framing for JR-SND protocol messages.

Every over-the-air message starts with an ``l_t``-bit message-type
identifier followed by a payload (e.g. the sender's ``l_id``-bit ID for a
HELLO), and the whole frame is ECC-encoded with expansion factor
``1 + mu`` before spreading (Section V-B).  :class:`FrameCodec` performs
that framing and the inverse, turning the de-spread bit decisions (with
erasures) back into a typed frame.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.ecc.codec import ExpansionCodec
from repro.errors import ConfigurationError, DecodeError
from repro.utils.bitstring import bits_from_int, bits_to_int

__all__ = ["MessageType", "Frame", "FrameCodec"]


class MessageType(enum.IntEnum):
    """The over-the-air message types of D-NDP and M-NDP."""

    HELLO = 1
    CONFIRM = 2
    AUTH_REQUEST = 3
    AUTH_RESPONSE = 4
    MNDP_REQUEST = 5
    MNDP_RESPONSE = 6


@dataclass(frozen=True)
class Frame:
    """A typed protocol frame: message type plus raw payload bits."""

    message_type: MessageType
    payload: np.ndarray

    def __post_init__(self) -> None:
        payload = np.asarray(self.payload, dtype=np.int8)
        if payload.size and not np.isin(payload, (0, 1)).all():
            raise ConfigurationError("payload must contain only 0 and 1")
        object.__setattr__(self, "payload", payload)

    @property
    def plain_bits(self) -> int:
        """Frame length before ECC (type field + payload)."""
        return FrameCodec.TYPE_BITS + int(self.payload.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        return self.message_type == other.message_type and bool(
            np.array_equal(self.payload, other.payload)
        )


class FrameCodec:
    """Encodes/decodes typed frames with the rate-``mu`` ECC.

    Parameters
    ----------
    mu:
        ECC expansion parameter; coded frames are about ``(1 + mu)``
        times the plain frame length.
    type_bits:
        Width of the message-type field (the paper's ``l_t``, default 5).
    ecc_backend:
        Reed-Solomon arithmetic backend (``"vectorized"`` or
        ``"naive"``), forwarded to the underlying
        :class:`ExpansionCodec`.
    """

    TYPE_BITS = 5

    def __init__(
        self,
        mu: float,
        type_bits: int = TYPE_BITS,
        ecc_backend: str = "vectorized",
    ) -> None:
        if type_bits < 3:
            raise ConfigurationError(
                f"type_bits must be >= 3 to hold all message types, "
                f"got {type_bits}"
            )
        self._type_bits = int(type_bits)
        self._codec = ExpansionCodec(mu, backend=ecc_backend)

    @property
    def mu(self) -> float:
        """ECC expansion parameter."""
        return self._codec.mu

    @property
    def type_bits(self) -> int:
        """Width of the message-type field."""
        return self._type_bits

    @property
    def ecc_backend(self) -> str:
        """The Reed-Solomon backend of the underlying codec."""
        return self._codec.backend

    def coded_bits(self, payload_bits: int) -> int:
        """Coded frame length for a payload of ``payload_bits``."""
        return self._codec.encoded_bits(self._type_bits + payload_bits)

    def encode(self, frame: Frame) -> np.ndarray:
        """Frame + ECC-encode; returns the coded bit array to spread."""
        header = bits_from_int(int(frame.message_type), self._type_bits)
        plain = np.concatenate([header, frame.payload]).astype(np.int8)
        return self._codec.encode(plain)

    def decode(
        self, decisions: Sequence[Optional[int]], payload_bits: int
    ) -> Frame:
        """Decode de-spread bit decisions back into a frame.

        ``payload_bits`` is the expected payload length (receivers know
        the frame layout of each protocol step).  Raises
        :class:`repro.errors.DecodeError` on unrecoverable corruption or
        an unknown message type.
        """
        plain_bits = self._type_bits + payload_bits
        plain = self._codec.decode(decisions, plain_bits)
        type_value = bits_to_int(plain[: self._type_bits])
        try:
            message_type = MessageType(type_value)
        except ValueError as exc:
            raise DecodeError(
                f"decoded unknown message type {type_value}"
            ) from exc
        return Frame(message_type, plain[self._type_bits :])

"""BPSK modulation of chip sequences (the Section III D/A + PSK stage).

Completes the physical pipeline below the chip level: the transmitter
maps each chip to ``samples_per_chip`` baseband samples of a BPSK
carrier, and the receiver applies a matched filter (integrate-and-dump
over each chip period after mixing with the carrier) to recover soft
chip values.  The channel in :mod:`repro.dsss.channel` operates on chip
sequences; this module shows (and the tests verify) that the chip
abstraction is exactly what BPSK + matched filtering delivers, including
under additive white Gaussian noise at realistic SNRs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["BPSKModulator"]


class BPSKModulator:
    """Binary phase-shift keying over a sampled carrier.

    Parameters
    ----------
    samples_per_chip:
        Oversampling factor (samples per chip period).
    carrier_cycles_per_chip:
        Carrier cycles inside one chip period; the product with
        ``samples_per_chip`` must respect Nyquist
        (``samples_per_chip > 2 * carrier_cycles_per_chip``).
    """

    def __init__(
        self,
        samples_per_chip: int = 8,
        carrier_cycles_per_chip: int = 2,
    ) -> None:
        check_positive("samples_per_chip", samples_per_chip)
        check_positive("carrier_cycles_per_chip", carrier_cycles_per_chip)
        if samples_per_chip <= 2 * carrier_cycles_per_chip:
            raise ConfigurationError(
                f"samples_per_chip={samples_per_chip} violates Nyquist "
                f"for {carrier_cycles_per_chip} carrier cycles per chip"
            )
        self._sps = int(samples_per_chip)
        self._cycles = int(carrier_cycles_per_chip)
        phase = (
            2.0
            * np.pi
            * self._cycles
            * np.arange(self._sps)
            / self._sps
        )
        self._carrier = np.cos(phase)
        self._carrier_energy = float(self._carrier @ self._carrier)

    @property
    def samples_per_chip(self) -> int:
        """Oversampling factor."""
        return self._sps

    def modulate(self, chips: np.ndarray) -> np.ndarray:
        """Map NRZ chips (+/-1) to a sampled BPSK waveform."""
        chips = np.asarray(chips, dtype=np.float64)
        if chips.ndim != 1 or chips.size == 0:
            raise ConfigurationError("chips must be a non-empty 1-D array")
        # Each chip scales one carrier burst; phase flips encode -1.
        return (chips[:, None] * self._carrier[None, :]).reshape(-1)

    def demodulate(self, waveform: np.ndarray) -> np.ndarray:
        """Matched-filter the waveform back to soft chip values.

        Output values are centered on +/-1 for clean input; downstream
        correlation thresholds (``tau``) operate on them unchanged.
        """
        waveform = np.asarray(waveform, dtype=np.float64)
        if waveform.size % self._sps != 0:
            raise ConfigurationError(
                f"waveform length {waveform.size} is not a multiple of "
                f"samples_per_chip={self._sps}"
            )
        blocks = waveform.reshape(-1, self._sps)
        return blocks @ self._carrier / self._carrier_energy

    def add_awgn(
        self,
        waveform: np.ndarray,
        snr_db: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Add white Gaussian noise at the given chip-level SNR."""
        waveform = np.asarray(waveform, dtype=np.float64)
        signal_power = float(np.mean(self._carrier**2))
        check_non_negative("signal power", signal_power)
        noise_power = signal_power / (10.0 ** (snr_db / 10.0))
        return waveform + rng.normal(
            0.0, np.sqrt(noise_power), size=waveform.size
        )

    def transmit_chain(
        self,
        chips: np.ndarray,
        snr_db: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Modulate, pass through AWGN, matched-filter: soft chips out."""
        return self.demodulate(
            self.add_awgn(self.modulate(chips), snr_db, rng)
        )

"""Pair-level PHY backends for the D-NDP Monte Carlo (the tentpole knob).

The default experiment model (``phy_backend="message"``) decides every
sub-session with the paper's per-*message* Bernoulli outcomes
(:class:`repro.adversary.jammer.JammingModel`).  This module adds the two
finer-grained backends below it:

- ``"chip"`` — the reference: every message is actually spread, placed on
  a :class:`~repro.dsss.channel.ChipChannel` at a random chip offset,
  overlaid with the jammer's same-code burst, rendered (optionally with
  AWGN), and recovered with the real
  :class:`~repro.dsss.synchronizer.SlidingWindowSynchronizer`;

- ``"chipless"`` — the analytic backend: the *same* outcome is computed
  in closed form from correlation statistics, without materialising a
  single chip.  With the legitimate NRZ bit ``b``, a same-code jam bit
  ``J`` at relative amplitude ``a``, and AWGN of per-chip sigma
  ``noise_std``, the normalized block correlation is exactly

      corr = b + a * J + z,   z ~ N(0, noise_std / sqrt(N)),

  independent per bit — so acquisition (the first ``confirm_blocks``
  correlations all crossing ``tau``) and the decode budget (Reed-Solomon
  style ``2 * errors + erasures <= coded - plain``) follow from per-bit
  draws, no waveforms needed.

Both backends consume the *same* rng stream (offset draw, payload bits,
jam-targeting coin, jam bits — in that order, per message); noise draws
are the only divergence point, so at ``noise_std = 0`` the two backends
produce bit-for-bit identical outcomes from a shared generator, exactly
the ``compute_backend`` stream contract.  With noise they are
distribution-identical, which ``tests/experiments`` checks statistically.

:class:`ChiplessModel` is the batched, draw-free form of the chipless
backend: per-message success *probabilities* from the same per-bit
statistics, composed into one success probability per (pair, code-mix).
The field-level sweep in :mod:`repro.experiments.runner` uses it to
collapse the whole per-pair D-NDP loop into a handful of vectorised ops.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

from repro.adversary.jammer import JammerStrategy, JammingModel
from repro.dsss.channel import ChipChannel
from repro.dsss.spread_code import CodePool
from repro.dsss.synchronizer import SlidingWindowSynchronizer
from repro.errors import ConfigurationError
from repro.obs import current as _metrics
from repro.obs import names as _names

__all__ = [
    "PHY_BACKENDS",
    "PairPHY",
    "ChipPairPHY",
    "ChiplessPairPHY",
    "ChiplessModel",
    "make_pair_phy",
    "message_success_probability",
]

#: The experiment-level PHY knob values.  ``"message"`` keeps the
#: original per-message Bernoulli model (no :class:`PairPHY` involved);
#: the other two are implemented here.
PHY_BACKENDS = ("message", "chip", "chipless")

#: Blocks that must all cross ``tau`` for an acquisition lock — the
#: synchronizer's default, shared so chip and chipless agree.
CONFIRM_BLOCKS = 3

#: Message kinds of one D-NDP sub-session, in protocol order.
_HELLO = "hello"
_CONFIRM = "confirm"
_AUTH = "auth"
_BURST_KINDS = (_CONFIRM, _AUTH, _AUTH)


def _identify_fraction(mu: float) -> float:
    """Fraction of a message a reactive jammer spends identifying the
    code before jamming the tail — half the ``1 / (1 + mu)`` deadline,
    same capable-jammer model as
    :class:`repro.adversary.jammer.MediumJammer`."""
    return 0.5 / (1.0 + mu)


class PairPHY:
    """Shared jam geometry + rng stream contract of the two backends.

    Parameters
    ----------
    jamming:
        The adversary model (strategy, compromised codes, budget).
    code_length:
        Chips per code (the paper's ``N``).
    tau:
        Correlation decision threshold.
    hello_shape, auth_shape:
        ``(coded_bits, plain_bits)`` of the HELLO/CONFIRM frames and of
        the authentication frames.
    noise_std:
        Per-chip AWGN sigma on the channel (0 = noiseless).
    jam_amplitude:
        Jam power relative to the legitimate signal.  2.0 (default
        elsewhere) makes a disagreeing jam bit *flip* the block; 1.0
        cancels it into an erasure.
    """

    backend = "abstract"

    def __init__(
        self,
        jamming: JammingModel,
        code_length: int,
        tau: float,
        hello_shape: Tuple[int, int],
        auth_shape: Tuple[int, int],
        noise_std: float = 0.0,
        jam_amplitude: float = 2.0,
    ) -> None:
        if code_length <= 0:
            raise ConfigurationError(
                f"code_length must be positive, got {code_length}"
            )
        if not 0 < tau <= 1:
            raise ConfigurationError(f"tau must be in (0, 1], got {tau}")
        if noise_std < 0:
            raise ConfigurationError(
                f"noise_std must be non-negative, got {noise_std}"
            )
        if jam_amplitude <= 0:
            raise ConfigurationError(
                f"jam_amplitude must be positive, got {jam_amplitude}"
            )
        for label, (coded, plain) in (
            ("hello", hello_shape), ("auth", auth_shape)
        ):
            if not 0 < plain <= coded:
                raise ConfigurationError(
                    f"{label} shape needs 0 < plain <= coded bits, "
                    f"got {(coded, plain)}"
                )
            if coded < CONFIRM_BLOCKS:
                raise ConfigurationError(
                    f"{label} message of {coded} bits is shorter than "
                    f"the {CONFIRM_BLOCKS} acquisition blocks"
                )
        self._jamming = jamming
        self._n = int(code_length)
        self._tau = float(tau)
        self._shapes = {
            _HELLO: (int(hello_shape[0]), int(hello_shape[1])),
            _CONFIRM: (int(hello_shape[0]), int(hello_shape[1])),
            _AUTH: (int(auth_shape[0]), int(auth_shape[1])),
        }
        self._noise_std = float(noise_std)
        self._amplitude = float(jam_amplitude)
        self._identify = _identify_fraction(jamming._mu)

    # -- the shared per-message protocol --------------------------------

    def message_received(
        self, kind: str, code_index: int, rng: np.random.Generator
    ) -> bool:
        """Sample whether one ``kind`` message under ``code_index``
        is acquired *and* decodes.

        Draw order (identical in both backends): chip offset, payload
        bits, the random jammer's targeting coin, jam bits — then any
        backend-specific noise.
        """
        coded, plain = self._shapes[kind]
        offset = int(rng.integers(0, self._n))
        bits = rng.integers(0, 2, size=coded, dtype=np.int8)
        jam_start, jam_len = self._jam_plan(kind, code_index, coded, rng)
        jam_bits = (
            rng.integers(0, 2, size=jam_len, dtype=np.int8)
            if jam_len else None
        )
        received = self._deliver(
            code_index, offset, bits, jam_start, jam_bits, plain, rng
        )
        registry = _metrics()
        if registry.enabled:
            registry.inc(_names.PHY_MESSAGES)
            if not received:
                registry.inc(_names.PHY_MESSAGES_LOST)
        return received

    def hello_received(
        self, code_index: int, rng: np.random.Generator
    ) -> bool:
        """The sub-session's HELLO leg."""
        return self.message_received(_HELLO, code_index, rng)

    def burst_received(
        self, code_index: int, rng: np.random.Generator
    ) -> bool:
        """The CONFIRM + two authentication messages, short-circuiting
        on the first loss (both backends exit at the same message for a
        shared noiseless stream, so the contract survives the early
        exit)."""
        for kind in _BURST_KINDS:
            if not self.message_received(kind, code_index, rng):
                return False
        return True

    def subsession_survives(
        self, code_index: int, rng: np.random.Generator
    ) -> bool:
        """One full sub-session: HELLO then the three-message burst."""
        registry = _metrics()
        if registry.enabled:
            registry.inc(_names.PHY_SUBSESSIONS)
        return self.hello_received(code_index, rng) and (
            self.burst_received(code_index, rng)
        )

    def _jam_plan(
        self,
        kind: str,
        code_index: int,
        coded_bits: int,
        rng: np.random.Generator,
    ) -> Tuple[int, int]:
        """``(jam_start, jam_len)`` in bits for this message.

        Mirrors :class:`~repro.adversary.jammer.JammingModel` /
        ``MediumJammer``: the reactive jammer hits the tail after its
        identification window, the random jammer covers the whole
        message iff its fresh per-message code picks include the target,
        and the intelligent strawman attack spares HELLOs.
        """
        jamming = self._jamming
        if not isinstance(code_index, (int, np.integer)):
            return coded_bits, 0  # session codes are unjammable
        if not jamming.knows(int(code_index)):
            return coded_bits, 0
        strategy = jamming.strategy
        if strategy is JammerStrategy.INTELLIGENT:
            if kind == _HELLO:
                return coded_bits, 0
            return 0, coded_bits
        if strategy is JammerStrategy.REACTIVE:
            start = int(math.floor(self._identify * coded_bits))
            return start, coded_bits - start
        # Random: fresh per-message budget, full coverage on a hit.
        c = jamming.n_compromised
        tries = min(jamming.codes_per_message, c)
        if rng.random() < tries / c:
            return 0, coded_bits
        return coded_bits, 0

    def _deliver(
        self,
        code_index: int,
        offset: int,
        bits: np.ndarray,
        jam_start: int,
        jam_bits: Optional[np.ndarray],
        plain_bits: int,
        rng: np.random.Generator,
    ) -> bool:
        raise NotImplementedError


class ChipPairPHY(PairPHY):
    """The chip-level reference backend: real waveforms end to end.

    Parameters beyond :class:`PairPHY`'s: the ``pool`` supplying actual
    :class:`~repro.dsss.spread_code.SpreadCode` chips per pool index,
    and the ``correlation_backend`` its synchronizers scan with.
    """

    backend = "chip"

    def __init__(
        self,
        pool: CodePool,
        *args: object,
        correlation_backend: str = "batched",
        **kwargs: object,
    ) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        if pool.code_length != self._n:
            raise ConfigurationError(
                f"pool codes are {pool.code_length} chips, PHY expects "
                f"{self._n}"
            )
        self._pool = pool
        self._correlation_backend = correlation_backend
        self._channel = ChipChannel(noise_std=self._noise_std)
        self._synchronizers: Dict[
            Tuple[int, int], SlidingWindowSynchronizer
        ] = {}

    def _synchronizer(
        self, code_index: int, message_bits: int
    ) -> SlidingWindowSynchronizer:
        key = (int(code_index), int(message_bits))
        sync = self._synchronizers.get(key)
        if sync is None:
            sync = SlidingWindowSynchronizer(
                [self._pool.code(int(code_index))],
                tau=self._tau,
                message_bits=message_bits,
                confirm_blocks=CONFIRM_BLOCKS,
                backend=self._correlation_backend,
            )
            self._synchronizers[key] = sync
        return sync

    def _deliver(
        self,
        code_index: int,
        offset: int,
        bits: np.ndarray,
        jam_start: int,
        jam_bits: Optional[np.ndarray],
        plain_bits: int,
        rng: np.random.Generator,
    ) -> bool:
        coded_bits = int(bits.size)
        code = self._pool.code(int(code_index))
        channel = self._channel
        channel.add_message(bits, code, offset, label="message")
        if jam_bits is not None and jam_bits.size:
            # Bit-aligned same-code jam, chip-synchronized with the
            # target (the paper's model): random data under the correct
            # code at relative amplitude ``a``.
            channel.add_message(
                jam_bits,
                code,
                offset + jam_start * self._n,
                amplitude=self._amplitude,
                label="jam",
            )
        signal = channel.mix(rng=rng if self._noise_std > 0 else None)
        sync = self._synchronizer(code_index, coded_bits)
        # False locks at pre-offset positions (noise or partial message
        # overlap crossing tau) despread bit salad; the real receiver
        # rejects it upstream and resumes one chip later
        # (scan_validated's recovery), so keep scanning until the true
        # offset locks or the buffer is exhausted.  The scan never
        # considers positions past ``offset`` — the buffer ends exactly
        # ``message_bits * N`` chips after it.
        position = 0
        result = None
        while True:
            candidate = sync.scan(signal, start=position)
            if candidate is None or candidate.position == offset:
                result = candidate
                break
            position = candidate.position + 1
        if result is None:
            registry = _metrics()
            if registry.enabled:
                registry.inc(_names.PHY_ACQUISITION_FAILURES)
            return False
        sent = bits.tolist()
        erasures = sum(1 for bit in result.bits if bit is None)
        errors = sum(
            1
            for decoded, expected in zip(result.bits, sent)
            if decoded is not None and decoded != expected
        )
        if 2 * errors + erasures > coded_bits - plain_bits:
            registry = _metrics()
            if registry.enabled:
                registry.inc(_names.PHY_DECODE_FAILURES)
            return False
        return True


class ChiplessPairPHY(PairPHY):
    """The analytic backend: per-bit correlation statistics, no chips."""

    backend = "chipless"

    def _deliver(
        self,
        code_index: int,
        offset: int,  # drawn for stream parity; the exhaustive scan
        bits: np.ndarray,  # makes the outcome offset-invariant
        jam_start: int,
        jam_bits: Optional[np.ndarray],
        plain_bits: int,
        rng: np.random.Generator,
    ) -> bool:
        coded_bits = int(bits.size)
        corr = (2.0 * bits - 1.0).astype(np.float64)
        if jam_bits is not None and jam_bits.size:
            corr[jam_start : jam_start + jam_bits.size] += (
                self._amplitude * (2.0 * jam_bits - 1.0)
            )
        if self._noise_std > 0:
            corr += rng.normal(
                0.0,
                self._noise_std / math.sqrt(self._n),
                size=coded_bits,
            )
        hits = np.abs(corr) >= self._tau
        if not bool(hits[:CONFIRM_BLOCKS].all()):
            registry = _metrics()
            if registry.enabled:
                registry.inc(_names.PHY_ACQUISITION_FAILURES)
            return False
        # Same decisions as despread(): >= tau -> 1, <= -tau -> 0,
        # otherwise an erasure.
        decisions = np.where(
            corr >= self._tau, 1, np.where(corr <= -self._tau, 0, -1)
        )
        erasures = int((decisions < 0).sum())
        errors = int(((decisions >= 0) & (decisions != bits)).sum())
        if 2 * errors + erasures > coded_bits - plain_bits:
            registry = _metrics()
            if registry.enabled:
                registry.inc(_names.PHY_DECODE_FAILURES)
            return False
        return True


def make_pair_phy(
    backend: str,
    config: object,
    jamming: JammingModel,
    pool: Optional[CodePool] = None,
) -> Optional[PairPHY]:
    """Build the pair PHY for an experiment configuration.

    ``config`` is a :class:`repro.core.config.JRSNDConfig` (duck-typed
    here to keep the dsss layer import-free of core).  Returns ``None``
    for ``"message"`` — the sampler then keeps its original per-message
    Bernoulli path untouched.
    """
    if backend not in PHY_BACKENDS:
        raise ConfigurationError(
            f"phy backend must be one of {PHY_BACKENDS}, got {backend!r}"
        )
    if backend == "message":
        return None
    kwargs = dict(
        code_length=config.code_length,
        tau=config.tau,
        hello_shape=(config.hello_coded_bits, config.hello_plain_bits),
        auth_shape=(config.auth_frame_bits, config.auth_plain_bits),
        noise_std=config.phy_noise_std,
        jam_amplitude=config.phy_jam_amplitude,
    )
    if backend == "chipless":
        return ChiplessPairPHY(jamming, **kwargs)
    if pool is None:
        raise ConfigurationError(
            "the chip PHY backend needs a CodePool supplying real codes"
        )
    return ChipPairPHY(
        pool,
        jamming,
        correlation_backend=config.correlation_backend,
        **kwargs,
    )


# -- closed-form probabilities (the batched sweep) ----------------------


def _phi(x: float) -> float:
    """Standard normal CDF via erf (scipy-free)."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def _bit_outcome(
    mean: float, sigma_bit: float, tau: float
) -> Tuple[float, float, float]:
    """``(p_correct, p_erasure, p_flip)`` for one bit whose correlation
    is ``N(mean, sigma_bit)`` under the ``>= tau`` decision rule, in the
    bit = 1 convention (symmetric for bit = 0)."""
    if sigma_bit <= 0.0:
        if mean >= tau:
            return 1.0, 0.0, 0.0
        if mean <= -tau:
            return 0.0, 0.0, 1.0
        return 0.0, 1.0, 0.0
    p_flip = _phi((-tau - mean) / sigma_bit)
    p_correct = 1.0 - _phi((tau - mean) / sigma_bit)
    return p_correct, max(1.0 - p_correct - p_flip, 0.0), p_flip


def _mix(
    a: Tuple[float, float, float], b: Tuple[float, float, float]
) -> Tuple[float, float, float]:
    return tuple((x + y) / 2.0 for x, y in zip(a, b))  # type: ignore


@lru_cache(maxsize=256)
def message_success_probability(
    coded_bits: int,
    plain_bits: int,
    tau: float,
    sigma_bit: float,
    jam_amplitude: float,
    jam_start: int,
    jam_len: int,
    confirm_blocks: int = CONFIRM_BLOCKS,
) -> float:
    """Closed-form probability that one message is acquired and decoded.

    Exactly the :class:`ChiplessPairPHY` per-bit model, integrated out:
    acquisition multiplies the no-erasure probabilities of the first
    ``confirm_blocks`` bits, and the decode budget ``2e + f <= n - k``
    is evaluated by convolving each bit's ``{0, 1, 2}``-weight
    distribution (correct / erasure / flip) — the first bits conditioned
    on having acquired.
    """
    clean = _bit_outcome(1.0, sigma_bit, tau)
    jammed = _mix(
        _bit_outcome(1.0 + jam_amplitude, sigma_bit, tau),
        _bit_outcome(1.0 - jam_amplitude, sigma_bit, tau),
    )

    def triple(index: int) -> Tuple[float, float, float]:
        if jam_start <= index < jam_start + jam_len:
            return jammed
        return clean

    p_acquire = 1.0
    for index in range(confirm_blocks):
        p_acquire *= 1.0 - triple(index)[1]
    if p_acquire <= 0.0:
        return 0.0

    poly = np.ones(1, dtype=np.float64)
    for index in range(coded_bits):
        p_ok, p_erase, p_flip = triple(index)
        if index < confirm_blocks:
            # Conditioned on acquisition: these bits are not erasures.
            keep = p_ok + p_flip
            p_ok, p_erase, p_flip = p_ok / keep, 0.0, p_flip / keep
        poly = np.convolve(poly, [p_ok, p_erase, p_flip])
    budget = coded_bits - plain_bits
    return p_acquire * float(poly[: budget + 1].sum())


class ChiplessModel:
    """Draw-free per-pair success probabilities of the chipless PHY.

    One instance per (config, jamming model); everything is reduced to
    two scalars — the sub-session success probability over a safe
    (non-compromised) shared code and over a compromised one — which
    :meth:`pair_success_probability` composes per pair via the paper's
    redundancy design (success iff *any* sub-session survives).
    """

    def __init__(self, config: object, jamming: JammingModel) -> None:
        self._jamming = jamming
        self._tau = float(config.tau)
        self._sigma_bit = (
            float(config.phy_noise_std) / math.sqrt(config.code_length)
        )
        self._amplitude = float(config.phy_jam_amplitude)
        self._shapes = {
            _HELLO: (config.hello_coded_bits, config.hello_plain_bits),
            _CONFIRM: (config.hello_coded_bits, config.hello_plain_bits),
            _AUTH: (config.auth_frame_bits, config.auth_plain_bits),
        }
        self._identify = _identify_fraction(jamming._mu)
        self.p_safe_subsession = self._subsession(compromised=False)
        self.p_compromised_subsession = self._subsession(compromised=True)

    def _message(
        self, kind: str, jam_start: int, jam_len: int
    ) -> float:
        coded, plain = self._shapes[kind]
        return message_success_probability(
            coded,
            plain,
            self._tau,
            self._sigma_bit,
            self._amplitude,
            jam_start,
            jam_len,
        )

    def _message_probability(self, kind: str, compromised: bool) -> float:
        coded, _ = self._shapes[kind]
        if not compromised:
            return self._message(kind, coded, 0)
        strategy = self._jamming.strategy
        if strategy is JammerStrategy.INTELLIGENT:
            if kind == _HELLO:
                return self._message(kind, coded, 0)
            return self._message(kind, 0, coded)
        if strategy is JammerStrategy.REACTIVE:
            start = int(math.floor(self._identify * coded))
            return self._message(kind, start, coded - start)
        c = self._jamming.n_compromised
        if not c:
            return self._message(kind, coded, 0)
        beta = min(self._jamming.codes_per_message, c) / c
        return beta * self._message(kind, 0, coded) + (
            (1.0 - beta) * self._message(kind, coded, 0)
        )

    def _subsession(self, compromised: bool) -> float:
        p = self._message_probability(_HELLO, compromised)
        for kind in _BURST_KINDS:
            p *= self._message_probability(kind, compromised)
        return p

    def pair_success_probability(
        self,
        safe_shared: np.ndarray,
        compromised_shared: np.ndarray,
    ) -> np.ndarray:
        """Vectorised ``1 - (1-p_s)^x_safe * (1-p_c)^x_comp`` over
        per-pair shared-code counts."""
        fail_safe = (1.0 - self.p_safe_subsession) ** np.asarray(
            safe_shared, dtype=np.float64
        )
        fail_comp = (
            1.0 - self.p_compromised_subsession
        ) ** np.asarray(compromised_shared, dtype=np.float64)
        return 1.0 - fail_safe * fail_comp

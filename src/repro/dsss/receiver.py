"""The buffering-and-processing schedule of Section V-B.

A node can buffer incoming chips at the chip rate ``R`` but needs
``rho * N`` seconds per correlation, so scanning a buffer of duration
``t_b`` takes ``t_p = rho * N * m * R * t_b`` seconds — a factor
``lambda = t_p / t_b = rho * N * m * R`` longer than filling it
(``lambda ~ 94`` at the paper's example parameters).  The paper's schedule:
during each window ``[i t_p, (i+1) t_p]`` the node processes the signal it
buffered during ``[i t_p - t_b, i t_p]`` and buffers again only during the
last ``t_b`` of the window.  The sender therefore repeats its HELLO for
``r m t_h = (lambda + 1) t_b`` so that one complete copy necessarily lands
inside a buffered window.

:class:`BufferSchedule` computes these windows and answers the coverage
question ("does a transmission lasting ``d`` starting at ``t`` fully cover
some buffered window?") used by both the event-driven simulation and the
tests that check ``r = ceil((lambda + 1)(m + 1) / m)`` is sufficient.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Optional, Union

from repro.errors import ConfigurationError
from repro.utils.validation import check_positive

__all__ = ["ScheduleWindow", "BufferSchedule", "required_hello_rounds"]


def required_hello_rounds(
    gap_ratio: Union[float, Fraction], cycle: int
) -> int:
    """The Section V-B round count ``r = ceil((lambda + 1)(m + 1) / m)``
    (with ``m`` generalized to the code cycle), computed exactly.

    The obvious ``math.ceil((lam + 1.0) * (cycle + 1) / cycle)`` goes
    through two float roundings, and near an integer quotient either can
    push the value across the boundary: at e.g. ``lam = 3 * 2**50``,
    ``cycle = 3`` the float product rounds *down* and the formula loses a
    whole round — under-covering the buffered windows the broadcast must
    span.  Converting the (exact binary) float to a rational and taking
    the ceiling with integer floor division (``-(-a // m)``) gives the
    mathematically exact count for every representable ``gap_ratio``.
    """
    check_positive("cycle", cycle)
    if gap_ratio < 0:
        raise ConfigurationError(
            f"gap_ratio must be non-negative, got {gap_ratio}"
        )
    numerator = (Fraction(gap_ratio) + 1) * (cycle + 1)
    return int(-((-numerator) // cycle))


@dataclass(frozen=True)
class ScheduleWindow:
    """One buffering window ``[buffer_start, buffer_end]``.

    The signal captured in this window is processed during the *next*
    schedule period, finishing at ``processing_done``.
    """

    index: int
    buffer_start: float
    buffer_end: float
    processing_done: float

    @property
    def duration(self) -> float:
        """Length of the buffering window (the paper's ``t_b``)."""
        return self.buffer_end - self.buffer_start


class BufferSchedule:
    """The periodic buffer/process schedule of a D-NDP receiver.

    Parameters
    ----------
    t_buffer:
        Buffering duration ``t_b = (m + 1) t_h`` in seconds.
    t_process:
        Processing duration ``t_p = lambda * t_b`` in seconds.
    phase:
        The node's schedule is not synchronized with anyone else's; this
        offset shifts all windows (uniform in ``[0, t_process)`` in the
        simulations).
    """

    def __init__(
        self, t_buffer: float, t_process: float, phase: float = 0.0
    ) -> None:
        check_positive("t_buffer", t_buffer)
        check_positive("t_process", t_process)
        if t_process < t_buffer:
            raise ConfigurationError(
                f"t_process ({t_process}) must be >= t_buffer ({t_buffer}); "
                "a schedule is only needed when processing is the bottleneck"
            )
        if phase < 0:
            raise ConfigurationError(f"phase must be >= 0, got {phase}")
        self._t_buffer = float(t_buffer)
        self._t_process = float(t_process)
        self._phase = float(phase)

    @property
    def t_buffer(self) -> float:
        """Buffering duration per period."""
        return self._t_buffer

    @property
    def t_process(self) -> float:
        """Processing duration per period (also the period length)."""
        return self._t_process

    @property
    def gap_ratio(self) -> float:
        """The paper's ``lambda = t_p / t_b``."""
        return self._t_process / self._t_buffer

    def window(self, index: int) -> ScheduleWindow:
        """The ``index``-th buffering window.

        Window ``i`` buffers during ``[phase + i t_p - t_b,
        phase + i t_p]`` and its contents are processed by
        ``phase + (i + 1) t_p``.  In steady state the schedule repeats
        indefinitely; the smallest valid index is the first whose
        buffering interval starts at or after time zero.
        """
        if index < self.first_index():
            raise ConfigurationError(
                f"window index must be >= {self.first_index()}, got {index}"
            )
        end = self._phase + index * self._t_process
        return ScheduleWindow(
            index=index,
            buffer_start=end - self._t_buffer,
            buffer_end=end,
            processing_done=end + self._t_process,
        )

    def first_index(self) -> int:
        """Smallest window index whose buffer interval is non-negative."""
        # phase + k t_p - t_b >= 0  <=>  k >= (t_b - phase) / t_p.
        k = math.ceil((self._t_buffer - self._phase) / self._t_process)
        return max(k, 0)

    def windows_between(self, start: float, end: float) -> Iterator[
        ScheduleWindow
    ]:
        """Yield every window whose buffering interval intersects
        ``[start, end]``."""
        if end < start:
            raise ConfigurationError(
                f"end ({end}) must be >= start ({start})"
            )
        first = max(
            self.first_index(),
            int(
                math.floor(
                    (start - self._phase) / self._t_process
                )
            ),
        )
        index = first
        while True:
            win = self.window(index)
            if win.buffer_start > end:
                return
            if win.buffer_end >= start:
                yield win
            index += 1

    def first_covered_window(
        self, tx_start: float, tx_duration: float
    ) -> Optional[ScheduleWindow]:
        """First window fully inside a transmission ``[tx_start, tx_start+d]``.

        A window fully covered by the transmission is guaranteed to hold a
        complete message copy (given ``t_b >= (m + 1) t_h``).  Returns
        ``None`` if the transmission is too short for this phase — which is
        exactly the failure the paper's choice of ``r`` rules out.
        """
        check_positive("tx_duration", tx_duration)
        tx_end = tx_start + tx_duration
        for win in self.windows_between(tx_start, tx_end):
            if win.buffer_start >= tx_start and win.buffer_end <= tx_end:
                return win
        return None

    def required_tx_duration(self) -> float:
        """Transmission duration guaranteeing coverage at any phase.

        Equals ``t_p + t_b = (lambda + 1) t_b``, the duration the paper
        assigns to the repeated HELLO broadcast.
        """
        return self._t_process + self._t_buffer

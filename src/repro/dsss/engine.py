"""Correlation engines for the sliding-window acquisition search.

The receiver's synchronization cost — the ``t_p = rho * N * m * R * t_b``
the paper's whole buffer/process schedule is built around (Section V-B) —
is dominated by evaluating one normalized correlation per (window
position, code) pair.  This module factors that evaluation out of
:class:`~repro.dsss.synchronizer.SlidingWindowSynchronizer` behind a small
engine interface so the *search semantics* (first threshold crossing,
confirmation blocks, work accounting) stay in one place while the
*arithmetic* can be swapped:

``naive``
    The reference backend: one :func:`~repro.dsss.correlator.correlate_many`
    call per window position, exactly the original per-chip Python loop
    (including its re-stacking of the code matrix on every position).  It
    exists so the batched backends can be checked for bit-identical lock
    decisions and so benchmarks have an honest baseline.

``batched``
    Precomputes the stacked ``(N x m)`` code matrix once, views the buffer
    as a ``(positions x N)`` matrix with
    :func:`numpy.lib.stride_tricks.sliding_window_view` (no copy), and
    evaluates a whole block of positions with a single matmul.

``fft``
    The same engine forced onto its FFT cross-correlation path, which the
    ``batched`` engine selects automatically once ``N`` is large enough
    (the paper's ``N = 512`` qualifies): correlating every position
    against one code is a cross-correlation of the buffer with the
    reversed code, computed in ``O((B + N) log(B + N))`` per code
    instead of ``O(B * N)``.

All backends return plain float64 correlation blocks; the synchronizer's
threshold/confirm/accounting logic on top of them is backend-independent,
so ``SyncResult`` sequences are identical whichever engine computed them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.dsss.correlator import code_matrix, correlate_many
from repro.dsss.spread_code import SpreadCode
from repro.errors import ConfigurationError, SpreadCodeError

__all__ = [
    "CorrelationEngine",
    "NaiveCorrelationEngine",
    "BatchedCorrelationEngine",
    "CORRELATION_BACKENDS",
    "make_engine",
]


class CorrelationEngine:
    """Evaluates window-vs-code correlations over a block of positions.

    Parameters
    ----------
    codes:
        The monitored spread-code set.  All codes must share one chip
        length ``N``.
    """

    def __init__(self, codes: Sequence[SpreadCode]) -> None:
        if not codes:
            raise SpreadCodeError(
                "a correlation engine needs at least one code"
            )
        lengths = {code.length for code in codes}
        if len(lengths) != 1:
            raise SpreadCodeError(
                f"all codes must share one chip length, got {lengths}"
            )
        self._codes = tuple(codes)
        self._chip_length = self._codes[0].length

    @property
    def codes(self) -> Sequence[SpreadCode]:
        """The monitored codes, in scan order."""
        return self._codes

    @property
    def n_codes(self) -> int:
        """Number of monitored codes, the paper's ``m``."""
        return len(self._codes)

    @property
    def chip_length(self) -> int:
        """Chip length ``N`` shared by the codes."""
        return self._chip_length

    @property
    def block_size(self) -> int:
        """Preferred number of window positions per :meth:`correlate_block`.

        The synchronizer uses this to size its requests; an engine that
        gains nothing from batching (the naive reference) returns 1 so a
        scan that locks early computes no more correlations than the
        original per-position loop.
        """
        return 1

    def correlate_block(
        self, buffer: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """Correlations for every window position in ``[start, stop)``.

        ``buffer`` must be float64 and every window ``[p, p + N)`` for
        ``p`` in the range must fit inside it.  Returns a
        ``(stop - start, n_codes)`` float64 array whose ``[i, j]`` entry
        is the normalized correlation of the window at ``start + i``
        against code ``j``.
        """
        raise NotImplementedError

    def _check_range(
        self, buffer: np.ndarray, start: int, stop: int
    ) -> None:
        if start < 0 or stop < start:
            raise SpreadCodeError(
                f"invalid position range [{start}, {stop})"
            )
        if stop > start and stop - 1 + self._chip_length > buffer.size:
            raise SpreadCodeError(
                f"window [{stop - 1}, {stop - 1 + self._chip_length}) out "
                f"of buffer of {buffer.size} chips"
            )


class NaiveCorrelationEngine(CorrelationEngine):
    """The original per-position reference path.

    Deliberately preserves the pre-batching cost profile — one
    :func:`correlate_many` call (which re-stacks the code matrix) per
    position — so it can serve both as the equivalence reference and as
    the benchmark baseline the batched engines are measured against.
    """

    def correlate_block(
        self, buffer: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        self._check_range(buffer, start, stop)
        out = np.empty((stop - start, self.n_codes), dtype=np.float64)
        for i, position in enumerate(range(start, stop)):
            out[i] = correlate_many(buffer, self._codes, position)
        return out


class BatchedCorrelationEngine(CorrelationEngine):
    """Matrix-batched correlation over blocks of window positions.

    Parameters
    ----------
    codes:
        The monitored spread-code set.
    block_size:
        Positions evaluated per matmul; bounds the transient
        ``(block x m)`` correlation matrix.
    fft_min_length:
        Chip lengths ``N`` at or above this use the FFT cross-correlation
        path instead of the sliding-window matmul.  The matmul costs
        ``O(block * N)`` per code (plus a block-sized copy, since BLAS
        cannot consume the overlapping strided view directly); the FFT
        costs ``O((block + N) log)`` per code.  Measured on this
        workload the crossover sits near ``N = 128``, so the paper's
        ``N = 512`` default takes the FFT path.  Pass ``1`` to force
        FFT, or a huge value to force the matmul.
    """

    def __init__(
        self,
        codes: Sequence[SpreadCode],
        block_size: int = 4096,
        fft_min_length: int = 128,
    ) -> None:
        super().__init__(codes)
        if block_size <= 0:
            raise SpreadCodeError(
                f"block_size must be positive, got {block_size}"
            )
        if fft_min_length <= 0:
            raise SpreadCodeError(
                f"fft_min_length must be positive, got {fft_min_length}"
            )
        self._block_size = int(block_size)
        self._use_fft = self._chip_length >= int(fft_min_length)
        # Stacked once per engine: (N x m), so a block correlates as
        # (block x N) @ (N x m) — the original code re-stacked this on
        # every single window position.
        self._matrix_t = np.ascontiguousarray(code_matrix(self._codes).T)

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def uses_fft(self) -> bool:
        """Whether this engine evaluates blocks via FFT cross-correlation."""
        return self._use_fft

    def correlate_block(
        self, buffer: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        self._check_range(buffer, start, stop)
        if stop == start:
            return np.zeros((0, self.n_codes), dtype=np.float64)
        if self._use_fft:
            return self._correlate_fft(buffer, start, stop)
        windows = sliding_window_view(buffer, self._chip_length)[start:stop]
        return windows @ self._matrix_t / self._chip_length

    def _correlate_fft(
        self, buffer: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """Cross-correlate one buffer segment against every code via FFT.

        ``corr[p, j] = (1/N) * sum_i buffer[start + p + i] * c_j[i]`` is
        the linear convolution of the segment with the reversed code,
        sampled at lags ``N - 1 .. N - 1 + (stop - start)``.
        """
        n = self._chip_length
        count = stop - start
        segment = buffer[start : stop - 1 + n]
        conv_len = segment.size + n - 1
        fft_len = 1 << (conv_len - 1).bit_length()
        segment_f = np.fft.rfft(segment, fft_len)
        # matrix_t rows are chip index 0..N-1; reverse for convolution.
        reversed_codes = self._matrix_t[::-1]
        codes_f = np.fft.rfft(reversed_codes, fft_len, axis=0)
        conv = np.fft.irfft(segment_f[:, np.newaxis] * codes_f,
                            fft_len, axis=0)
        return conv[n - 1 : n - 1 + count] / n


CORRELATION_BACKENDS = ("naive", "batched", "fft")


def make_engine(
    codes: Sequence[SpreadCode], backend: str = "batched"
) -> CorrelationEngine:
    """Build the correlation engine named by ``backend``.

    ``naive`` is the per-position reference, ``batched`` auto-selects
    matmul or FFT by chip length, ``fft`` forces the FFT path (mainly
    for tests and large-``N`` deployments).
    """
    if backend == "naive":
        return NaiveCorrelationEngine(codes)
    if backend == "batched":
        return BatchedCorrelationEngine(codes)
    if backend == "fft":
        return BatchedCorrelationEngine(codes, fft_min_length=1)
    raise ConfigurationError(
        f"correlation backend must be one of {CORRELATION_BACKENDS}, "
        f"got {backend!r}"
    )

"""Sliding-window synchronization (Section V-B).

A receiver that has buffered ``f`` chips does not know where (or with which
of its ``m`` codes) an incoming HELLO starts.  The paper's receiver slides
an ``N``-chip window over every position ``1 <= i <= f`` and correlates it
against each code in its set; the first position whose correlation
magnitude crosses ``tau`` marks the start of a message spread with that
code, which is then de-spread block by block.

:class:`SlidingWindowSynchronizer` implements exactly that, and also counts
the number of correlations computed so the protocol timing model
(``t_p = rho * N * m * R * t_b``) can be validated against actual work.
The counter charges every (window x code) correlation the paper's receiver
would evaluate — including the extra confirmation-block correlations spent
on candidate hits — regardless of which backend computed them.

The correlation arithmetic itself lives in :mod:`repro.dsss.engine`: the
default ``batched`` backend evaluates whole blocks of window positions
with one matmul (or an FFT cross-correlation for large ``N``), while the
``naive`` backend reproduces the original per-position loop as a
reference.  Both produce identical :class:`SyncResult` sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dsss.engine import CorrelationEngine, make_engine
from repro.dsss.spread_code import SpreadCode
from repro.dsss.spreader import despread
from repro.errors import DecodeError, SpreadCodeError
from repro.obs import current as _metrics
from repro.obs import names as _names

__all__ = ["SyncResult", "SlidingWindowSynchronizer"]


@dataclass(frozen=True)
class SyncResult:
    """A message located and de-spread from a chip buffer.

    Attributes
    ----------
    code:
        The spread code that locked.
    position:
        Chip index where the message begins.
    bits:
        De-spread bit decisions; ``None`` entries are erasures.
    correlations_computed:
        Number of (window x code) correlations evaluated up to and
        including the lock, confirmation blocks included.
    """

    code: SpreadCode
    position: int
    bits: List[Optional[int]]
    correlations_computed: int


class SlidingWindowSynchronizer:
    """Scans a chip buffer for messages spread with any of a node's codes.

    Parameters
    ----------
    codes:
        The receiver's spread-code set (the paper's ``C_B``).
    tau:
        Correlation decision threshold.
    message_bits:
        Expected message length in bits (the paper's ``l_h`` for HELLOs);
        de-spreading stops after this many blocks.
    confirm_blocks:
        Consecutive blocks that must all cross ``tau`` for a lock.
    backend:
        Correlation backend: ``"batched"`` (default), ``"naive"`` (the
        per-position reference), ``"fft"`` (force the FFT path), or an
        already-built :class:`~repro.dsss.engine.CorrelationEngine` over
        the same codes.
    """

    def __init__(
        self,
        codes: Sequence[SpreadCode],
        tau: float,
        message_bits: int,
        confirm_blocks: int = 3,
        backend: Union[str, CorrelationEngine] = "batched",
    ) -> None:
        if not codes:
            raise SpreadCodeError("synchronizer needs at least one code")
        lengths = {code.length for code in codes}
        if len(lengths) != 1:
            raise SpreadCodeError(
                f"all codes must share one chip length, got {lengths}"
            )
        if not 0 < tau <= 1:
            # Half-open on the right: the hit mask uses >= tau and a
            # noiseless self-correlation is exactly 1.0, so tau = 1.0 is
            # the legitimate "perfect match only" operating point.
            raise SpreadCodeError(f"tau must be in (0, 1], got {tau}")
        if message_bits <= 0:
            raise SpreadCodeError(
                f"message_bits must be positive, got {message_bits}"
            )
        if not 1 <= confirm_blocks <= message_bits:
            raise SpreadCodeError(
                f"confirm_blocks must be in [1, {message_bits}], "
                f"got {confirm_blocks}"
            )
        self._codes = list(codes)
        self._tau = float(tau)
        self._message_bits = int(message_bits)
        self._confirm_blocks = int(confirm_blocks)
        self._chip_length = self._codes[0].length
        if isinstance(backend, CorrelationEngine):
            if list(backend.codes) != self._codes:
                raise SpreadCodeError(
                    "engine monitors a different code set than the "
                    "synchronizer"
                )
            self._engine = backend
        else:
            self._engine = make_engine(self._codes, backend)

    @property
    def chip_length(self) -> int:
        """Chip length ``N`` of the codes being monitored."""
        return self._chip_length

    @property
    def codes(self) -> List[SpreadCode]:
        """The codes being monitored, in scan order."""
        return list(self._codes)

    @property
    def message_bits(self) -> int:
        """Message length (in bits) a lock must fully contain."""
        return self._message_bits

    @property
    def engine(self) -> CorrelationEngine:
        """The correlation engine evaluating this synchronizer's scans."""
        return self._engine

    def scan(
        self, buffer: np.ndarray, start: int = 0
    ) -> Optional[SyncResult]:
        """Find the first message at or after chip position ``start``.

        Returns ``None`` when no code locks anywhere in the buffer.  A lock
        at position ``i`` requires the full ``message_bits`` blocks to fit
        in the buffer (a partially buffered message is left for the next
        buffer, as in the paper's schedule where ``t_b = (m+1) t_h``
        guarantees one complete copy).
        """
        buffer = np.asarray(buffer, dtype=np.float64)
        n = self._chip_length
        m = len(self._codes)
        total_chips = self._message_bits * n
        last_start = buffer.size - total_chips
        block = max(1, self._engine.block_size)
        computed = 0
        false_alarms = 0
        position = int(start)
        while position <= last_start:
            stop = min(position + block, last_start + 1)
            correlations = self._engine.correlate_block(
                buffer, position, stop
            )
            hit_mask = np.abs(correlations) >= self._tau
            if hit_mask.any():
                for row in np.flatnonzero(hit_mask.any(axis=1)):
                    candidate = position + int(row)
                    for hit in np.flatnonzero(hit_mask[row]):
                        code = self._codes[int(hit)]
                        confirmed, extra = self._confirm(
                            buffer, code, candidate
                        )
                        computed += extra
                        if not confirmed:
                            # A spurious single-block hit: at tau = 0.15
                            # and N = 512 the cross-correlation of an
                            # unrelated code crosses the threshold once
                            # every ~1500 positions, so a lock requires
                            # confirm_blocks consecutive threshold
                            # crossings with the same code.
                            false_alarms += 1
                            continue
                        computed += (int(row) + 1) * m
                        self._report_scan(computed, false_alarms, locked=True)
                        window = buffer[candidate : candidate + total_chips]
                        bits = despread(window, code, self._tau)
                        return SyncResult(code, candidate, bits, computed)
            computed += (stop - position) * m
            position = stop
        self._report_scan(computed, false_alarms, locked=False)
        return None

    @staticmethod
    def _report_scan(
        computed: int, false_alarms: int, locked: bool
    ) -> None:
        """Publish one scan's work to the installed metrics registry.

        This is what makes correlation work visible for scans that do
        *not* lock — a :class:`SyncResult` only exists on success, so
        without the registry those correlations were invisible.
        """
        registry = _metrics()
        if not registry.enabled:
            return
        registry.inc(_names.DSSS_SCANS)
        registry.inc(_names.DSSS_CORRELATIONS_COMPUTED, computed)
        if false_alarms:
            registry.inc(_names.DSSS_FALSE_ALARMS, false_alarms)
        if locked:
            registry.inc(_names.DSSS_LOCKS)

    def _confirm(
        self, buffer: np.ndarray, code: SpreadCode, position: int
    ) -> Tuple[bool, int]:
        """Require the first ``confirm_blocks`` blocks to all lock.

        Returns ``(confirmed, correlations_performed)`` — the check
        short-circuits on the first failed block, and every correlation
        it did evaluate is charged to the work counter.
        """
        n = self._chip_length
        performed = 0
        for block in range(1, self._confirm_blocks):
            offset = position + block * n
            window = buffer[offset : offset + n]
            performed += 1
            if abs(code.correlation(window)) < self._tau:
                return False, performed
        return True, performed

    def scan_validated(
        self,
        buffer: np.ndarray,
        validator: "Callable[[SyncResult], object]",
    ) -> Optional[object]:
        """Scan with upper-layer validation, retrying on false locks.

        ``validator`` receives each candidate lock and returns a decoded
        object, or raises :class:`~repro.errors.DecodeError` / returns
        ``None`` to reject it (typically an ECC decode: a false lock
        produces an undecodable bit salad).  Only decode failures are
        absorbed — any other exception from the validator is a
        programming error and propagates.  On rejection the scan resumes
        one chip past the false position — the cheap, standard recovery
        the paper's receiver implies.
        """
        position = 0
        while True:
            result = self.scan(buffer, start=position)
            if result is None:
                return None
            try:
                decoded = validator(result)
            except DecodeError:
                decoded = None
            if decoded is not None:
                return decoded
            position = result.position + 1

    def scan_all(self, buffer: np.ndarray) -> List[SyncResult]:
        """Find every non-overlapping message in the buffer, in order.

        After a lock the scan resumes at the end of the located message,
        mirroring the paper's receiver that keeps processing the rest of
        the buffer because several neighbors may be initiating discovery
        concurrently.
        """
        results: List[SyncResult] = []
        position = 0
        while True:
            result = self.scan(buffer, start=position)
            if result is None:
                return results
            results.append(result)
            position = result.position + self._message_bits * self._chip_length

    def correlations_per_buffer(self, buffer_chips: int) -> int:
        """Worst-case correlations for a full scan of ``buffer_chips``.

        This is the quantity the paper charges ``rho * N`` seconds each:
        every chip position times every monitored code.
        """
        if buffer_chips < 0:
            raise SpreadCodeError(
                f"buffer_chips must be non-negative, got {buffer_chips}"
            )
        positions = max(
            0, buffer_chips - self._message_bits * self._chip_length + 1
        )
        return positions * len(self._codes)

"""The live metrics registry and its process-global installation point.

Instrumented layers never hold a registry themselves: they call
:func:`current` at the instant they have something to report and write
into whatever is installed.  By default that is :data:`NULL` — a
registry whose recording methods are no-ops and whose ``enabled`` flag
lets hot paths skip even the argument construction — so an
uninstrumented run pays nothing beyond one module-global read per
reporting site.

Install a real registry for the dynamic extent of a workload with::

    from repro import obs

    with obs.installed(obs.MetricsRegistry()) as reg:
        experiment.run(100)
    snapshot = reg.snapshot()

The global is per-process (worker processes start with :data:`NULL`),
which is why the experiment layer carries per-run snapshots inside
:class:`~repro.experiments.runner.RunResult` instead of relying on
shared state.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.obs.snapshot import (
    HistogramStat,
    MetricsSnapshot,
    TimerStat,
    TraceEvent,
)

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL",
    "current",
    "install",
    "installed",
]


class _Timer:
    """Context manager accumulating one timed section into a registry."""

    __slots__ = ("_registry", "_name", "_started")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        elapsed = time.perf_counter() - self._started
        self._registry.record_seconds(self._name, elapsed)


class MetricsRegistry:
    """Counters, gauges, timers, histograms, and a bounded event log.

    Parameters
    ----------
    max_events:
        Cap on retained trace events (oldest dropped first); 0 disables
        the event log entirely.
    """

    enabled = True

    def __init__(self, max_events: int = 1000) -> None:
        if max_events < 0:
            raise ConfigurationError(
                f"max_events must be non-negative, got {max_events}"
            )
        self._max_events = int(max_events)
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._max_gauges: Dict[str, float] = {}
        self._timer_counts: Dict[str, int] = {}
        self._timer_totals: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}
        self._events: List[TraceEvent] = []
        self._event_seq = 0

    # -- counters ------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + int(amount)

    def counter(self, name: str) -> int:
        """Current counter value (0 when never incremented)."""
        return self._counters.get(name, 0)

    # -- gauges --------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        self._gauges[name] = float(value)

    def gauge_max(self, name: str, value: float) -> None:
        """Raise high-water gauge ``name`` to ``value`` if higher."""
        value = float(value)
        if value > self._max_gauges.get(name, float("-inf")):
            self._max_gauges[name] = value

    # -- timers --------------------------------------------------------

    def timer(self, name: str) -> _Timer:
        """A ``with``-block that accumulates elapsed wall-clock time."""
        return _Timer(self, name)

    def record_seconds(self, name: str, seconds: float) -> None:
        """Record one already-measured duration under timer ``name``."""
        self._timer_counts[name] = self._timer_counts.get(name, 0) + 1
        self._timer_totals[name] = (
            self._timer_totals.get(name, 0.0) + float(seconds)
        )

    # -- histograms ----------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Append one sample to histogram ``name``."""
        self._histograms.setdefault(name, []).append(float(value))

    # -- structured trace events ---------------------------------------

    def event(self, category: str, **fields: Any) -> None:
        """Append a structured trace event (bounded ring)."""
        if self._max_events == 0:
            return
        self._events.append(
            TraceEvent(seq=self._event_seq, category=category,
                       fields=fields)
        )
        self._event_seq += 1
        if len(self._events) > self._max_events:
            del self._events[0]

    # -- aggregation ---------------------------------------------------

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Merge a snapshot (e.g. from a nested run) into this registry."""
        for name, value in snapshot.counters.items():
            self.inc(name, value)
        for name, value in snapshot.gauges.items():
            self.gauge(name, value)
        for name, value in snapshot.max_gauges.items():
            self.gauge_max(name, value)
        for name, stat in snapshot.timers.items():
            self._timer_counts[name] = (
                self._timer_counts.get(name, 0) + stat.count
            )
            self._timer_totals[name] = (
                self._timer_totals.get(name, 0.0) + stat.total_seconds
            )
        for name, stat in snapshot.histograms.items():
            self._histograms.setdefault(name, []).extend(stat.values)
        for event in snapshot.events:
            self.event(event.category, **event.fields)

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the current state into an immutable snapshot."""
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            max_gauges=dict(self._max_gauges),
            timers={
                name: TimerStat(
                    count=self._timer_counts[name],
                    total_seconds=self._timer_totals[name],
                )
                for name in self._timer_counts
            },
            histograms={
                name: HistogramStat(values=tuple(values))
                for name, values in self._histograms.items()
            },
            events=tuple(self._events),
        )

    def reset(self) -> None:
        """Drop all recorded state (the registry stays installed)."""
        self._counters.clear()
        self._gauges.clear()
        self._max_gauges.clear()
        self._timer_counts.clear()
        self._timer_totals.clear()
        self._histograms.clear()
        self._events.clear()
        self._event_seq = 0


class _NullTimer:
    """Reusable no-op timer for the null registry."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_TIMER = _NullTimer()


class NullRegistry(MetricsRegistry):
    """The default no-op sink: recording costs one method call, nothing
    is retained, and ``enabled`` is False so hot paths can skip even
    that."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_events=0)

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def timer(self, name: str) -> _NullTimer:  # type: ignore[override]
        return _NULL_TIMER

    def record_seconds(self, name: str, seconds: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def event(self, category: str, **fields: Any) -> None:
        pass

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        pass


NULL = NullRegistry()

_current: MetricsRegistry = NULL


def current() -> MetricsRegistry:
    """The registry instrumented code should report into right now."""
    return _current


def install(registry: Optional[MetricsRegistry]) -> None:
    """Make ``registry`` the process-global sink (``None`` → no-op)."""
    global _current
    _current = registry if registry is not None else NULL


@contextmanager
def installed(
    registry: MetricsRegistry,
) -> Iterator[MetricsRegistry]:
    """Install ``registry`` for the duration of a ``with`` block."""
    global _current
    previous = _current
    _current = registry
    try:
        yield registry
    finally:
        _current = previous

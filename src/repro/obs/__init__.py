"""repro.obs — metrics and tracing for every layer of the reproduction.

The simulation kernel, the DSSS synchronizer, the D-NDP/M-NDP samplers,
the revocation lists, and the experiment harness all compute interesting
numbers in the course of their work; this package gives them one place
to report those numbers without coupling the layers to each other.

Three pieces:

- :class:`MetricsRegistry` — live counters, gauges, timers, histograms,
  and a bounded structured trace-event log;
- :func:`current` / :func:`install` / :func:`installed` — the
  process-global installation point; the default :data:`NULL` registry
  makes all reporting a no-op;
- :class:`MetricsSnapshot` — an immutable, mergeable, JSON-round-
  trippable freeze of a registry, the unit carried per run inside
  :class:`~repro.experiments.runner.RunResult` and written by the CLI's
  ``--metrics-out``.

See ``docs/architecture.md`` ("Observability") for the reporting map
and the JSON schema.
"""

from repro.obs import names
from repro.obs.registry import (
    NULL,
    MetricsRegistry,
    NullRegistry,
    current,
    install,
    installed,
)
from repro.obs.snapshot import (
    HistogramStat,
    MetricsSnapshot,
    TimerStat,
    TraceEvent,
)

__all__ = [
    "names",
    "MetricsRegistry",
    "NullRegistry",
    "NULL",
    "current",
    "install",
    "installed",
    "MetricsSnapshot",
    "TimerStat",
    "HistogramStat",
    "TraceEvent",
]

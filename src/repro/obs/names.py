"""Central registry of every metric name reported to :mod:`repro.obs`.

A typo'd counter name silently no-ops: ``registry.inc("dsss.scnas")``
creates a fresh counter nobody reads while the dashboards and the
serial==parallel equality gates watch ``dsss.scans`` sit at zero.  This
module is the single source of truth the instrumented layers import
from, and the ``JRS004`` lint rule (:mod:`repro.lint`) checks every
string literal passed to a registry method against it.

Three kinds of entry:

- **constants** — one module-level ``UPPER_SNAKE`` string per static
  metric name (counters, gauges, timers, histograms, and structured
  event categories all share the namespace);
- **dynamic-name helpers** — :func:`cache_hits`, :func:`cache_misses`,
  and :func:`backend_qualified` build names with a runtime component
  (cache kind, ECC backend); their shapes are registered as
  ``DYNAMIC_PATTERNS`` so the linter can still validate expanded names;
- **lookup API** — :data:`ALL_NAMES`, :func:`is_registered`, and
  :data:`CONSTANT_FOR` (used by ``repro.lint --fix`` to rewrite a raw
  literal into the constant that declares it).

Adding a metric: declare the constant here, report through it at the
call site, and the lint gate keeps both sides honest.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Tuple

__all__ = [
    "ALL_NAMES",
    "CONSTANT_FOR",
    "DYNAMIC_PATTERNS",
    "NAME_PATTERN",
    "RETRY_PREFIX",
    "backend_qualified",
    "cache_hits",
    "cache_misses",
    "is_registered",
    "looks_like_metric_name",
]

# -- simulation kernel -------------------------------------------------

SIM_EVENTS_EXECUTED = "sim.events_executed"
SIM_TIME = "sim.time"
SIM_HEAP_HIGH_WATER = "sim.heap_high_water"

# -- DSSS synchronizer -------------------------------------------------

DSSS_SCANS = "dsss.scans"
DSSS_CORRELATIONS_COMPUTED = "dsss.correlations_computed"
DSSS_FALSE_ALARMS = "dsss.false_alarms"
DSSS_LOCKS = "dsss.locks"

# -- ECC codecs (backend-qualified via :func:`backend_qualified`) ------

ECC_SYMBOLS_ENCODED = "ecc.symbols_encoded"
ECC_SYMBOLS_DECODED = "ecc.symbols_decoded"

# -- wire / framing ----------------------------------------------------

WIRE_UNDECODABLE = "wire.undecodable"

# -- PHY backends (chip / chipless pair-level models) ------------------

PHY_MESSAGES = "phy.messages"
PHY_MESSAGES_LOST = "phy.messages_lost"
PHY_SUBSESSIONS = "phy.subsessions"
PHY_ACQUISITION_FAILURES = "phy.acquisition_failures"
PHY_DECODE_FAILURES = "phy.decode_failures"
PHY_PAIRS_SWEPT = "phy.pairs_swept"
PHY_SWEEP_SECONDS = "phy.sweep_seconds"

# -- D-NDP (direct neighbor discovery) ---------------------------------

DNDP_PAIRS_SAMPLED = "dndp.pairs_sampled"
DNDP_SUCCESSES = "dndp.successes"
DNDP_FAILURES = "dndp.failures"
DNDP_SHARED_CODES = "dndp.shared_codes"
DNDP_ESTABLISHED = "dndp.established"
DNDP_RESPONDER_TIMEOUT = "dndp.responder_timeout"
DNDP_BAD_MAC_IGNORED = "dndp.bad_mac_ignored"
DNDP_REPLAYS_DROPPED = "dndp.replays_dropped"

# -- M-NDP (multi-hop recovery) ----------------------------------------

MNDP_ROUNDS = "mndp.rounds"
MNDP_PAIRS_ATTEMPTED = "mndp.pairs_attempted"
MNDP_PAIRS_RECOVERED = "mndp.pairs_recovered"
MNDP_RECOVERY_HOPS = "mndp.recovery_hops"
MNDP_ESTABLISHED = "mndp.established"
MNDP_VERIFICATIONS = "mndp.verifications"
MNDP_INVALID_REQUESTS = "mndp.invalid_requests"
MNDP_INVALID_RESPONSES = "mndp.invalid_responses"
MNDP_GPS_FILTERED = "mndp.gps_filtered"

# -- revocation / DoS defence ------------------------------------------

REVOCATION_INVALID_REQUESTS = "revocation.invalid_requests"
REVOCATION_CODES_REVOKED = "revocation.codes_revoked"
REVOCATION_REVOKED = "revocation.revoked"  # structured event category
DOS_VERIFICATIONS = "dos.verifications"
NEIGHBORS_EXPIRED = "neighbors.expired"

# -- handshake retry / session GC --------------------------------------

RETRY_PREFIX = "retry."
RETRY_SESSIONS_FAILED = "retry.sessions_failed"
RETRY_AUTH_RETRANSMITS = "retry.auth_retransmits"
RETRY_AUTH_RESPONSE_RETRANSMITS = "retry.auth_response_retransmits"
RETRY_MNDP_QUEUED = "retry.mndp_queued"
RETRY_MNDP_QUEUE_DROPPED = "retry.mndp_queue_dropped"
RETRY_MNDP_REQUEUED = "retry.mndp_requeued"
RETRY_MNDP_DROPPED = "retry.mndp_dropped"
RETRY_MNDP_DEQUEUED = "retry.mndp_dequeued"
RETRY_MNDP_EXPIRED = "retry.mndp_expired"
RETRY_MNDP_STATE_PRUNED = "retry.mndp_state_pruned"
RETRY_SESSIONS_GCED = "retry.sessions_gced"

# -- fault injection ---------------------------------------------------

FAULTS_BURST_JAMMED = "faults.burst_jammed"
FAULTS_TX_SUPPRESSED = "faults.tx_suppressed"
FAULTS_RX_CRASHED = "faults.rx_crashed"
FAULTS_DROPPED = "faults.dropped"
FAULTS_DELAYED = "faults.delayed"
FAULTS_DUPLICATED = "faults.duplicated"

# -- experiment harness ------------------------------------------------

EXPERIMENT_RUN_SECONDS = "experiment.run_seconds"
EXPERIMENT_RUNS = "experiment.runs"
EXPERIMENT_PAIRS = "experiment.pairs"
EXPERIMENT_DNDP_SUCCESSES = "experiment.dndp_successes"
EXPERIMENT_MNDP_RECOVERED = "experiment.mndp_recovered"
EXPERIMENT_MEAN_DEGREE = "experiment.mean_degree"

# -- campaign layer (sharded, resumable sweeps) ------------------------

CAMPAIGNS_SHARDS_COMPLETED = "campaigns.shards_completed"
CAMPAIGNS_SHARDS_SKIPPED = "campaigns.shards_skipped"
CAMPAIGNS_RUNS_EXECUTED = "campaigns.runs_executed"
CAMPAIGNS_SHARD_SECONDS = "campaigns.shard_seconds"
CAMPAIGNS_STORE_COMMITS = "campaigns.store_commits"
CAMPAIGNS_RESUMED = "campaigns.resumed"
CAMPAIGNS_SHARDS_RETRIED = "campaigns.shards_retried"
CAMPAIGNS_SHARDS_QUARANTINED = "campaigns.shards_quarantined"
CAMPAIGNS_RUNS_QUARANTINED = "campaigns.runs_quarantined"
CAMPAIGNS_STORE_SALVAGED = "campaigns.store_salvaged"

# -- persistent worker pool (warm campaign engine) ---------------------

POOL_WORKERS_SPAWNED = "pool.workers_spawned"
POOL_RECONFIGURES = "pool.reconfigures"
POOL_WARM_HITS = "pool.warm_hits"
POOL_WARM_MISSES = "pool.warm_misses"
POOL_TASKS_DISPATCHED = "pool.tasks_dispatched"

# -- pool supervision (respawn / retry / quarantine / degradation) -----

POOL_WORKERS_RESPAWNED = "pool.workers_respawned"
POOL_WORKERS_TIMED_OUT = "pool.workers_timed_out"
POOL_WORKERS_FORCE_KILLED = "pool.workers_force_killed"
POOL_RUNS_RETRIED = "pool.runs_retried"
POOL_RUNS_QUARANTINED = "pool.runs_quarantined"
POOL_DEGRADED = "pool.degraded"

# -- lint engine (two-phase analyzer instrumentation) ------------------

LINT_FILES_ANALYZED = "lint.files_analyzed"
LINT_CACHE_HITS = "lint.cache_hits"
LINT_PROJECT_REANALYZED = "lint.project_reanalyzed"


# -- dynamic-name helpers ----------------------------------------------

def cache_hits(kind: str) -> str:
    """Hit counter for artifact-cache partition ``kind``."""
    return f"cache.{kind}.hits"


def cache_misses(kind: str) -> str:
    """Miss counter for artifact-cache partition ``kind``."""
    return f"cache.{kind}.misses"


def backend_qualified(base: str, backend: str) -> str:
    """Qualify a registered base name with a backend suffix.

    The ECC codecs report per-backend symbol throughput as e.g.
    ``ecc.symbols_encoded.vectorized`` so backend-equivalence tests can
    compare implementations from one snapshot.
    """
    if base not in ALL_NAMES:
        raise ValueError(f"unregistered base metric name: {base!r}")
    return f"{base}.{backend}"


#: Regexes matching the names the helpers above can produce.  A name is
#: "registered" if it is a static constant or matches one of these.
DYNAMIC_PATTERNS: Tuple[str, ...] = (
    r"^cache\.[a-z0-9_]+\.(hits|misses)$",
    r"^ecc\.symbols_(encoded|decoded)\.[a-z0-9_]+$",
)

_DYNAMIC_RES = tuple(re.compile(pattern) for pattern in DYNAMIC_PATTERNS)


#: Shape of a well-formed metric name: dotted lower_snake segments.
NAME_PATTERN = r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$"

_NAME_RE = re.compile(NAME_PATTERN)


def _collect() -> Tuple[FrozenSet[str], Dict[str, str]]:
    names: Dict[str, str] = {}
    for constant, value in sorted(globals().items()):
        if not constant.isupper():
            continue
        if not isinstance(value, str) or not _NAME_RE.match(value):
            continue
        if value in names:
            raise ValueError(
                f"duplicate metric name {value!r}: declared by both "
                f"{names[value]} and {constant}"
            )
        names[value] = constant
    return frozenset(names), {name: const for name, const in names.items()}


#: Every static metric name (event categories included).
ALL_NAMES, CONSTANT_FOR = _collect()


def is_registered(name: str) -> bool:
    """True if ``name`` is a declared metric name or a helper product."""
    if name in ALL_NAMES:
        return True
    return any(regex.match(name) for regex in _DYNAMIC_RES)


def looks_like_metric_name(text: str) -> bool:
    """True if ``text`` has the dotted lower_snake shape of a metric
    name (used by the ``JRS004`` lint rule to skip unrelated string
    literals like ``some_list.count("x")``)."""
    return _NAME_RE.match(text) is not None

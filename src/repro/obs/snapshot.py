"""Immutable metric snapshots and their JSON wire format.

A :class:`MetricsSnapshot` freezes the state of a
:class:`~repro.obs.registry.MetricsRegistry` — counters, gauges, timer
accumulators, histogram samples, and the bounded trace-event log — into
a plain value object that can be compared, merged across runs or worker
processes, and round-tripped through JSON.  The schema is versioned
(``repro.obs/1``) so benchmark telemetry written by one revision can be
regressed against by later ones.

Merge semantics (used to aggregate per-run snapshots into experiment
totals, and per-worker totals across processes):

- counters and timers **add**;
- histograms **concatenate** their sample lists in merge order;
- gauges take the **last** written value, except ``*_high_water`` /
  ``*_max`` style gauges which the registry records via ``gauge_max``
  and which merge with :func:`max`;
- trace events concatenate in merge order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["TraceEvent", "TimerStat", "HistogramStat", "MetricsSnapshot"]

SCHEMA = "repro.obs/1"


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace entry emitted by an instrumented layer."""

    seq: int
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "category": self.category,
                "fields": dict(self.fields)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        return cls(
            seq=int(data["seq"]),
            category=str(data["category"]),
            fields=dict(data.get("fields", {})),
        )


@dataclass(frozen=True)
class TimerStat:
    """Accumulated wall-clock time under one timer name."""

    count: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> Optional[float]:
        """Mean duration per timed section, or None when never used."""
        return self.total_seconds / self.count if self.count else None

    def merged(self, other: "TimerStat") -> "TimerStat":
        return TimerStat(
            count=self.count + other.count,
            total_seconds=self.total_seconds + other.total_seconds,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "total_seconds": self.total_seconds}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimerStat":
        return cls(
            count=int(data["count"]),
            total_seconds=float(data["total_seconds"]),
        )


@dataclass(frozen=True)
class HistogramStat:
    """The sample series recorded under one histogram name."""

    values: Tuple[float, ...] = ()

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return float(sum(self.values))

    @property
    def minimum(self) -> Optional[float]:
        return min(self.values) if self.values else None

    @property
    def maximum(self) -> Optional[float]:
        return max(self.values) if self.values else None

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.values else None

    def merged(self, other: "HistogramStat") -> "HistogramStat":
        return HistogramStat(values=self.values + other.values)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "values": list(self.values),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HistogramStat":
        return cls(values=tuple(float(v) for v in data.get("values", ())))


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen view of a registry's state.

    Equality is structural, so two runs with identical seeds produce
    equal snapshots regardless of which process executed them (timers
    excepted — wall-clock time is inherently non-deterministic, which is
    why the experiment acceptance checks compare ``counters`` only).
    """

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    max_gauges: Dict[str, float] = field(default_factory=dict)
    timers: Dict[str, TimerStat] = field(default_factory=dict)
    histograms: Dict[str, HistogramStat] = field(default_factory=dict)
    events: Tuple[TraceEvent, ...] = ()

    def counter(self, name: str) -> int:
        """Value of one counter (0 when never incremented)."""
        return self.counters.get(name, 0)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """This snapshot combined with ``other`` (see module docstring)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        max_gauges = dict(self.max_gauges)
        for name, value in other.max_gauges.items():
            max_gauges[name] = max(max_gauges.get(name, value), value)
        timers = dict(self.timers)
        for name, stat in other.timers.items():
            timers[name] = timers.get(name, TimerStat()).merged(stat)
        histograms = dict(self.histograms)
        for name, stat in other.histograms.items():
            histograms[name] = histograms.get(
                name, HistogramStat()
            ).merged(stat)
        return MetricsSnapshot(
            counters=counters,
            gauges=gauges,
            max_gauges=max_gauges,
            timers=timers,
            histograms=histograms,
            events=self.events + other.events,
        )

    @classmethod
    def merge_all(
        cls, snapshots: Iterable[Optional["MetricsSnapshot"]]
    ) -> "MetricsSnapshot":
        """Fold many (possibly ``None``) snapshots into one total."""
        total = cls()
        for snap in snapshots:
            if snap is not None:
                total = total.merge(snap)
        return total

    def deterministic(self) -> "MetricsSnapshot":
        """This snapshot with every wall-clock-derived field dropped.

        Counters, gauges, histograms, and trace events are pure
        functions of the seed; timer accumulators are not.  Persistent
        results stores (``repro.campaigns``) freeze the deterministic
        view so that a resumed campaign is bit-identical to an
        uninterrupted one and two runs of the same spec produce
        byte-equal artifacts.
        """
        if not self.timers:
            return self
        return MetricsSnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            max_gauges=dict(self.max_gauges),
            timers={},
            histograms=dict(self.histograms),
            events=self.events,
        )

    # -- JSON wire format ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-ready dict form (stable key order via sorting)."""
        return {
            "schema": SCHEMA,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "max_gauges": {
                k: self.max_gauges[k] for k in sorted(self.max_gauges)
            },
            "timers": {
                k: self.timers[k].to_dict() for k in sorted(self.timers)
            },
            "histograms": {
                k: self.histograms[k].to_dict()
                for k in sorted(self.histograms)
            },
            "events": [event.to_dict() for event in self.events],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize for ``--metrics-out`` files and CI artifacts."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsSnapshot":
        schema = data.get("schema")
        if schema != SCHEMA:
            raise ConfigurationError(
                f"unsupported metrics schema {schema!r}; expected {SCHEMA!r}"
            )
        return cls(
            counters={str(k): int(v)
                      for k, v in data.get("counters", {}).items()},
            gauges={str(k): float(v)
                    for k, v in data.get("gauges", {}).items()},
            max_gauges={str(k): float(v)
                        for k, v in data.get("max_gauges", {}).items()},
            timers={str(k): TimerStat.from_dict(v)
                    for k, v in data.get("timers", {}).items()},
            histograms={str(k): HistogramStat.from_dict(v)
                        for k, v in data.get("histograms", {}).items()},
            events=tuple(TraceEvent.from_dict(e)
                         for e in data.get("events", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"metrics JSON is not parseable: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ConfigurationError("metrics JSON must be an object")
        return cls.from_dict(data)

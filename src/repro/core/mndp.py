"""M-NDP: the multi-hop neighbor discovery protocol (Section V-C).

Layers:

- :class:`LogicalGraph` — the network's logical-neighbor relation, with
  the bounded-hop reachability query M-NDP's success depends on.
- :class:`MNDPSampler` — the Monte Carlo model: two physical neighbors
  that failed D-NDP discover each other iff a jamming-resilient logical
  path of at most ``nu`` hops connects them (M-NDP messages travel over
  session spread codes the jammer cannot know).
- Chain validation helpers for the event-driven implementation: every
  signature in a request/response chain must verify, and consecutive
  path nodes must be mutual logical neighbors per the embedded lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from repro.core.messages import MNDPRequest, MNDPResponse
from repro.crypto.signatures import SignatureScheme
from repro.errors import ConfigurationError
from repro.obs import current as _metrics
from repro.obs import names as _names
from repro.utils.validation import check_positive

__all__ = [
    "COMPUTE_BACKENDS",
    "LogicalGraph",
    "MNDPSampler",
    "PendingFrame",
    "PendingRequestQueue",
    "validate_request_chain",
    "validate_response_chain",
]

# Shared by every experiment-layer component with a reference/vectorized
# implementation pair: "vectorized" is the fast path, "reference" the
# original loops the fast path is equality-tested against.
COMPUTE_BACKENDS = ("reference", "vectorized")

Pair = Tuple[int, int]


def _ordered(a: int, b: int) -> Pair:
    return (a, b) if a <= b else (b, a)


class LogicalGraph:
    """The logical-neighbor graph over node indices.

    Bulk inserts via :meth:`add_links` are buffered and only pushed into
    the underlying networkx graph when a graph query needs them; the
    vectorized M-NDP closure reads :meth:`edge_array` instead, so a
    snapshot's hot path never pays per-edge networkx costs.
    """

    def __init__(self, n_nodes: int) -> None:
        check_positive("n_nodes", n_nodes)
        self._graph = nx.Graph()
        self._graph.add_nodes_from(range(int(n_nodes)))
        self._n_nodes = int(n_nodes)
        # Every edge ever recorded: (k, 2) chunks from add_links plus a
        # list of single pairs from add_link (duplicates are harmless).
        self._chunks: List[np.ndarray] = []
        self._singles: List[Pair] = []
        self._n_flushed = 0

    def _flush(self) -> None:
        """Push buffered add_links chunks into the networkx graph."""
        while self._n_flushed < len(self._chunks):
            chunk = self._chunks[self._n_flushed]
            self._graph.add_edges_from(map(tuple, chunk.tolist()))
            self._n_flushed += 1

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the graph."""
        return self._n_nodes

    @property
    def n_edges(self) -> int:
        """Number of logical-neighbor links."""
        self._flush()
        return self._graph.number_of_edges()

    def add_link(self, a: int, b: int) -> None:
        """Record that ``a`` and ``b`` are logical neighbors."""
        if a == b:
            raise ConfigurationError("a node is not its own neighbor")
        self._graph.add_edge(int(a), int(b))
        self._singles.append((int(a), int(b)))

    def add_links(self, pairs: Iterable[Pair]) -> None:
        """Record many logical links in one pass.

        Equivalent to calling :meth:`add_link` per pair, minus the
        per-call overhead — the hot path for building a snapshot's
        initial graph from thousands of D-NDP outcomes.  Accepts any
        iterable of pairs, including a ``(k, 2)`` integer array.
        """
        if isinstance(pairs, np.ndarray):
            arr = np.asarray(pairs, dtype=np.int64)
        else:
            arr = np.asarray(list(pairs), dtype=np.int64)
        if arr.size == 0:
            return
        arr = arr.reshape(-1, 2)
        if bool((arr[:, 0] == arr[:, 1]).any()):
            raise ConfigurationError("a node is not its own neighbor")
        self._chunks.append(arr)

    def edge_array(self) -> np.ndarray:
        """Every recorded link as a ``(k, 2)`` int array.

        May contain duplicates (re-adding a link is a no-op on the
        graph but stays in the log); consumers scatter it into an
        adjacency structure, where duplicates are harmless.
        """
        parts = list(self._chunks)
        if self._singles:
            parts.append(np.array(self._singles, dtype=np.int64))
        if not parts:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(parts, axis=0)

    def has_link(self, a: int, b: int) -> bool:
        """Whether the pair already discovered each other."""
        self._flush()
        return self._graph.has_edge(int(a), int(b))

    def neighbors(self, node: int) -> Set[int]:
        """Logical neighbors of ``node``."""
        self._flush()
        return set(self._graph.neighbors(int(node)))

    def edges(self) -> Set[Pair]:
        """All logical links as ordered pairs."""
        self._flush()
        return {_ordered(a, b) for a, b in self._graph.edges()}

    def within_hops(self, source: int, max_hops: int) -> Dict[int, int]:
        """Nodes reachable from ``source`` in at most ``max_hops`` logical
        hops, mapped to their distance."""
        check_positive("max_hops", max_hops)
        self._flush()
        return dict(
            nx.single_source_shortest_path_length(
                self._graph, int(source), cutoff=int(max_hops)
            )
        )

    def hop_distance(self, a: int, b: int, max_hops: int) -> int:
        """Logical distance between ``a`` and ``b``, or 0 if unreachable
        within ``max_hops`` (0 is never a valid distance for a != b)."""
        reachable = self.within_hops(a, max_hops)
        return reachable.get(int(b), 0)

    def copy(self) -> "LogicalGraph":
        """An independent copy."""
        self._flush()
        clone = LogicalGraph(self.n_nodes)
        clone._graph = self._graph.copy()
        clone._chunks = list(self._chunks)
        clone._singles = list(self._singles)
        clone._n_flushed = self._n_flushed
        return clone


class MNDPSampler:
    """Monte Carlo M-NDP: bounded-hop closure of the logical graph.

    Parameters
    ----------
    nu:
        Maximum hops an M-NDP request may traverse.
    exclude:
        Node indices that do not relay (e.g. when modelling compromised
        nodes refusing to cooperate — the paper keeps them in, so the
        default is empty).
    backend:
        ``"vectorized"`` (default) answers each round with packed-bitset
        breadth-first expansion; ``"reference"`` keeps the original
        per-source networkx shortest-path queries.  Both return the same
        pairs with the same hop distances in the same order.
    """

    def __init__(
        self,
        nu: int,
        exclude: Iterable[int] = (),
        backend: str = "vectorized",
    ) -> None:
        check_positive("nu", nu)
        if backend not in COMPUTE_BACKENDS:
            raise ConfigurationError(
                f"mndp backend must be one of {COMPUTE_BACKENDS}, "
                f"got {backend!r}"
            )
        self._nu = int(nu)
        self._exclude = frozenset(int(x) for x in exclude)
        self._backend = backend

    @property
    def nu(self) -> int:
        """The hop budget."""
        return self._nu

    @property
    def excluded(self) -> FrozenSet[int]:
        """Nodes that refuse to relay."""
        return self._exclude

    @property
    def backend(self) -> str:
        """The closure implementation in use."""
        return self._backend

    def discover(
        self,
        physical_pairs: Sequence[Pair],
        logical: LogicalGraph,
        rounds: int = 1,
    ) -> Set[Pair]:
        """Run M-NDP over all not-yet-logical physical pairs.

        One round checks every remaining pair against the *current*
        logical graph and then commits all new links at once (matching
        Theorem 3's "no nodes have performed M-NDP yet" assumption for
        ``rounds=1``).  More rounds model the periodic re-initiation the
        paper describes: links formed by M-NDP enable further pairs.
        Returns all pairs newly discovered across the rounds.
        """
        check_positive("rounds", rounds)
        registry = _metrics()
        if self._backend == "vectorized":
            return self._discover_vectorized(
                physical_pairs, logical, rounds, registry
            )
        discovered: Set[Pair] = set()
        working = logical
        for round_index in range(rounds):
            pending = [
                _ordered(a, b)
                for a, b in physical_pairs
                if not working.has_link(a, b)
            ]
            new_links = self._one_round(pending, working)
            if registry.enabled:
                registry.inc(_names.MNDP_ROUNDS)
                registry.inc(_names.MNDP_PAIRS_ATTEMPTED, len(pending))
                for hops in new_links.values():
                    registry.observe(_names.MNDP_RECOVERY_HOPS, hops)
            if not new_links:
                break
            discovered.update(new_links)
            if round_index == rounds - 1:
                # The updated graph would never be read again; skip the
                # copy + commit (the caller's graph is left untouched
                # either way).
                break
            working = working.copy() if working is logical else working
            for a, b in new_links:
                working.add_link(a, b)
        if registry.enabled:
            registry.inc(_names.MNDP_PAIRS_RECOVERED, len(discovered))
        return discovered

    def _discover_vectorized(
        self,
        physical_pairs: Sequence[Pair],
        logical: LogicalGraph,
        rounds: int,
        registry,
    ) -> Set[Pair]:
        """Array-native form of the reference :meth:`discover` loop.

        The logical graph is scattered once into a link matrix (and,
        when relays are excluded, a separate relay matrix); each round
        screens the still-unlinked pairs, resolves their closure
        distances, and commits new links in place — no per-round graph
        copies, no per-pair ``has_link`` queries.  Metrics, results, and
        first-occurrence pair deduplication match the reference.
        """
        n = logical.n_nodes
        raw = np.asarray(physical_pairs, dtype=np.int64).reshape(-1, 2)
        a_all = np.minimum(raw[:, 0], raw[:, 1])
        b_all = np.maximum(raw[:, 0], raw[:, 1])
        link = np.zeros((n, n), dtype=bool)
        edges = logical.edge_array()
        if edges.size:
            link[edges[:, 0], edges[:, 1]] = True
            link[edges[:, 1], edges[:, 0]] = True
        if self._exclude:
            relay = link.copy()
            self._zero_excluded(relay)
        else:
            relay = link
        valid_all = self._endpoint_valid(a_all, b_all, n)
        discovered: Set[Pair] = set()
        for round_index in range(rounds):
            pend = np.flatnonzero(~link[a_all, b_all])
            # The reference keys new links by pair, so duplicates in
            # physical_pairs resolve (and observe metrics) only once.
            keys = a_all[pend] * n + b_all[pend]
            first = np.unique(keys, return_index=True)[1]
            if first.size != pend.size:
                first.sort()
                pend_unique = pend[first]
            else:
                pend_unique = pend
            dist = self._closure_distances(
                a_all[pend_unique],
                b_all[pend_unique],
                relay,
                valid_all[pend_unique],
            )
            found = dist > 0
            new_idx = pend_unique[found]
            if registry.enabled:
                registry.inc(_names.MNDP_ROUNDS)
                registry.inc(_names.MNDP_PAIRS_ATTEMPTED, int(pend.size))
                for hops in dist[found].tolist():
                    registry.observe(_names.MNDP_RECOVERY_HOPS, hops)
            if new_idx.size == 0:
                break
            new_a = a_all[new_idx]
            new_b = b_all[new_idx]
            discovered.update(zip(new_a.tolist(), new_b.tolist()))
            if round_index == rounds - 1:
                break
            link[new_a, new_b] = True
            link[new_b, new_a] = True
            if relay is not link:
                relay[new_a, new_b] = True
                relay[new_b, new_a] = True
        if registry.enabled:
            registry.inc(_names.MNDP_PAIRS_RECOVERED, len(discovered))
        return discovered

    def _zero_excluded(self, adj: np.ndarray) -> None:
        """Remove excluded nodes' rows/columns from a relay adjacency."""
        n = adj.shape[0]
        excluded = np.fromiter(self._exclude, dtype=np.int64)
        excluded = excluded[(excluded >= 0) & (excluded < n)]
        adj[excluded, :] = False
        adj[:, excluded] = False

    def _endpoint_valid(
        self, a_arr: np.ndarray, b_arr: np.ndarray, n: int
    ) -> np.ndarray:
        """Mask of pairs whose endpoints are both non-excluded."""
        if not self._exclude:
            return np.ones(a_arr.size, dtype=bool)
        excluded = np.fromiter(self._exclude, dtype=np.int64)
        excluded = excluded[(excluded >= 0) & (excluded < n)]
        in_excl = np.zeros(n, dtype=bool)
        in_excl[excluded] = True
        return ~(in_excl[a_arr] | in_excl[b_arr])

    def _closure_distances(
        self,
        a_arr: np.ndarray,
        b_arr: np.ndarray,
        adj: np.ndarray,
        valid: np.ndarray,
    ) -> np.ndarray:
        """Hop distances (0 = unreachable) for pairs over a relay
        adjacency, by the packed-bitset level sweep."""
        dist = np.zeros(a_arr.size, dtype=np.int64)
        if a_arr.size == 0:
            return dist
        n = adj.shape[0]
        dist[adj[a_arr, b_arr] & valid] = 1
        remaining = np.flatnonzero(valid & (dist == 0))
        if self._nu >= 2 and remaining.size:
            packed = np.packbits(adj, axis=1)
            hit = (
                packed[a_arr[remaining]] & packed[b_arr[remaining]]
            ).any(axis=1)
            dist[remaining[hit]] = 2
            remaining = remaining[~hit]
            if self._nu >= 3 and remaining.size:
                self._deep_levels(
                    a_arr, b_arr, dist, remaining, adj, packed, n
                )
        return dist

    def _one_round(
        self, pending: List[Pair], logical: LogicalGraph
    ) -> Dict[Pair, int]:
        """Pairs connectable by a ``<= nu``-hop path in the current
        graph, mapped to the hop distance of that path (in ``pending``
        order)."""
        if not pending:
            return {}
        if self._backend == "vectorized":
            return self._one_round_vectorized(pending, logical)
        return self._one_round_reference(pending, logical)

    def _one_round_reference(
        self, pending: List[Pair], logical: LogicalGraph
    ) -> Dict[Pair, int]:
        """Per-source networkx shortest-path queries (the original)."""
        sources = {a for a, _ in pending}
        reach: Dict[int, Dict[int, int]] = {}
        graph = logical
        if self._exclude:
            graph = self._without_excluded(logical)
        for source in sources:
            if source in self._exclude:
                reach[source] = {}
                continue
            reach[source] = graph.within_hops(source, self._nu)
        return {
            (a, b): reach[a][b]
            for a, b in pending
            if b not in self._exclude and reach[a].get(b, 0) > 0
        }

    def _one_round_vectorized(
        self, pending: List[Pair], logical: LogicalGraph
    ) -> Dict[Pair, int]:
        """Packed-bitset bounded-hop closure.

        A pair sits at distance ``L`` iff ``b`` is adjacent to some node
        exactly ``L - 1`` hops from ``a`` and was not resolved at a
        shallower level, so hop 1 is an adjacency lookup, hop 2 is one
        AND/any over the packed adjacency rows of both endpoints, and
        deeper hops expand per-source frontiers with OR-reduced packed
        rows.  Bit-for-bit the same pairs/distances as the reference.
        """
        n = logical.n_nodes
        n_pairs = len(pending)
        a_arr = np.fromiter(
            (a for a, _ in pending), dtype=np.int64, count=n_pairs
        )
        b_arr = np.fromiter(
            (b for _, b in pending), dtype=np.int64, count=n_pairs
        )
        adj = np.zeros((n, n), dtype=bool)
        edges = logical.edge_array()
        if edges.size:
            adj[edges[:, 0], edges[:, 1]] = True
            adj[edges[:, 1], edges[:, 0]] = True
        if self._exclude:
            self._zero_excluded(adj)
        valid = self._endpoint_valid(a_arr, b_arr, n)
        dist = self._closure_distances(a_arr, b_arr, adj, valid)
        result: Dict[Pair, int] = {}
        for index, hops in enumerate(dist.tolist()):
            if hops > 0:
                result[pending[index]] = hops
        return result

    def _deep_levels(
        self,
        a_arr: np.ndarray,
        b_arr: np.ndarray,
        dist: np.ndarray,
        remaining: np.ndarray,
        adj: np.ndarray,
        packed: np.ndarray,
        n: int,
    ) -> None:
        """Resolve hops ``3..nu`` by expanding per-source frontiers."""
        frontiers: Dict[int, np.ndarray] = {}
        visiteds: Dict[int, np.ndarray] = {}
        depths: Dict[int, int] = {}
        for level in range(3, self._nu + 1):
            if remaining.size == 0:
                return
            for src in set(a_arr[remaining].tolist()):
                if src not in frontiers:
                    visited = packed[src].copy()
                    visited[src >> 3] |= np.uint8(0x80 >> (src & 7))
                    frontiers[src] = packed[src]
                    visiteds[src] = visited
                    depths[src] = 1
                while depths[src] < level - 1:
                    members = np.flatnonzero(
                        np.unpackbits(frontiers[src], count=n)
                    )
                    if members.size == 0:
                        depths[src] = level - 1
                        break
                    grown = np.bitwise_or.reduce(packed[members], axis=0)
                    grown &= ~visiteds[src]
                    visiteds[src] |= grown
                    frontiers[src] = grown
                    depths[src] += 1
            stacked = np.stack(
                [frontiers[int(a)] for a in a_arr[remaining]]
            )
            hit = (stacked & packed[b_arr[remaining]]).any(axis=1)
            dist[remaining[hit]] = level
            remaining = remaining[~hit]

    def _without_excluded(self, logical: LogicalGraph) -> LogicalGraph:
        """The logical graph with excluded nodes unable to *relay*.

        Excluded nodes keep their direct links but cannot sit inside a
        path, so we drop them entirely and handle endpoint cases in the
        caller (an excluded endpoint never discovers anyone via M-NDP).
        """
        clone = LogicalGraph(logical.n_nodes)
        for a, b in logical.edges():
            if a in self._exclude or b in self._exclude:
                continue
            clone.add_link(a, b)
        return clone


def validate_request_chain(
    request: MNDPRequest, scheme: SignatureScheme
) -> bool:
    """Verify every signature and the path consistency of a request.

    Checks (per Section V-C's receiver procedure):

    1. the source signature verifies under ``ID_A``;
    2. each extension's signature verifies under its relay's ID;
    3. each relay appears in the *previous* hop's neighbor list — i.e.
       the embedded lists witness a legitimate logical path.
    """
    if not scheme.verify(
        request.source,
        request.source_signed_bytes(),
        request.source_signature,
    ):
        return False
    previous_neighbors = set(request.source_neighbors)
    for index, extension in enumerate(request.extensions):
        if not scheme.verify(
            extension.node,
            request.extension_signed_bytes(index),
            extension.signature,
        ):
            return False
        if extension.node not in previous_neighbors:
            return False
        previous_neighbors = set(extension.neighbors)
    return True


def validate_response_chain(
    response: MNDPResponse, scheme: SignatureScheme
) -> bool:
    """Verify every signature in an M-NDP response chain."""
    if not scheme.verify(
        response.responder,
        response.responder_signed_bytes(),
        response.responder_signature,
    ):
        return False
    for index, extension in enumerate(response.extensions):
        if not scheme.verify(
            extension.node,
            response.extension_signed_bytes(index),
            extension.signature,
        ):
            return False
    return True


@dataclass
class PendingFrame:
    """One M-NDP frame waiting for a session route to (re)appear."""

    peer: object
    frame: object
    enqueued_at: float
    requeues: int = 0


class PendingRequestQueue:
    """A bounded TTL queue for M-NDP frames without a live route.

    The event-driven M-NDP silently discarded any frame whose target
    session had expired or not yet confirmed; under churn that loses
    whole discovery rounds.  Nodes now park such frames here: entries
    are drained when the peer's session (re)establishes, expire after
    ``ttl`` simulated seconds, may be requeued at most ``max_requeues``
    times, and the queue never exceeds ``capacity`` entries.
    """

    def __init__(
        self, ttl: float, max_requeues: int, capacity: int
    ) -> None:
        check_positive("ttl", ttl)
        if max_requeues < 0:
            raise ConfigurationError(
                f"max_requeues must be non-negative: {max_requeues}"
            )
        check_positive("capacity", capacity)
        self._ttl = float(ttl)
        self._max_requeues = int(max_requeues)
        self._capacity = int(capacity)
        self._entries: List[PendingFrame] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def ttl(self) -> float:
        """Entry lifetime in simulated seconds."""
        return self._ttl

    def push(self, peer: object, frame: object, now: float) -> bool:
        """Queue a frame; False (dropped) when the queue is full."""
        if len(self._entries) >= self._capacity:
            return False
        self._entries.append(PendingFrame(peer, frame, float(now)))
        return True

    def requeue(self, entry: PendingFrame, now: float) -> bool:
        """Put a popped entry back after its route vanished again.

        False (dropped) once the entry exhausted its requeue budget,
        outlived its TTL, or the queue is full.
        """
        if entry.requeues >= self._max_requeues:
            return False
        if now - entry.enqueued_at > self._ttl:
            return False
        if len(self._entries) >= self._capacity:
            return False
        entry.requeues += 1
        self._entries.append(entry)
        return True

    def pop_for(self, peer: object, now: float) -> List[PendingFrame]:
        """Remove and return the live entries addressed to ``peer``.

        Entries already past their TTL are not returned (they die on
        the next :meth:`expire` sweep).
        """
        matched: List[PendingFrame] = []
        kept: List[PendingFrame] = []
        for entry in self._entries:
            if (
                entry.peer == peer
                and now - entry.enqueued_at <= self._ttl
            ):
                matched.append(entry)
            else:
                kept.append(entry)
        self._entries = kept
        return matched

    def expire(self, now: float) -> int:
        """Drop entries older than the TTL; returns how many died."""
        kept = [
            entry
            for entry in self._entries
            if now - entry.enqueued_at <= self._ttl
        ]
        expired = len(self._entries) - len(kept)
        self._entries = kept
        return expired

"""M-NDP: the multi-hop neighbor discovery protocol (Section V-C).

Layers:

- :class:`LogicalGraph` — the network's logical-neighbor relation, with
  the bounded-hop reachability query M-NDP's success depends on.
- :class:`MNDPSampler` — the Monte Carlo model: two physical neighbors
  that failed D-NDP discover each other iff a jamming-resilient logical
  path of at most ``nu`` hops connects them (M-NDP messages travel over
  session spread codes the jammer cannot know).
- Chain validation helpers for the event-driven implementation: every
  signature in a request/response chain must verify, and consecutive
  path nodes must be mutual logical neighbors per the embedded lists.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import networkx as nx

from repro.core.messages import MNDPRequest, MNDPResponse
from repro.crypto.signatures import SignatureScheme
from repro.errors import ConfigurationError
from repro.obs import current as _metrics
from repro.utils.validation import check_positive

__all__ = [
    "LogicalGraph",
    "MNDPSampler",
    "validate_request_chain",
    "validate_response_chain",
]

Pair = Tuple[int, int]


def _ordered(a: int, b: int) -> Pair:
    return (a, b) if a <= b else (b, a)


class LogicalGraph:
    """The logical-neighbor graph over node indices."""

    def __init__(self, n_nodes: int) -> None:
        check_positive("n_nodes", n_nodes)
        self._graph = nx.Graph()
        self._graph.add_nodes_from(range(int(n_nodes)))

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the graph."""
        return self._graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        """Number of logical-neighbor links."""
        return self._graph.number_of_edges()

    def add_link(self, a: int, b: int) -> None:
        """Record that ``a`` and ``b`` are logical neighbors."""
        if a == b:
            raise ConfigurationError("a node is not its own neighbor")
        self._graph.add_edge(int(a), int(b))

    def has_link(self, a: int, b: int) -> bool:
        """Whether the pair already discovered each other."""
        return self._graph.has_edge(int(a), int(b))

    def neighbors(self, node: int) -> Set[int]:
        """Logical neighbors of ``node``."""
        return set(self._graph.neighbors(int(node)))

    def edges(self) -> Set[Pair]:
        """All logical links as ordered pairs."""
        return {_ordered(a, b) for a, b in self._graph.edges()}

    def within_hops(self, source: int, max_hops: int) -> Dict[int, int]:
        """Nodes reachable from ``source`` in at most ``max_hops`` logical
        hops, mapped to their distance."""
        check_positive("max_hops", max_hops)
        return dict(
            nx.single_source_shortest_path_length(
                self._graph, int(source), cutoff=int(max_hops)
            )
        )

    def hop_distance(self, a: int, b: int, max_hops: int) -> int:
        """Logical distance between ``a`` and ``b``, or 0 if unreachable
        within ``max_hops`` (0 is never a valid distance for a != b)."""
        reachable = self.within_hops(a, max_hops)
        return reachable.get(int(b), 0)

    def copy(self) -> "LogicalGraph":
        """An independent copy."""
        clone = LogicalGraph(self.n_nodes)
        clone._graph = self._graph.copy()
        return clone


class MNDPSampler:
    """Monte Carlo M-NDP: bounded-hop closure of the logical graph.

    Parameters
    ----------
    nu:
        Maximum hops an M-NDP request may traverse.
    exclude:
        Node indices that do not relay (e.g. when modelling compromised
        nodes refusing to cooperate — the paper keeps them in, so the
        default is empty).
    """

    def __init__(self, nu: int, exclude: Iterable[int] = ()) -> None:
        check_positive("nu", nu)
        self._nu = int(nu)
        self._exclude = frozenset(int(x) for x in exclude)

    @property
    def nu(self) -> int:
        """The hop budget."""
        return self._nu

    @property
    def excluded(self) -> FrozenSet[int]:
        """Nodes that refuse to relay."""
        return self._exclude

    def discover(
        self,
        physical_pairs: Sequence[Pair],
        logical: LogicalGraph,
        rounds: int = 1,
    ) -> Set[Pair]:
        """Run M-NDP over all not-yet-logical physical pairs.

        One round checks every remaining pair against the *current*
        logical graph and then commits all new links at once (matching
        Theorem 3's "no nodes have performed M-NDP yet" assumption for
        ``rounds=1``).  More rounds model the periodic re-initiation the
        paper describes: links formed by M-NDP enable further pairs.
        Returns all pairs newly discovered across the rounds.
        """
        check_positive("rounds", rounds)
        registry = _metrics()
        discovered: Set[Pair] = set()
        working = logical
        for _ in range(rounds):
            pending = [
                _ordered(a, b)
                for a, b in physical_pairs
                if not working.has_link(a, b)
            ]
            new_links = self._one_round(pending, working)
            if registry.enabled:
                registry.inc("mndp.rounds")
                registry.inc("mndp.pairs_attempted", len(pending))
                for hops in new_links.values():
                    registry.observe("mndp.recovery_hops", hops)
            if not new_links:
                break
            working = working.copy() if working is logical else working
            for a, b in new_links:
                working.add_link(a, b)
            discovered.update(new_links)
        if registry.enabled:
            registry.inc("mndp.pairs_recovered", len(discovered))
        return discovered

    def _one_round(
        self, pending: List[Pair], logical: LogicalGraph
    ) -> Dict[Pair, int]:
        """Pairs connectable by a ``<= nu``-hop path in the current
        graph, mapped to the hop distance of that path (in ``pending``
        order)."""
        if not pending:
            return {}
        sources = {a for a, _ in pending}
        reach: Dict[int, Dict[int, int]] = {}
        graph = logical
        if self._exclude:
            graph = self._without_excluded(logical)
        for source in sources:
            if source in self._exclude:
                reach[source] = {}
                continue
            reach[source] = graph.within_hops(source, self._nu)
        return {
            (a, b): reach[a][b]
            for a, b in pending
            if b not in self._exclude and reach[a].get(b, 0) > 0
        }

    def _without_excluded(self, logical: LogicalGraph) -> LogicalGraph:
        """The logical graph with excluded nodes unable to *relay*.

        Excluded nodes keep their direct links but cannot sit inside a
        path, so we drop them entirely and handle endpoint cases in the
        caller (an excluded endpoint never discovers anyone via M-NDP).
        """
        clone = LogicalGraph(logical.n_nodes)
        for a, b in logical.edges():
            if a in self._exclude or b in self._exclude:
                continue
            clone.add_link(a, b)
        return clone


def validate_request_chain(
    request: MNDPRequest, scheme: SignatureScheme
) -> bool:
    """Verify every signature and the path consistency of a request.

    Checks (per Section V-C's receiver procedure):

    1. the source signature verifies under ``ID_A``;
    2. each extension's signature verifies under its relay's ID;
    3. each relay appears in the *previous* hop's neighbor list — i.e.
       the embedded lists witness a legitimate logical path.
    """
    if not scheme.verify(
        request.source,
        request.source_signed_bytes(),
        request.source_signature,
    ):
        return False
    previous_neighbors = set(request.source_neighbors)
    for index, extension in enumerate(request.extensions):
        if not scheme.verify(
            extension.node,
            request.extension_signed_bytes(index),
            extension.signature,
        ):
            return False
        if extension.node not in previous_neighbors:
            return False
        previous_neighbors = set(extension.neighbors)
    return True


def validate_response_chain(
    response: MNDPResponse, scheme: SignatureScheme
) -> bool:
    """Verify every signature in an M-NDP response chain."""
    if not scheme.verify(
        response.responder,
        response.responder_signed_bytes(),
        response.responder_signature,
    ):
        return False
    for index, extension in enumerate(response.extensions):
        if not scheme.verify(
            extension.node,
            response.extension_signed_bytes(index),
            extension.signature,
        ):
            return False
    return True

"""Typed protocol messages with canonical byte encodings.

Over the air every message is a :class:`repro.dsss.frame.Frame`; this
module defines the *contents*: the four D-NDP messages and the M-NDP
request/response with their signature chains.  ``signed_bytes`` returns
the exact bytes covered by a signature or MAC, and ``wire_bits`` the
paper-accounted message length used by the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.config import JRSNDConfig
from repro.crypto.identity import NodeId
from repro.crypto.signatures import IdentitySignature
from repro.errors import ConfigurationError

__all__ = [
    "Hello",
    "Confirm",
    "AuthRequest",
    "AuthResponse",
    "MNDPExtension",
    "MNDPRequest",
    "MNDPResponse",
]


def _encode_ids(ids: Tuple[NodeId, ...]) -> bytes:
    return len(ids).to_bytes(2, "big") + b"".join(i.to_bytes() for i in ids)


@dataclass(frozen=True)
class Hello:
    """``{HELLO, ID_A}`` — the D-NDP beacon."""

    sender: NodeId

    def wire_bits(self, config: JRSNDConfig) -> int:
        """Plain (pre-ECC) length ``l_t + l_id``."""
        return config.type_bits + config.id_bits


@dataclass(frozen=True)
class Confirm:
    """``{CONFIRM, ID_B}`` — the D-NDP response beacon."""

    sender: NodeId

    def wire_bits(self, config: JRSNDConfig) -> int:
        """Plain length, same layout as HELLO."""
        return config.type_bits + config.id_bits


@dataclass(frozen=True)
class AuthRequest:
    """``{ID_A, n_A, f_K(ID_A | n_A)}`` — third D-NDP message."""

    sender: NodeId
    nonce: int
    mac_tag: bytes

    def mac_input(self) -> Tuple[bytes, bytes]:
        """The fields covered by the MAC, in order."""
        return (self.sender.to_bytes(), _nonce_bytes(self.nonce))

    def wire_bits(self, config: JRSNDConfig) -> int:
        """Plain length ``l_id + l_n + l_mac``."""
        return config.id_bits + config.nonce_bits + config.mac_bits


@dataclass(frozen=True)
class AuthResponse:
    """``{ID_B, n_B, f_K(ID_B | n_B)}`` — fourth D-NDP message."""

    sender: NodeId
    nonce: int
    mac_tag: bytes

    def mac_input(self) -> Tuple[bytes, bytes]:
        """The fields covered by the MAC, in order."""
        return (self.sender.to_bytes(), _nonce_bytes(self.nonce))

    def wire_bits(self, config: JRSNDConfig) -> int:
        """Plain length ``l_id + l_n + l_mac``."""
        return config.id_bits + config.nonce_bits + config.mac_bits


def _coordinate_bytes(value: float) -> bytes:
    """Fixed-point 32-bit coordinate encoding (centimeter resolution)."""
    scaled = int(round(value * 100.0))
    if not -(1 << 31) <= scaled < (1 << 31):
        raise ConfigurationError(f"coordinate {value} out of range")
    return scaled.to_bytes(4, "big", signed=True)


def nonce_bytes(nonce: int) -> bytes:
    """Canonical 8-byte encoding of a nonce, used by every MAC and
    signature input in the protocol."""
    if nonce < 0:
        raise ConfigurationError("nonce must be non-negative")
    return int(nonce).to_bytes(8, "big")


_nonce_bytes = nonce_bytes


@dataclass(frozen=True)
class MNDPExtension:
    """One relay's addition to an M-NDP request or response:
    ``ID_C, L_C, SIG_C``."""

    node: NodeId
    neighbors: Tuple[NodeId, ...]
    signature: IdentitySignature

    def signed_bytes(self, base: bytes) -> bytes:
        """Bytes this extension's signature covers: everything before it
        plus its own ID and neighbor list."""
        return base + self.node.to_bytes() + _encode_ids(self.neighbors)


@dataclass(frozen=True)
class MNDPRequest:
    """The M-NDP request with its signature chain.

    The source's fields are ``{ID_A, L_A, n_A, nu, SIG_A}``; each relay
    appends an :class:`MNDPExtension`.  When the deployment enables GPS
    filtering (Section V-C's false-positive elimination) the source
    also embeds its position, covered by its signature.
    """

    source: NodeId
    source_neighbors: Tuple[NodeId, ...]
    nonce: int
    hop_budget: int
    source_signature: IdentitySignature
    extensions: Tuple[MNDPExtension, ...] = field(default=())
    source_position: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if self.hop_budget < 1:
            raise ConfigurationError(
                f"hop_budget (nu) must be >= 1, got {self.hop_budget}"
            )

    @property
    def hops_traversed(self) -> int:
        """Hops the request has crossed so far (source hop is 1)."""
        return 1 + len(self.extensions)

    def source_signed_bytes(self) -> bytes:
        """Bytes covered by the source signature."""
        base = (
            b"mndp-req"
            + self.source.to_bytes()
            + _encode_ids(self.source_neighbors)
            + _nonce_bytes(self.nonce)
            + self.hop_budget.to_bytes(1, "big")
        )
        if self.source_position is not None:
            x, y = self.source_position
            base += b"pos" + _coordinate_bytes(x) + _coordinate_bytes(y)
        return base

    def extension_signed_bytes(self, index: int) -> bytes:
        """Bytes covered by the ``index``-th extension's signature."""
        base = self.source_signed_bytes()
        for i in range(index):
            base = self.extensions[i].signed_bytes(base)
        return self.extensions[index].signed_bytes(base)

    def extended(self, extension: MNDPExtension) -> "MNDPRequest":
        """The request after one more relay appends itself."""
        return MNDPRequest(
            source=self.source,
            source_neighbors=self.source_neighbors,
            nonce=self.nonce,
            hop_budget=self.hop_budget,
            source_signature=self.source_signature,
            extensions=self.extensions + (extension,),
            source_position=self.source_position,
        )

    def path_nodes(self) -> Tuple[NodeId, ...]:
        """The relay path so far: source, then each extension node."""
        return (self.source,) + tuple(e.node for e in self.extensions)

    def wire_bits(self, config: JRSNDConfig) -> int:
        """Paper-accounted length: per path node an ID, a neighbor list
        and a signature, plus nonce and hop fields (and 64 bits of
        position when GPS filtering embeds one)."""
        total = config.nonce_bits + config.hop_field_bits
        total += (len(self.source_neighbors) + 1) * config.id_bits
        total += config.signature_bits
        if self.source_position is not None:
            total += 64
        for extension in self.extensions:
            total += (len(extension.neighbors) + 1) * config.id_bits
            total += config.signature_bits
        return total


@dataclass(frozen=True)
class MNDPResponse:
    """The M-NDP response ``{ID_A, ID_C, ID_B, L_B, n_B, nu, SIG_B}``
    plus relay extensions on the way back."""

    source: NodeId
    via: NodeId
    responder: NodeId
    responder_neighbors: Tuple[NodeId, ...]
    nonce: int
    hop_budget: int
    responder_signature: IdentitySignature
    extensions: Tuple[MNDPExtension, ...] = field(default=())

    def responder_signed_bytes(self) -> bytes:
        """Bytes covered by the responder's signature."""
        return (
            b"mndp-resp"
            + self.source.to_bytes()
            + self.via.to_bytes()
            + self.responder.to_bytes()
            + _encode_ids(self.responder_neighbors)
            + _nonce_bytes(self.nonce)
            + self.hop_budget.to_bytes(1, "big")
        )

    def extension_signed_bytes(self, index: int) -> bytes:
        """Bytes covered by the ``index``-th relay extension."""
        base = self.responder_signed_bytes()
        for i in range(index):
            base = self.extensions[i].signed_bytes(base)
        return self.extensions[index].signed_bytes(base)

    def extended(self, extension: MNDPExtension) -> "MNDPResponse":
        """The response after one more relay appends itself."""
        return MNDPResponse(
            source=self.source,
            via=self.via,
            responder=self.responder,
            responder_neighbors=self.responder_neighbors,
            nonce=self.nonce,
            hop_budget=self.hop_budget,
            responder_signature=self.responder_signature,
            extensions=self.extensions + (extension,),
        )

    def wire_bits(self, config: JRSNDConfig) -> int:
        """Paper-accounted response length."""
        total = config.nonce_bits + config.hop_field_bits
        total += 3 * config.id_bits  # ID_A, ID_C, ID_B
        total += len(self.responder_neighbors) * config.id_bits
        total += config.signature_bits
        for extension in self.extensions:
            total += (len(extension.neighbors) + 1) * config.id_bits
            total += config.signature_bits
        return total

"""D-NDP: the direct neighbor discovery protocol (Section V-B).

Two layers live here:

- :class:`DNDPSampler` — the per-pair Monte Carlo model used by the
  field experiments.  It samples exactly the process Theorem 1
  analyzes: one sub-session per shared code, HELLO jammed with the
  strategy's per-message probability, the three later messages jammed as
  a dependent burst, and the pair discovering each other iff any
  sub-session survives (the redundancy design).

- :class:`DNDPSession` — the per-peer state machine the event-driven
  :class:`repro.core.jrsnd.JRSNDNode` drives, carrying the handshake
  through HELLO / CONFIRM / AUTH_REQUEST / AUTH_RESPONSE with real keys,
  MACs and session-code derivation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.adversary.jammer import JammingModel
from repro.core.config import JRSNDConfig
from repro.dsss.phy import PairPHY
from repro.core.timing import ProtocolTiming
from repro.crypto.identity import NodeId
from repro.dsss.spread_code import SpreadCode
from repro.errors import ProtocolError
from repro.obs import current as _metrics
from repro.obs import names as _names

__all__ = [
    "PairOutcome",
    "DNDPSampler",
    "SessionState",
    "DNDPSession",
    "RetryPolicy",
]


@dataclass(frozen=True)
class PairOutcome:
    """Result of one sampled D-NDP attempt between two physical
    neighbors.

    Attributes
    ----------
    success:
        Whether the pair discovered each other.
    shared_codes:
        How many codes the pair shared (``x``).
    surviving_codes:
        Sub-sessions that survived jamming (empty on failure).
    latency:
        Sampled handshake latency in seconds (``None`` on failure).
    """

    success: bool
    shared_codes: int
    surviving_codes: Sequence[int]
    latency: Optional[float]


class DNDPSampler:
    """Samples D-NDP outcomes per the paper's jamming model.

    Parameters
    ----------
    config:
        Deployment parameters.
    jamming:
        The adversary's jamming model (strategy + compromised codes).
    phy:
        Optional pair-level PHY backend (chip or chipless).  When set,
        per-message outcomes come from the PHY — acquisition plus decode
        under the jam overlay — instead of the jamming model's
        per-message Bernoulli draws; the jamming model still supplies
        the jam geometry inside the PHY.
    """

    def __init__(
        self,
        config: JRSNDConfig,
        jamming: JammingModel,
        phy: Optional["PairPHY"] = None,
    ) -> None:
        self._config = config
        self._jamming = jamming
        self._phy = phy
        self._timing = ProtocolTiming(config)

    @property
    def timing(self) -> ProtocolTiming:
        """The derived timing model."""
        return self._timing

    def sample_pair(
        self,
        shared_codes: Sequence[int],
        rng: np.random.Generator,
        with_latency: bool = False,
        redundancy: bool = True,
    ) -> PairOutcome:
        """Sample one D-NDP attempt given the pair's shared pool codes.

        With ``redundancy`` (the paper's design) every shared code runs
        its own sub-session (HELLO, then the CONFIRM/auth burst), and
        discovery succeeds iff at least one survives end to end.

        With ``redundancy=False`` the responder picks a *single* random
        code among those whose HELLO it decoded and spreads all later
        messages only with it — the strawman Section V-B's "intelligent
        attack" defeats: the attacker spares HELLOs and concentrates on
        the later messages, likely hitting the one chosen code.
        """
        phy = self._phy
        hello_survivors: List[int] = []
        for code in shared_codes:
            if phy is not None:
                delivered = phy.hello_received(code, rng)
            else:
                delivered = not self._jamming.message_jammed(code, rng)
            if delivered:
                hello_survivors.append(int(code))
        surviving: List[int] = []
        if redundancy:
            candidates = hello_survivors
        elif hello_survivors:
            pick = int(rng.integers(0, len(hello_survivors)))
            candidates = [hello_survivors[pick]]
        else:
            candidates = []
        for code in candidates:
            if phy is not None:
                delivered = phy.burst_received(code, rng)
            else:
                delivered = not self._jamming.burst_jammed(code, 3, rng)
            if delivered:
                surviving.append(code)
        success = bool(surviving)
        registry = _metrics()
        if registry.enabled:
            registry.inc(_names.DNDP_PAIRS_SAMPLED)
            registry.inc(
                _names.DNDP_SUCCESSES if success else _names.DNDP_FAILURES
            )
            registry.observe(_names.DNDP_SHARED_CODES, len(shared_codes))
        latency = (
            self.sample_latency(rng) if success and with_latency else None
        )
        return PairOutcome(
            success=success,
            shared_codes=len(shared_codes),
            surviving_codes=tuple(surviving),
            latency=latency,
        )

    def sample_latency(self, rng: np.random.Generator) -> float:
        """Sample the handshake latency per Theorem 2's structure.

        ``T_i = t_rB + t_dB + t_rA + t_dA`` with the first three uniform
        in ``[0, t_p]`` and ``t_dA`` uniform in ``[0, lambda t_h]``, plus
        ``T_a`` = two auth transmissions and two key computations.
        """
        t = self._timing
        t_i = (
            rng.uniform(0.0, t.t_process)
            + rng.uniform(0.0, t.t_process)
            + rng.uniform(0.0, t.t_process)
            + rng.uniform(0.0, t.gap_ratio * t.t_hello)
        )
        t_a = 2.0 * t.t_auth_message + 2.0 * self._config.t_key
        return t_i + t_a

    def expected_latency(self) -> float:
        """Theorem 2's closed-form mean ``T_bar_D``."""
        t = self._timing
        t_i = 1.5 * t.t_process + 0.5 * t.gap_ratio * t.t_hello
        t_a = 2.0 * t.t_auth_message + 2.0 * self._config.t_key
        return t_i + t_a


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded exponential-backoff retry/timeout schedule.

    Attempt ``k`` (0-based) waits ``base_timeout * backoff_factor**k``,
    capped at ``max_timeout``; after ``max_attempts`` retransmissions
    the session is declared FAILED.  ``max_attempts = 0`` means no
    timers at all — the legacy fire-and-forget behavior.
    """

    base_timeout: float
    max_attempts: int
    backoff_factor: float = 2.0
    max_timeout: float = float("inf")

    def __post_init__(self) -> None:
        if self.base_timeout <= 0.0:
            raise ProtocolError(
                f"base_timeout must be positive: {self.base_timeout}"
            )
        if self.max_attempts < 0:
            raise ProtocolError(
                f"max_attempts must be non-negative: {self.max_attempts}"
            )
        if self.backoff_factor < 1.0:
            raise ProtocolError(
                f"backoff_factor must be >= 1: {self.backoff_factor}"
            )
        if self.max_timeout < self.base_timeout:
            raise ProtocolError(
                "max_timeout cannot be below base_timeout: "
                f"{self.max_timeout} < {self.base_timeout}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any timers should be armed at all."""
        return self.max_attempts > 0

    def timeout_for(self, attempt: int) -> float:
        """The wait before timing out attempt ``attempt`` (0-based)."""
        if attempt < 0:
            raise ProtocolError(f"attempt must be non-negative: {attempt}")
        return min(
            self.base_timeout * self.backoff_factor**attempt,
            self.max_timeout,
        )

    def schedule(self) -> tuple:
        """All waits in order: the initial send plus each retry."""
        return tuple(
            self.timeout_for(attempt)
            for attempt in range(self.max_attempts + 1)
        )

    @property
    def total_budget(self) -> float:
        """Worst-case total wait before a session is declared FAILED."""
        return sum(self.schedule())


class SessionState(enum.Enum):
    """Stages of an event-driven D-NDP session."""

    IDLE = "idle"
    BROADCASTING = "broadcasting"          # initiator: sending HELLOs
    AWAIT_CONFIRM = "await-confirm"        # initiator: listening
    CONFIRMING = "confirming"              # responder: sending CONFIRMs
    AWAIT_AUTH_RESPONSE = "await-auth2"    # initiator: sent AUTH_REQUEST
    ESTABLISHED = "established"
    FAILED = "failed"


@dataclass
class DNDPSession:
    """Per-peer handshake state inside a :class:`JRSNDNode`.

    One node keeps at most one session per peer; the redundancy design
    is captured by :attr:`codes` — every shared code observed for this
    peer, all of which spread the post-HELLO messages.
    """

    peer: NodeId
    initiator: bool
    state: SessionState = SessionState.IDLE
    codes: Set[int] = field(default_factory=set)
    my_nonce: Optional[int] = None
    peer_nonce: Optional[int] = None
    shared_key: Optional[bytes] = None
    session_code: Optional[SpreadCode] = None
    started_at: float = 0.0
    established_at: Optional[float] = None
    # Retry/timeout bookkeeping: how many retransmissions this session
    # has burned, and a token that invalidates stale timer callbacks
    # (each armed timer captures the current token; a timer whose token
    # no longer matches belongs to a superseded attempt and must no-op).
    attempts: int = 0
    timer_token: int = 0
    # Pool codes this session holds a real-time monitor refcount on.
    # Monitors must be acquired/released exactly once per session per
    # code, or one session's teardown can strip the monitoring another
    # still needs — tracking them here makes release idempotent.
    monitored: Set[int] = field(default_factory=set)

    def add_code(self, code_index: int) -> None:
        """Record one more shared code observed for this peer."""
        self.codes.add(int(code_index))

    def bump_timer(self) -> int:
        """Invalidate outstanding timers; returns the fresh token."""
        self.timer_token += 1
        return self.timer_token

    def require_state(self, *allowed: SessionState) -> None:
        """Guard against out-of-order protocol events."""
        if self.state not in allowed:
            raise ProtocolError(
                f"session with {self.peer!r} in state {self.state.value}; "
                f"expected one of {[s.value for s in allowed]}"
            )

    @property
    def latency(self) -> Optional[float]:
        """Measured handshake latency once established."""
        if self.established_at is None:
            return None
        return self.established_at - self.started_at

"""The paper's contribution: D-NDP, M-NDP, and the combined JR-SND.

- :mod:`repro.core.config` — every parameter of Table I plus the field
  geometry, with validation and derived quantities.
- :mod:`repro.core.timing` — the Section V-B timing model: ``t_h``,
  ``t_b``, ``t_p``, ``lambda``, ``r`` and the message lengths.
- :mod:`repro.core.messages` — typed protocol messages with canonical
  byte encodings for signing and MACs.
- :mod:`repro.core.dndp` — the direct neighbor discovery protocol, both
  as an event-driven cryptographic state machine and as the per-pair
  Monte Carlo sampler the figure experiments use.
- :mod:`repro.core.mndp` — the multi-hop protocol: signed request
  flooding, response routing, and the logical-graph closure model.
- :mod:`repro.core.jrsnd` — a full JR-SND node for event-driven runs and
  the combined outcome model.
"""

from repro.core.config import JRSNDConfig, default_config
from repro.core.dndp import DNDPSampler, DNDPSession, PairOutcome
from repro.core.jrsnd import JRSNDNode, JRSNDOutcome
from repro.core.mndp import LogicalGraph, MNDPSampler
from repro.core.neighbors import NeighborTable
from repro.core.timing import ProtocolTiming
from repro.core.wire import WireCodec

__all__ = [
    "JRSNDConfig",
    "default_config",
    "ProtocolTiming",
    "NeighborTable",
    "WireCodec",
    "DNDPSession",
    "DNDPSampler",
    "PairOutcome",
    "MNDPSampler",
    "LogicalGraph",
    "JRSNDNode",
    "JRSNDOutcome",
]

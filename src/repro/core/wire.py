"""Bit-level wire serialization of the protocol messages.

The event-driven simulator carries typed message objects for speed; this
module provides the real over-the-air encoding — every message of
Section V serialized to the bit layout the paper accounts for, wrapped
in a :class:`repro.dsss.frame.Frame`, and parseable back after a trip
through the chip-level channel.  The integration tests send a signed
M-NDP request through actual chips with this codec.

Field layout (widths from the configuration):

- HELLO / CONFIRM:       ``[id: l_id]``
- AUTH_REQUEST/RESPONSE: ``[id: l_id][nonce: l_n][mac: l_mac]``
- MNDP_REQUEST:  ``[id][count: 8][ids...][nonce: l_n][hops: l_nu]``
  ``[has_pos: 1]([x: 32][y: 32])[sig: l_sig]``
  ``[ext_count: 8]`` then per extension ``[id][count: 8][ids...][sig]``
- MNDP_RESPONSE: ``[src][via][resp][count: 8][ids...][nonce: l_n]``
  ``[hops: l_nu][sig: l_sig][ext_count: 8]`` + extensions as above.

Signatures travel at the paper's ``l_sig`` width (the 256-bit tag plus
deterministic padding, checked on parse); MAC tags at ``l_mac``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import JRSNDConfig
from repro.core.messages import (
    AuthRequest,
    AuthResponse,
    Confirm,
    Hello,
    MNDPExtension,
    MNDPRequest,
    MNDPResponse,
)
from repro.crypto.identity import NodeId
from repro.crypto.signatures import IdentitySignature
from repro.dsss.frame import Frame, MessageType
from repro.errors import ConfigurationError, DecodeError
from repro.utils.bitstring import bits_from_bytes, bits_from_int, bits_to_int

__all__ = ["WireCodec"]

_TAG_BYTES = 32
_COUNT_BITS = 8
_COORD_BITS = 32
_COORD_SCALE = 100.0  # centimeter resolution


class _BitWriter:
    """Accumulates fixed-width fields into one bit array."""

    def __init__(self) -> None:
        self._parts: List[np.ndarray] = []

    def put_int(self, value: int, width: int) -> None:
        self._parts.append(bits_from_int(int(value), width))

    def put_bytes_bits(self, data: bytes, width: int) -> None:
        """First ``width`` bits of ``data`` (which must cover them)."""
        bits = bits_from_bytes(data)
        if bits.size < width:
            raise ConfigurationError(
                f"{len(data)} bytes cannot fill {width} bits"
            )
        self._parts.append(bits[:width])

    def bits(self) -> np.ndarray:
        if not self._parts:
            return np.zeros(0, dtype=np.int8)
        return np.concatenate(self._parts).astype(np.int8)


class _BitReader:
    """Consumes fixed-width fields from a bit array."""

    def __init__(self, bits: np.ndarray) -> None:
        self._bits = np.asarray(bits, dtype=np.int8)
        self._offset = 0

    def take_int(self, width: int) -> int:
        return bits_to_int(self._take(width))

    def take_bytes(self, width: int) -> bytes:
        """``width`` bits zero-padded up to whole bytes."""
        bits = self._take(width)
        pad = (-bits.size) % 8
        padded = np.concatenate(
            [bits, np.zeros(pad, dtype=np.int8)]
        )
        return np.packbits(padded.astype(np.uint8)).tobytes()

    def _take(self, width: int) -> np.ndarray:
        if self._offset + width > self._bits.size:
            raise DecodeError(
                f"wire message truncated: wanted {width} bits at offset "
                f"{self._offset} of {self._bits.size}"
            )
        out = self._bits[self._offset : self._offset + width]
        self._offset += width
        return out

    @property
    def remaining(self) -> int:
        return self._bits.size - self._offset


class WireCodec:
    """Serializes protocol messages to frames and back.

    Parameters
    ----------
    config:
        Supplies every field width (``l_id``, ``l_n``, ``l_mac``,
        ``l_sig``, ``l_nu``).
    """

    def __init__(self, config: JRSNDConfig) -> None:
        self._config = config

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def encode(self, message: object) -> Frame:
        """Serialize any protocol message into a typed frame."""
        if isinstance(message, Hello):
            return self._encode_beacon(MessageType.HELLO, message.sender)
        if isinstance(message, Confirm):
            return self._encode_beacon(MessageType.CONFIRM, message.sender)
        if isinstance(message, AuthRequest):
            return self._encode_auth(MessageType.AUTH_REQUEST, message)
        if isinstance(message, AuthResponse):
            return self._encode_auth(MessageType.AUTH_RESPONSE, message)
        if isinstance(message, MNDPRequest):
            return self._encode_request(message)
        if isinstance(message, MNDPResponse):
            return self._encode_response(message)
        raise ConfigurationError(
            f"cannot serialize {type(message).__name__}"
        )

    def _encode_beacon(
        self, message_type: MessageType, sender: NodeId
    ) -> Frame:
        writer = _BitWriter()
        writer.put_int(sender.value, self._config.id_bits)
        return Frame(message_type, writer.bits())

    def _encode_auth(self, message_type: MessageType, message) -> Frame:
        c = self._config
        writer = _BitWriter()
        writer.put_int(message.sender.value, c.id_bits)
        writer.put_int(message.nonce, c.nonce_bits)
        writer.put_bytes_bits(message.mac_tag, c.mac_bits)
        return Frame(message_type, writer.bits())

    def _put_id_list(self, writer: _BitWriter, ids: Tuple[NodeId, ...]) -> None:
        if len(ids) >= 1 << _COUNT_BITS:
            raise ConfigurationError(
                f"neighbor list of {len(ids)} exceeds the count field"
            )
        writer.put_int(len(ids), _COUNT_BITS)
        for node_id in ids:
            writer.put_int(node_id.value, self._config.id_bits)

    def _put_signature(
        self, writer: _BitWriter, signature: IdentitySignature
    ) -> None:
        writer.put_bytes_bits(
            signature.wire_bytes(self._config.signature_bits),
            self._config.signature_bits,
        )

    def _put_extensions(
        self, writer: _BitWriter, extensions: Tuple[MNDPExtension, ...]
    ) -> None:
        writer.put_int(len(extensions), _COUNT_BITS)
        for extension in extensions:
            writer.put_int(extension.node.value, self._config.id_bits)
            self._put_id_list(writer, extension.neighbors)
            self._put_signature(writer, extension.signature)

    def _encode_request(self, message: MNDPRequest) -> Frame:
        c = self._config
        writer = _BitWriter()
        writer.put_int(message.source.value, c.id_bits)
        self._put_id_list(writer, message.source_neighbors)
        writer.put_int(message.nonce, c.nonce_bits)
        writer.put_int(message.hop_budget, c.hop_field_bits)
        if message.source_position is not None:
            writer.put_int(1, 1)
            for coordinate in message.source_position:
                writer.put_int(
                    int(round(coordinate * _COORD_SCALE)), _COORD_BITS
                )
        else:
            writer.put_int(0, 1)
        self._put_signature(writer, message.source_signature)
        self._put_extensions(writer, message.extensions)
        return Frame(MessageType.MNDP_REQUEST, writer.bits())

    def _encode_response(self, message: MNDPResponse) -> Frame:
        c = self._config
        writer = _BitWriter()
        writer.put_int(message.source.value, c.id_bits)
        writer.put_int(message.via.value, c.id_bits)
        writer.put_int(message.responder.value, c.id_bits)
        self._put_id_list(writer, message.responder_neighbors)
        writer.put_int(message.nonce, c.nonce_bits)
        writer.put_int(message.hop_budget, c.hop_field_bits)
        self._put_signature(writer, message.responder_signature)
        self._put_extensions(writer, message.extensions)
        return Frame(MessageType.MNDP_RESPONSE, writer.bits())

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def decode(self, frame: Frame) -> object:
        """Parse a frame back into its protocol message."""
        reader = _BitReader(frame.payload)
        message_type = frame.message_type
        if message_type is MessageType.HELLO:
            return Hello(self._take_id(reader))
        if message_type is MessageType.CONFIRM:
            return Confirm(self._take_id(reader))
        if message_type is MessageType.AUTH_REQUEST:
            return self._decode_auth(reader, AuthRequest)
        if message_type is MessageType.AUTH_RESPONSE:
            return self._decode_auth(reader, AuthResponse)
        if message_type is MessageType.MNDP_REQUEST:
            return self._decode_request(reader)
        if message_type is MessageType.MNDP_RESPONSE:
            return self._decode_response(reader)
        raise DecodeError(f"unhandled message type {message_type}")

    def _take_id(self, reader: _BitReader) -> NodeId:
        return NodeId(
            reader.take_int(self._config.id_bits), self._config.id_bits
        )

    def _decode_auth(self, reader: _BitReader, cls) -> object:
        c = self._config
        sender = self._take_id(reader)
        nonce = reader.take_int(c.nonce_bits)
        mac_tag = reader.take_bytes(c.mac_bits)
        return cls(sender=sender, nonce=nonce, mac_tag=mac_tag)

    def _take_id_list(self, reader: _BitReader) -> Tuple[NodeId, ...]:
        count = reader.take_int(_COUNT_BITS)
        return tuple(self._take_id(reader) for _ in range(count))

    def _take_signature(
        self, reader: _BitReader, signer: NodeId
    ) -> IdentitySignature:
        raw = reader.take_bytes(self._config.signature_bits)
        tag = raw[:_TAG_BYTES]
        signature = IdentitySignature(signer, tag)
        # Integrity of the padding: a corrupted signature body should
        # not silently verify, so the deterministic padding is checked.
        expected = signature.wire_bytes(self._config.signature_bits)
        actual_len = (self._config.signature_bits + 7) // 8
        if raw[:actual_len] != expected[:actual_len]:
            raise DecodeError("signature padding mismatch")
        return signature

    def _take_extensions(
        self, reader: _BitReader
    ) -> Tuple[MNDPExtension, ...]:
        count = reader.take_int(_COUNT_BITS)
        extensions = []
        for _ in range(count):
            node = self._take_id(reader)
            neighbors = self._take_id_list(reader)
            signature = self._take_signature(reader, node)
            extensions.append(
                MNDPExtension(
                    node=node, neighbors=neighbors, signature=signature
                )
            )
        return tuple(extensions)

    def _decode_request(self, reader: _BitReader) -> MNDPRequest:
        c = self._config
        source = self._take_id(reader)
        neighbors = self._take_id_list(reader)
        nonce = reader.take_int(c.nonce_bits)
        hop_budget = reader.take_int(c.hop_field_bits)
        position: Optional[Tuple[float, float]] = None
        if reader.take_int(1):
            x = reader.take_int(_COORD_BITS) / _COORD_SCALE
            y = reader.take_int(_COORD_BITS) / _COORD_SCALE
            position = (x, y)
        signature = self._take_signature(reader, source)
        extensions = self._take_extensions(reader)
        return MNDPRequest(
            source=source,
            source_neighbors=neighbors,
            nonce=nonce,
            hop_budget=hop_budget,
            source_signature=signature,
            extensions=extensions,
            source_position=position,
        )

    def _decode_response(self, reader: _BitReader) -> MNDPResponse:
        c = self._config
        source = self._take_id(reader)
        via = self._take_id(reader)
        responder = self._take_id(reader)
        neighbors = self._take_id_list(reader)
        nonce = reader.take_int(c.nonce_bits)
        hop_budget = reader.take_int(c.hop_field_bits)
        signature = self._take_signature(reader, responder)
        extensions = self._take_extensions(reader)
        return MNDPResponse(
            source=source,
            via=via,
            responder=responder,
            responder_neighbors=neighbors,
            nonce=nonce,
            hop_budget=hop_budget,
            responder_signature=signature,
            extensions=extensions,
        )

"""Logical-neighbor maintenance under mobility.

Section IV-A: a node that detects no transmission under a real-time
monitored code for a threshold amount of time stops monitoring it,
assuming the corresponding neighbor moved out of range.  Because
discovery is periodic, expired neighbors are simply re-discovered on a
later D-NDP/M-NDP round if they return.

:class:`NeighborTable` tracks per-peer last-activity timestamps;
:class:`repro.core.jrsnd.JRSNDNode` touches it on every session-code
delivery and exposes ``expire_stale_neighbors``/``start_maintenance``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.errors import ConfigurationError
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["NeighborTable"]


class NeighborTable:
    """Last-activity bookkeeping for real-time monitored peers."""

    def __init__(self) -> None:
        self._last_activity: Dict[Hashable, float] = {}

    def __len__(self) -> int:
        return len(self._last_activity)

    def __contains__(self, peer: Hashable) -> bool:
        return peer in self._last_activity

    def touch(self, peer: Hashable, now: float) -> None:
        """Record traffic from ``peer`` at time ``now``.

        Time must not run backwards for a given peer.
        """
        check_non_negative("now", now)
        previous = self._last_activity.get(peer)
        if previous is not None and now < previous:
            raise ConfigurationError(
                f"activity time went backwards for {peer!r}: "
                f"{now} < {previous}"
            )
        self._last_activity[peer] = float(now)

    def last_activity(self, peer: Hashable) -> float:
        """Last recorded traffic time for ``peer``."""
        if peer not in self._last_activity:
            raise ConfigurationError(f"unknown peer {peer!r}")
        return self._last_activity[peer]

    def idle_time(self, peer: Hashable, now: float) -> float:
        """Seconds since the last traffic from ``peer``."""
        return float(now) - self.last_activity(peer)

    def stale_peers(self, now: float, threshold: float) -> List[Hashable]:
        """Peers with no traffic for more than ``threshold`` seconds."""
        check_positive("threshold", threshold)
        return [
            peer
            for peer, last in self._last_activity.items()
            if float(now) - last > threshold
        ]

    def forget(self, peer: Hashable) -> None:
        """Remove a peer from the table (idempotent)."""
        self._last_activity.pop(peer, None)

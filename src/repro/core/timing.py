"""The Section V-B timing model.

All the time quantities D-NDP's schedule is built from:

- ``t_h = l_h N / R`` — one HELLO copy under one code;
- ``t_b = (m + 1) t_h`` — buffering duration guaranteeing a complete
  copy regardless of alignment;
- ``lambda = rho N m R`` — processing/buffering gap ratio;
- ``t_p = lambda t_b`` — time to scan one buffer against all ``m`` codes;
- ``r = ceil((lambda + 1)(m + 1) / m)`` — HELLO rounds so the broadcast
  spans ``(lambda + 1) t_b`` and covers some buffered window at any
  schedule phase.
"""

from __future__ import annotations

import math

from repro.core.config import JRSNDConfig
from repro.dsss.receiver import BufferSchedule, required_hello_rounds

__all__ = ["ProtocolTiming"]


class ProtocolTiming:
    """Derives every Section V-B time constant from a configuration."""

    def __init__(self, config: JRSNDConfig) -> None:
        self._config = config

    @property
    def config(self) -> JRSNDConfig:
        """The underlying configuration."""
        return self._config

    @property
    def t_hello(self) -> float:
        """``t_h``: seconds per HELLO copy under one code."""
        c = self._config
        return c.hello_coded_bits * c.code_length / c.chip_rate

    @property
    def code_cycle(self) -> int:
        """HELLO slots per round: ``ceil(m / k)`` with ``k`` transmit
        antennas broadcasting distinct codes in parallel (k = 1 in the
        paper; more is its future-work extension)."""
        return math.ceil(
            self._config.codes_per_node / self._config.tx_antennas
        )

    @property
    def t_round(self) -> float:
        """One round = all ``m`` codes, ``tx_antennas`` at a time."""
        return self.code_cycle * self.t_hello

    @property
    def t_buffer(self) -> float:
        """``t_b = (cycle + 1) t_h`` — one full code cycle plus one
        slot guarantees a complete copy of any given code's HELLO in
        the buffer (``(m + 1) t_h`` in the paper's single-antenna
        case)."""
        return (self.code_cycle + 1) * self.t_hello

    @property
    def gap_ratio(self) -> float:
        """``lambda = rho N m R``."""
        c = self._config
        return c.rho * c.code_length * c.codes_per_node * c.chip_rate

    @property
    def t_process(self) -> float:
        """``t_p = lambda t_b``."""
        return self.gap_ratio * self.t_buffer

    @property
    def hello_rounds(self) -> int:
        """``r = ceil((lambda + 1)(cycle + 1) / cycle)`` — the paper's
        ``ceil((lambda + 1)(m + 1) / m)`` for one transmit antenna.

        Evaluated in exact integer arithmetic
        (:func:`repro.dsss.receiver.required_hello_rounds`): the float
        division-then-ceil form can land one round off near integer
        quotients, which here means an under-covering broadcast.
        """
        return required_hello_rounds(self.gap_ratio, self.code_cycle)

    @property
    def hello_broadcast_duration(self) -> float:
        """Total HELLO broadcast time ``r m t_h >= (lambda + 1) t_b``."""
        return self.hello_rounds * self.t_round

    @property
    def t_auth_message(self) -> float:
        """Transmission delay of one authentication message
        ``l_f N / R``."""
        c = self._config
        return c.auth_frame_bits * c.code_length / c.chip_rate

    @property
    def t_confirm(self) -> float:
        """One CONFIRM copy: same frame layout as HELLO but carrying the
        responder ID, so the same duration ``t_h``."""
        return self.t_hello

    @property
    def handshake_timeout(self) -> float:
        """Base timeout for the AUTH round trip of the handshake.

        A generous bound on the benign worst case — the peer's buffered
        decode (``t_b + t_p``), both key computations, and a few auth
        transmissions — so in a fault-free run the timer never fires
        before the AUTH_RESPONSE arrives and retries stay silent.
        """
        c = self._config
        return (
            2.0 * (self.t_process + self.t_buffer)
            + 2.0 * c.t_key
            + 6.0 * self.t_auth_message
        )

    def schedule(self, phase: float = 0.0) -> BufferSchedule:
        """A node's buffer/process schedule at the given phase offset.

        When processing outpaces buffering (``lambda < 1``, possible for
        tiny ``m``) the schedule degenerates to back-to-back buffering;
        ``BufferSchedule`` requires ``t_p >= t_b`` so we clamp.
        """
        t_process = max(self.t_process, self.t_buffer)
        return BufferSchedule(self.t_buffer, t_process, phase=phase)

    def mndp_request_bits(self, hop: int, neighbor_count: int) -> int:
        """Wire bits of an M-NDP request after ``hop`` extensions.

        Each relay appends its ID, its neighbor list, and a signature;
        the base request carries the source ID, neighbor list, nonce,
        the ``l_nu`` hop field, and the source signature.
        """
        c = self._config
        per_node = (neighbor_count + 1) * c.id_bits + c.signature_bits
        return (
            (hop + 1) * per_node + c.nonce_bits + c.hop_field_bits
        )

    def theorem4_t_nu(self, nu: int, degree: float) -> float:
        """Theorem 4's transmission-delay term ``T_nu``.

        ``T_nu = N/R * (3 nu (nu+1)/2 * ((g+1) l_id + 2 l_sig)
        + 2 nu (l_n + l_nu))``.
        """
        c = self._config
        per_hop = (degree + 1.0) * c.id_bits + 2.0 * c.signature_bits
        return (
            c.code_length
            / c.chip_rate
            * (
                3.0 * nu * (nu + 1) / 2.0 * per_hop
                + 2.0 * nu * (c.nonce_bits + c.hop_field_bits)
            )
        )

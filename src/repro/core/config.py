"""JR-SND configuration (Table I of the paper, plus field geometry).

Every symbol the paper uses appears here under a readable name with the
paper's letter documented.  :func:`default_config` returns the exact
Table I defaults used throughout the evaluation section.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
)

__all__ = ["JRSNDConfig", "default_config"]


@dataclass(frozen=True)
class JRSNDConfig:
    """All parameters of a JR-SND deployment.

    Attributes (paper symbol in parentheses)
    ----------------------------------------
    n_nodes (n):
        Number of MANET nodes.
    codes_per_node (m):
        Spread codes preloaded per node.
    share_count (l):
        Nodes sharing each pool code.
    n_compromised (q):
        Compromised nodes assumed by the adversary model.
    code_length (N):
        Spread-code length in chips.
    chip_rate (R):
        DSSS chip rate in chips per second.
    rho:
        Seconds per correlated bit at the receiver (``rho``).
    mu:
        ECC expansion parameter.
    nu:
        Maximum M-NDP hop count.
    type_bits (l_t), id_bits (l_id), nonce_bits (l_n):
        Field widths of the over-the-air messages.
    auth_frame_bits (l_f):
        Coded length of each authentication message.
    hop_field_bits (l_nu):
        Width of the M-NDP hop-budget field.
    signature_bits (l_sig):
        Wire width of an ID-based signature.
    t_key, t_sig, t_ver:
        Crypto timing (seconds).
    z_jamming_signals (z):
        Parallel jamming signals available to the adversary.
    revocation_gamma (gamma):
        Invalid-request threshold for local code revocation.
    tau:
        DSSS correlation decision threshold.
    field_width, field_height:
        Deployment field in meters.
    tx_range (a):
        Transmission range in meters.
    use_gps:
        Enable Section V-C's optional false-positive elimination: nodes
        include their position in M-NDP requests and peers only respond
        when the source is within transmission range.
    tx_antennas:
        Transmit antennas available for parallel HELLO broadcasts (the
        paper assumes 1 TX + 1 RX and leaves more as future work; this
        implements that extension for the antenna ablation).
    wire_fidelity:
        Event-simulation option: serialize every protocol message to
        its bit-level wire format before transmission and parse it on
        delivery, instead of passing typed objects.  Slower, but any
        divergence between the object model and the wire encoding
        surfaces immediately.
    retry_max_attempts:
        Bounded-retry limit for the AUTH leg of the D-NDP handshake: an
        initiator that sent AUTH_REQUEST and hears nothing retransmits
        up to this many times (exponential backoff), then marks the
        session FAILED and releases its monitors.  0 disables the
        timers entirely, restoring the original fire-and-forget
        behavior.
    retry_backoff_factor:
        Multiplier between consecutive retry timeouts (>= 1).
    mndp_ttl:
        Simulated seconds an M-NDP frame may wait in the pending queue
        (and the age bound for the request dedup / return-route state)
        before being garbage-collected.
    mndp_max_requeues:
        How many times a queued M-NDP frame may be requeued after its
        target session vanished again before it is dropped.
    mndp_queue_capacity:
        Per-node bound on queued M-NDP frames; pushes beyond it are
        dropped (and counted) instead of growing without bound.
    correlation_backend:
        How chip-level receivers evaluate the sliding-window correlation
        search: ``"batched"`` (default; block matmul, FFT for large N),
        ``"naive"`` (the per-position reference loop), or ``"fft"``
        (force the FFT cross-correlation path).  All backends produce
        identical lock decisions and work counts; only the wall-clock
        cost differs.
    ecc_backend:
        How Reed-Solomon arithmetic is evaluated: ``"vectorized"``
        (default; NumPy GF(256) table-lookup kernels) or ``"naive"``
        (the per-symbol reference loops).  Both produce bit-identical
        codewords, decoded bytes, and error behavior.
    phy_backend:
        How the Monte Carlo experiments decide per-message outcomes:
        ``"message"`` (default; the paper's per-message Bernoulli
        model), ``"chip"`` (real waveforms on a
        :class:`~repro.dsss.channel.ChipChannel`, recovered with the
        sliding-window synchronizer), or ``"chipless"`` (the analytic
        backend: identical outcomes computed in closed form from
        correlation statistics, no chips materialised).  ``chip`` and
        ``chipless`` consume identical rng streams and are
        outcome-identical at ``phy_noise_std = 0``.
    phy_noise_std:
        Per-chip AWGN sigma applied by the chip/chipless PHY backends
        (0 = noiseless, the default).
    phy_jam_amplitude:
        Jam power relative to the legitimate signal in the chip and
        chipless backends.  2.0 (default) makes a disagreeing jam bit
        flip the block decision; 1.0 cancels it into an erasure.
    """

    n_nodes: int = 2000
    codes_per_node: int = 100
    share_count: int = 40
    n_compromised: int = 20
    code_length: int = 512
    chip_rate: float = 22e6
    rho: float = 1e-11
    mu: float = 1.0
    nu: int = 2
    type_bits: int = 5
    id_bits: int = 16
    nonce_bits: int = 20
    auth_frame_bits: int = 160
    hop_field_bits: int = 4
    signature_bits: int = 672
    t_key: float = 11e-3
    t_sig: float = 5.7e-3
    t_ver: float = 35.5e-3
    z_jamming_signals: int = 8
    revocation_gamma: int = 5
    tau: float = 0.15
    field_width: float = 5000.0
    field_height: float = 5000.0
    tx_range: float = 300.0
    use_gps: bool = False
    tx_antennas: int = 1
    retry_max_attempts: int = 2
    retry_backoff_factor: float = 2.0
    mndp_ttl: float = 120.0
    mndp_max_requeues: int = 3
    mndp_queue_capacity: int = 128
    wire_fidelity: bool = False
    correlation_backend: str = "batched"
    ecc_backend: str = "vectorized"
    phy_backend: str = "message"
    phy_noise_std: float = 0.0
    phy_jam_amplitude: float = 2.0

    def __post_init__(self) -> None:
        check_positive("n_nodes", self.n_nodes)
        check_positive("codes_per_node", self.codes_per_node)
        if not 2 <= self.share_count <= self.n_nodes:
            raise ConfigurationError(
                f"share_count (l) must be in [2, n], got {self.share_count}"
            )
        check_non_negative("n_compromised", self.n_compromised)
        if self.n_compromised > self.n_nodes:
            raise ConfigurationError(
                "n_compromised (q) cannot exceed n_nodes"
            )
        check_positive("code_length", self.code_length)
        check_positive("chip_rate", self.chip_rate)
        check_positive("rho", self.rho)
        check_positive("mu", self.mu)
        check_positive("nu", self.nu)
        for name in ("type_bits", "id_bits", "nonce_bits",
                     "auth_frame_bits", "hop_field_bits", "signature_bits"):
            check_positive(name, getattr(self, name))
        for name in ("t_key", "t_sig", "t_ver"):
            check_non_negative(name, getattr(self, name))
        check_positive("z_jamming_signals", self.z_jamming_signals)
        check_positive("revocation_gamma", self.revocation_gamma)
        check_fraction("tau", self.tau)
        if not 0 < self.tau <= 1:
            # (0, 1], matching the synchronizer/despreader: decisions
            # use >= tau, and noiseless self-correlation is exactly 1.0.
            raise ConfigurationError(
                f"tau must be in (0,1], got {self.tau}"
            )
        check_positive("field_width", self.field_width)
        check_positive("field_height", self.field_height)
        check_positive("tx_range", self.tx_range)
        check_positive("tx_antennas", self.tx_antennas)
        check_non_negative("retry_max_attempts", self.retry_max_attempts)
        if self.retry_backoff_factor < 1.0:
            raise ConfigurationError(
                "retry_backoff_factor must be >= 1, got "
                f"{self.retry_backoff_factor}"
            )
        check_positive("mndp_ttl", self.mndp_ttl)
        check_non_negative("mndp_max_requeues", self.mndp_max_requeues)
        check_positive("mndp_queue_capacity", self.mndp_queue_capacity)
        from repro.dsss.engine import CORRELATION_BACKENDS

        if self.correlation_backend not in CORRELATION_BACKENDS:
            raise ConfigurationError(
                f"correlation_backend must be one of "
                f"{CORRELATION_BACKENDS}, got {self.correlation_backend!r}"
            )
        from repro.ecc.reed_solomon import ECC_BACKENDS

        if self.ecc_backend not in ECC_BACKENDS:
            raise ConfigurationError(
                f"ecc_backend must be one of {ECC_BACKENDS}, "
                f"got {self.ecc_backend!r}"
            )
        from repro.dsss.phy import PHY_BACKENDS

        if self.phy_backend not in PHY_BACKENDS:
            raise ConfigurationError(
                f"phy_backend must be one of {PHY_BACKENDS}, "
                f"got {self.phy_backend!r}"
            )
        check_non_negative("phy_noise_std", self.phy_noise_std)
        check_positive("phy_jam_amplitude", self.phy_jam_amplitude)
        if self.tx_antennas > self.codes_per_node:
            raise ConfigurationError(
                "tx_antennas cannot exceed codes_per_node: there are "
                "only m distinct codes to broadcast in parallel"
            )

    # -- derived quantities ------------------------------------------------

    @property
    def subsets_per_round(self) -> int:
        """``w = ceil(n / l)``."""
        return math.ceil(self.n_nodes / self.share_count)

    @property
    def pool_size(self) -> int:
        """``s = w * m``."""
        return self.subsets_per_round * self.codes_per_node

    @property
    def hello_plain_bits(self) -> int:
        """Un-coded HELLO length ``l_t + l_id``."""
        return self.type_bits + self.id_bits

    @property
    def hello_coded_bits(self) -> int:
        """The paper's ``l_h = (1 + mu)(l_t + l_id)``."""
        return int(round((1.0 + self.mu) * self.hello_plain_bits))

    @property
    def auth_plain_bits(self) -> int:
        """Un-coded auth message length ``l_id + l_n + l_mac``."""
        return int(round(self.auth_frame_bits / (1.0 + self.mu)))

    @property
    def mac_bits(self) -> int:
        """``l_mac`` implied by ``l_f = (1+mu)(l_id + l_n + l_mac)``."""
        l_mac = self.auth_plain_bits - self.id_bits - self.nonce_bits
        if l_mac <= 0:
            raise ConfigurationError(
                f"auth_frame_bits={self.auth_frame_bits} leaves no room "
                "for a MAC tag"
            )
        return l_mac

    @property
    def expected_degree(self) -> float:
        """Mean physical neighbors ``g`` for uniform placement."""
        return (
            (self.n_nodes - 1)
            * math.pi
            * self.tx_range**2
            / (self.field_width * self.field_height)
        )

    def replace(self, **changes: object) -> "JRSNDConfig":
        """A copy with the given fields changed (validates again)."""
        return dataclasses.replace(self, **changes)


def default_config() -> JRSNDConfig:
    """The exact Table I defaults."""
    return JRSNDConfig()

"""An event-driven JR-SND node: D-NDP + M-NDP with real cryptography.

:class:`JRSNDNode` runs the full protocol of Section V on the
discrete-event kernel: it broadcasts ECC-framed HELLOs under each of its
pool codes, models the buffer/process schedule when receiving on codes
it is not monitoring in real time, performs the CONFIRM / AUTH handshake
with genuine pairwise keys and MACs, derives session spread codes, and
executes the signed multi-hop M-NDP including relay routing and the
final HELLO/CONFIRM confirmation over the fresh session code (which is
also what eliminates M-NDP false positives when GPS filtering is off —
an out-of-range "neighbor" can never complete the exchange).

Timing fidelity: transmissions occupy the medium for their paper-model
durations, buffered receptions are delayed per the node's
:class:`~repro.dsss.receiver.BufferSchedule`, and crypto operations
charge Table I costs on the simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.config import JRSNDConfig
from repro.core.dndp import DNDPSession, RetryPolicy, SessionState
from repro.core.messages import (
    AuthRequest,
    AuthResponse,
    Confirm,
    Hello,
    MNDPExtension,
    MNDPRequest,
    MNDPResponse,
    nonce_bytes,
)
from repro.core.mndp import (
    PendingRequestQueue,
    validate_request_chain,
    validate_response_chain,
)
from repro.core.neighbors import NeighborTable
from repro.core.timing import ProtocolTiming
from repro.core.wire import WireCodec
from repro.crypto.identity import IBCPrivateKey, NodeId
from repro.crypto.mac import MessageAuthenticator
from repro.crypto.nonces import NonceGenerator, ReplayCache
from repro.crypto.session import derive_session_code
from repro.crypto.signatures import SignatureScheme
from repro.dsss.engine import make_engine
from repro.dsss.spread_code import SpreadCode
from repro.dsss.synchronizer import SlidingWindowSynchronizer
from repro.errors import (
    ConfigurationError,
    DecodeError,
    ProtocolError,
    RevokedCodeError,
)
from repro.obs import current as _obs
from repro.obs import names as _names
from repro.utils.artifact_cache import shared_cache
from repro.predistribution.revocation import RevocationList
from repro.sim.engine import Simulator, Timeout
from repro.sim.field import Position
from repro.sim.medium import RadioMedium, Transmission
from repro.sim.trace import TraceRecorder

__all__ = ["JRSNDNode", "JRSNDOutcome", "FakeSignedRequest"]


@dataclass(frozen=True)
class JRSNDOutcome:
    """Summary of one node's discoveries at the end of a run."""

    node: int
    logical_neighbors: Tuple[int, ...]
    dndp_count: int
    mndp_count: int

    @property
    def total(self) -> int:
        """Total logical neighbors discovered."""
        return len(self.logical_neighbors)


@dataclass(frozen=True)
class FakeSignedRequest:
    """An adversary-injected frame that fails signature verification.

    Carries no valid content; its only effect is to cost the victim one
    ``t_ver`` and bump the revocation counter of the pool code it was
    spread with (Section V-D).
    """

    claimed_sender: NodeId


@dataclass
class _SessionCodeState:
    """A pending or established session spread code with one peer."""

    peer: NodeId
    code: SpreadCode
    confirmed: bool = False


class JRSNDNode:
    """One MANET node running JR-SND on the event kernel.

    Parameters
    ----------
    index:
        The node's simulation index (medium address).
    node_id:
        Its IBC identity.
    private_key:
        The authority-issued ID-based private key.
    codes:
        The node's pre-distributed :class:`SpreadCode` objects, whose
        ``code_id`` values are pool indices.
    config, simulator, medium, scheme:
        Shared infrastructure.
    rng:
        The node's private random stream.
    trace:
        Shared trace recorder (counters: ``dndp.established``,
        ``mndp.established``, ``dos.verifications`` ...).
    position:
        Static position; register a custom getter for mobility via
        ``medium.register_node`` before calling :meth:`start`.
    """

    def __init__(
        self,
        index: int,
        node_id: NodeId,
        private_key: IBCPrivateKey,
        codes: Sequence[SpreadCode],
        config: JRSNDConfig,
        simulator: Simulator,
        medium: RadioMedium,
        scheme: SignatureScheme,
        rng: np.random.Generator,
        trace: TraceRecorder,
        position: Position,
    ) -> None:
        if not codes:
            raise ConfigurationError("a node needs at least one spread code")
        self.index = int(index)
        self.node_id = node_id
        self._key = private_key
        self._codes: Dict[int, SpreadCode] = {}
        for code in codes:
            if not isinstance(code.code_id, (int, np.integer)):
                raise ConfigurationError(
                    "pre-distributed codes must carry pool indices"
                )
            self._codes[int(code.code_id)] = code
        self.config = config
        self.timing = ProtocolTiming(config)
        self._sim = simulator
        self._medium = medium
        self._scheme = scheme
        self._rng = rng
        self._trace = trace
        self._position = position
        self._nonces = NonceGenerator(rng, config.nonce_bits)
        self._replay = ReplayCache()
        self.revocation = RevocationList(
            self._codes.keys(), config.revocation_gamma
        )
        phase = float(rng.uniform(0.0, self.timing.t_process))
        self._schedule = self.timing.schedule(phase=phase)
        base_timeout = self.timing.handshake_timeout
        self._retry = RetryPolicy(
            base_timeout=base_timeout,
            max_attempts=config.retry_max_attempts,
            backoff_factor=config.retry_backoff_factor,
            max_timeout=8.0 * base_timeout,
        )
        self._mndp_queue = PendingRequestQueue(
            ttl=config.mndp_ttl,
            max_requeues=config.mndp_max_requeues,
            capacity=config.mndp_queue_capacity,
        )
        self._sessions: Dict[NodeId, DNDPSession] = {}
        self._session_codes: Dict[NodeId, _SessionCodeState] = {}
        self._logical: Dict[NodeId, int] = {}  # peer id -> peer index
        self._dndp_count = 0
        self._mndp_count = 0
        # Real-time monitored pool codes are reference-counted: several
        # concurrent sessions can share one pool code, and one session
        # ending must not stop the monitoring another still needs.
        self._realtime: Dict[int, int] = {}
        # M-NDP dedup keys map to the sim time they were recorded so
        # gc_stale_sessions() can age them out together with the
        # matching return-route entries.
        self._mndp_seen: Dict[Tuple[NodeId, int], float] = {}
        self._mndp_return_route: Dict[Tuple[NodeId, int], NodeId] = {}
        self._peer_index: Dict[NodeId, int] = {}
        self.neighbor_table = NeighborTable()
        self._my_mndp_nonce: Optional[int] = None
        self._wire = WireCodec(config) if config.wire_fidelity else None
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Register with the medium and begin scanning all pool codes."""
        if self._started:
            return
        self._started = True
        self._medium.register_node(self.index, lambda: self._position)
        for pool_index in self._codes:
            self._medium.listen(
                self.index, pool_index, self._on_pool_delivery
            )

    @property
    def position(self) -> Position:
        """Current position."""
        return self._position

    @position.setter
    def position(self, value: Position) -> None:
        self._position = value

    @property
    def logical_neighbors(self) -> Set[NodeId]:
        """IDs of every discovered-and-authenticated neighbor."""
        return set(self._logical)

    def outcome(self) -> JRSNDOutcome:
        """Discovery summary for this node."""
        return JRSNDOutcome(
            node=self.index,
            logical_neighbors=tuple(sorted(self._logical.values())),
            dndp_count=self._dndp_count,
            mndp_count=self._mndp_count,
        )

    def session_with(self, peer: NodeId) -> Optional[DNDPSession]:
        """The D-NDP session with ``peer``, if any."""
        return self._sessions.get(peer)

    def build_synchronizer(
        self,
        message_bits: Optional[int] = None,
        confirm_blocks: int = 3,
    ) -> SlidingWindowSynchronizer:
        """A chip-level synchronizer over this node's active pool codes.

        This is the receiver the timing model charges ``t_p`` for: it
        slides an ``N``-chip window over a buffered signal and correlates
        against every non-revoked pre-distributed code, using the
        correlation backend selected by
        ``config.correlation_backend``.  ``message_bits`` defaults to
        the coded HELLO length ``l_h``.
        """
        codes = [
            self._codes[pool_index]
            for pool_index in sorted(self._codes)
            if self.revocation.is_active(pool_index)
        ]
        if not codes:
            raise ConfigurationError(
                "every pre-distributed code has been revoked; nothing "
                "left to monitor"
            )
        bits = (
            self.config.hello_coded_bits
            if message_bits is None
            else int(message_bits)
        )
        # The engine's stacked code matrix is invariant across rounds
        # and trials for a given (backend, code-set) pair, so it is
        # memoized in the process-local artifact cache; the synchronizer
        # wrapper itself is cheap and built fresh each call.
        backend = self.config.correlation_backend
        cache_key = (
            backend,
            tuple(
                (int(code.code_id), code.chips.tobytes())
                for code in codes
            ),
        )
        engine = shared_cache().get_or_build(
            "correlation_engine",
            cache_key,
            lambda: make_engine(codes, backend),
        )
        return SlidingWindowSynchronizer(
            codes,
            tau=self.config.tau,
            message_bits=bits,
            confirm_blocks=confirm_blocks,
            backend=engine,
        )

    # ------------------------------------------------------------------
    # D-NDP initiator
    # ------------------------------------------------------------------

    def start_periodic_discovery(
        self,
        period: float,
        mndp: bool = True,
        rounds: Optional[int] = None,
    ):
        """Initiate discovery once per ``period`` at a random point.

        Implements Section V-B's randomized periodic initiation: "in
        every interval of length T, each node initiates the D-NDP
        process once at a random time point"; when ``mndp`` is set the
        M-NDP round follows each broadcast.  Runs until the simulation
        ends.
        """
        if period <= 0:
            raise ConfigurationError(f"period must be positive: {period}")

        def periodic() -> Iterator[object]:
            while True:
                yield Timeout(float(self._rng.uniform(0.0, period)))
                broadcast = self.initiate_dndp(rounds=rounds)
                yield broadcast
                if mndp and self._logical:
                    yield self.initiate_mndp()
                remaining = period - (self._sim.now % period)
                yield Timeout(remaining % period or period)

        return self._sim.process(
            periodic(), name=f"periodic@{self.index}"
        )

    def initiate_dndp(self, rounds: Optional[int] = None):
        """Start the D-NDP HELLO broadcast; returns the Process.

        ``rounds`` defaults to the paper's ``r``; tests may lower it.
        """
        n_rounds = self.timing.hello_rounds if rounds is None else int(rounds)
        return self._sim.process(
            self._broadcast_hello(n_rounds), name=f"dndp@{self.index}"
        )

    def _broadcast_hello(self, rounds: int) -> Iterator[object]:
        hello = Hello(self.node_id)
        t_h = self.timing.t_hello
        k = self.config.tx_antennas
        for _ in range(rounds):
            active = sorted(self.revocation.active_codes())
            # k transmit antennas broadcast k distinct codes in parallel
            # per slot (k = 1 in the paper).
            for slot_start in range(0, len(active), k):
                for pool_index in active[slot_start : slot_start + k]:
                    self._medium.transmit(
                        self.index,
                        pool_index,
                        self._to_wire(hello),
                        duration=t_h,
                    )
                yield Timeout(t_h)
        self._trace.log(
            self._sim.now, "dndp.broadcast_done", node=self.index
        )

    # ------------------------------------------------------------------
    # delivery dispatch
    # ------------------------------------------------------------------

    def _to_wire(self, message: object) -> object:
        """Serialize for the air when wire fidelity is on."""
        if self._wire is None or isinstance(message, FakeSignedRequest):
            return message
        return self._wire.encode(message)

    def _from_wire(self, frame: object) -> object:
        """Parse a received frame when wire fidelity is on."""
        from repro.dsss.frame import Frame

        if self._wire is None or not isinstance(frame, Frame):
            return frame
        try:
            return self._wire.decode(frame)
        except (DecodeError, ProtocolError, ConfigurationError):
            # Garbage on the air — jamming residue, truncation, or
            # adversarial bytes — is dropped like channel noise.  Any
            # other exception propagates: a codec bug must not be
            # silently misread as interference.
            self._count(_names.WIRE_UNDECODABLE)
            return None

    def _on_pool_delivery(self, tx: Transmission) -> None:
        """A message arrived under one of this node's pool codes."""
        pool_index = int(tx.code_key)
        if not self.revocation.is_active(pool_index):
            return
        if self._is_realtime(pool_index):
            self._dispatch(tx, delay_known=True)
            return
        # Buffered path: the copy must land inside a buffered window.
        window = self._covering_window(tx.start, tx.end)
        if window is None:
            return
        fraction = (tx.start - window.buffer_start) / max(
            window.duration, 1e-12
        )
        decode_at = window.buffer_end + fraction * (
            window.processing_done - window.buffer_end
        )
        self._sim.call_at(decode_at, self._dispatch, tx, False)

    def _covering_window(self, start: float, end: float):
        for window in self._schedule.windows_between(start, end):
            if window.buffer_start <= start and end <= window.buffer_end:
                return window
        return None

    def _count(self, name: str, amount: int = 1) -> None:
        """Bump a counter in the shared trace and, when a metrics
        registry is installed, mirror it to ``repro.obs``."""
        self._trace.increment(name, amount)
        registry = _obs()
        if registry.enabled:
            registry.inc(name, amount)

    def _is_realtime(self, pool_index: int) -> bool:
        return self._realtime.get(pool_index, 0) > 0

    def _monitor(self, pool_index: int) -> None:
        """Increase the real-time monitoring refcount of a pool code."""
        self._realtime[pool_index] = self._realtime.get(pool_index, 0) + 1

    def _unmonitor(self, pool_index: int) -> None:
        """Decrease the monitoring refcount (no-op at zero)."""
        count = self._realtime.get(pool_index, 0)
        if count <= 1:
            self._realtime.pop(pool_index, None)
        else:
            self._realtime[pool_index] = count - 1

    def _monitor_for(self, session: DNDPSession, pool_index: int) -> None:
        """Acquire a monitor refcount on behalf of ``session``, exactly
        once per (session, code) — re-sends must not double-count."""
        if pool_index in session.monitored:
            return
        session.monitored.add(pool_index)
        self._monitor(pool_index)

    def _release_monitors(self, session: DNDPSession) -> None:
        """Release every refcount ``session`` holds (idempotent)."""
        for pool_index in session.monitored:
            self._unmonitor(pool_index)
        session.monitored.clear()

    def _fail_session(self, session: DNDPSession) -> None:
        """Terminal failure: cancel timers, release monitors."""
        session.state = SessionState.FAILED
        session.bump_timer()
        self._release_monitors(session)

    def _drop_session(self, peer: NodeId, session: DNDPSession) -> None:
        """Forget a dead session and everything it holds: monitor
        refcounts, any unconfirmed session-code listener, and the
        session-table entry itself."""
        session.bump_timer()
        self._release_monitors(session)
        state = self._session_codes.get(peer)
        if state is not None and not state.confirmed:
            self._medium.stop_listening(self.index, state.code.code_id)
            del self._session_codes[peer]
        if self._sessions.get(peer) is session:
            del self._sessions[peer]

    def _dispatch(self, tx: Transmission, delay_known: bool) -> None:
        frame = self._from_wire(tx.frame)
        pool_index = tx.code_key
        if isinstance(frame, Hello):
            self._on_hello(frame, int(pool_index), tx.sender)
        elif isinstance(frame, Confirm):
            self._on_confirm(frame, int(pool_index), tx.sender)
        elif isinstance(frame, AuthRequest):
            self._on_auth_request(frame, int(pool_index), tx.sender)
        elif isinstance(frame, AuthResponse):
            self._on_auth_response(frame, int(pool_index), tx.sender)
        elif isinstance(frame, FakeSignedRequest):
            self._on_fake_request(int(pool_index))
        # Unknown frames are ignored (undecodable content).

    # ------------------------------------------------------------------
    # D-NDP responder / handshake
    # ------------------------------------------------------------------

    def _session_stale(self, session: DNDPSession) -> bool:
        """A non-established session left over from an earlier discovery
        period (FAILED, or pending far longer than a handshake can
        take — the peer moved away mid-exchange) must not block
        re-discovery when the peer returns."""
        if session.state is SessionState.ESTABLISHED:
            return False
        if session.state is SessionState.FAILED:
            return True
        stale_after = 4.0 * (
            self.timing.t_process + self.timing.hello_broadcast_duration
        )
        return (self._sim.now - session.started_at) > stale_after

    def _on_hello(self, hello: Hello, pool_index: int, sender: int) -> None:
        peer = hello.sender
        if peer == self.node_id or peer in self._logical:
            return
        self._peer_index[peer] = sender
        session = self._sessions.get(peer)
        if session is not None and self._session_stale(session):
            # A stale session from an earlier discovery period (e.g.
            # responder timeout, or a handshake cut off by mobility)
            # must not block re-discovery — and must hand back the
            # monitor refcounts it still holds.
            self._drop_session(peer, session)
            session = None
        if session is None:
            session = DNDPSession(
                peer=peer,
                initiator=False,
                state=SessionState.CONFIRMING,
                started_at=self._sim.now,
            )
            self._sessions[peer] = session
            session.add_code(pool_index)
            self._monitor_for(session, pool_index)
            self._sim.process(
                self._send_confirms(session), name=f"confirm@{self.index}"
            )
        elif pool_index not in session.codes:
            session.add_code(pool_index)
            self._monitor_for(session, pool_index)

    def _send_confirms(self, session: DNDPSession) -> Iterator[object]:
        """Responder: repeat CONFIRM on every shared code for up to
        ``t_p`` or until the handshake advances."""
        confirm = Confirm(self.node_id)
        # Seed behavior waited exactly t_p, which at light processing
        # loads (t_p clamped to t_b, a few ms) is shorter than the
        # initiator's t_key — the responder would give up before the
        # peer could possibly answer.  With retries enabled the
        # responder stays available for the initiator's whole retry
        # budget; state advance exits the loop early either way, so
        # fault-free runs never see the difference.
        wait = self.timing.t_process
        if self._retry.enabled:
            wait = max(wait, self._retry.total_budget)
        deadline = self._sim.now + wait
        t_c = self.timing.t_confirm
        while (
            self._sim.now < deadline
            and session.state is SessionState.CONFIRMING
        ):
            for pool_index in sorted(session.codes):
                if not self.revocation.is_active(pool_index):
                    continue
                self._medium.transmit(
                    self.index,
                    pool_index,
                    self._to_wire(confirm),
                    duration=t_c,
                )
                yield Timeout(t_c)
            if not session.codes:
                break
        if session.state is SessionState.CONFIRMING:
            # Timer expired with no AUTH_REQUEST: peer moved away.
            self._fail_session(session)
            self._trace.increment(_names.DNDP_RESPONDER_TIMEOUT)

    def _on_confirm(
        self, confirm: Confirm, pool_index: int, sender: int
    ) -> None:
        peer = confirm.sender
        if peer == self.node_id or peer in self._logical:
            return
        self._peer_index[peer] = sender
        session = self._sessions.get(peer)
        if session is not None and self._session_stale(session):
            # Stale session from an earlier period: reclaim its state.
            self._drop_session(peer, session)
            session = None
        if session is None:
            session = DNDPSession(
                peer=peer,
                initiator=True,
                state=SessionState.AWAIT_CONFIRM,
                started_at=self._sim.now,
            )
            self._sessions[peer] = session
        become_initiator = session.state in (
            SessionState.IDLE,
            SessionState.BROADCASTING,
            SessionState.AWAIT_CONFIRM,
        )
        if (
            session.state is SessionState.CONFIRMING
            and self.node_id < peer
        ):
            # Both sides decoded each other's HELLO and responded: a
            # symmetric deadlock the paper's "A initiates prior to B"
            # assumption hides.  Deterministic tie-break: the lower ID
            # switches to the initiator role.
            become_initiator = True
        session.add_code(pool_index)
        if become_initiator:
            session.state = SessionState.AWAIT_AUTH_RESPONSE
            self._sim.process(
                self._send_auth_request(session),
                name=f"auth1@{self.index}",
            )

    def _send_auth_request(self, session: DNDPSession) -> Iterator[object]:
        """Initiator: compute ``K_AB`` (t_key) and send AUTH_REQUEST on
        every shared code (redundancy design)."""
        yield Timeout(self.config.t_key)
        session.shared_key = self._key.shared_key(session.peer)
        session.my_nonce = self._nonces.next()
        mac = MessageAuthenticator(session.shared_key, self.config.mac_bits)
        request = AuthRequest(
            sender=self.node_id,
            nonce=session.my_nonce,
            mac_tag=mac.tag(
                self.node_id.to_bytes(),
                nonce_bytes(session.my_nonce),
            ),
        )
        t_a = self.timing.t_auth_message
        for pool_index in sorted(session.codes):
            if session.state is not SessionState.AWAIT_AUTH_RESPONSE:
                # Answered (or failed) mid-volley: transmitting the
                # remaining copies would re-acquire monitors that
                # _establish/_fail_session just released.
                return
            if not self.revocation.is_active(pool_index):
                continue
            self._medium.transmit(
                self.index, pool_index, self._to_wire(request), t_a
            )
            self._monitor_for(session, pool_index)
            yield Timeout(t_a)
        if (
            self._retry.enabled
            and session.state is SessionState.AWAIT_AUTH_RESPONSE
        ):
            self._arm_auth_timer(session)

    # ------------------------------------------------------------------
    # AUTH retry timers (bounded exponential backoff)
    # ------------------------------------------------------------------

    def _arm_auth_timer(self, session: DNDPSession) -> None:
        """Arm the timeout for the session's current AUTH attempt."""
        token = session.bump_timer()
        self._sim.call_after(
            self._retry.timeout_for(session.attempts),
            self._on_auth_timeout,
            session,
            token,
        )

    def _on_auth_timeout(self, session: DNDPSession, token: int) -> None:
        """No AUTH_RESPONSE before the deadline: retransmit or fail."""
        if token != session.timer_token:
            return  # superseded: the handshake advanced or was reset
        if session.state is not SessionState.AWAIT_AUTH_RESPONSE:
            return
        if self._sessions.get(session.peer) is not session:
            return  # replaced by a newer session with the same peer
        if session.attempts >= self._retry.max_attempts:
            self._count(_names.RETRY_SESSIONS_FAILED)
            self._trace.log(
                self._sim.now,
                "retry.give_up",
                node=self.index,
                peer=session.peer.value,
                attempts=session.attempts,
            )
            self._fail_session(session)
            return
        session.attempts += 1
        self._count(_names.RETRY_AUTH_RETRANSMITS)
        self._sim.process(
            self._resend_auth_request(session),
            name=f"auth-retry@{self.index}",
        )

    def _resend_auth_request(self, session: DNDPSession) -> Iterator[object]:
        """Rebuild and retransmit AUTH_REQUEST from cached session state.

        The shared key and nonce were computed on the first attempt, so
        no ``t_key`` is charged and the frame is byte-identical — the
        responder's replay cache would reject a fresh nonce anyway (it
        answers idempotently via :meth:`_retransmit_auth_response`).
        """
        assert session.shared_key is not None
        assert session.my_nonce is not None
        mac = MessageAuthenticator(session.shared_key, self.config.mac_bits)
        request = AuthRequest(
            sender=self.node_id,
            nonce=session.my_nonce,
            mac_tag=mac.tag(
                self.node_id.to_bytes(),
                nonce_bytes(session.my_nonce),
            ),
        )
        t_a = self.timing.t_auth_message
        for pool_index in sorted(session.codes):
            if session.state is not SessionState.AWAIT_AUTH_RESPONSE:
                return  # answered mid-volley: see _send_auth_request
            if not self.revocation.is_active(pool_index):
                continue
            self._monitor_for(session, pool_index)
            self._medium.transmit(
                self.index, pool_index, self._to_wire(request), t_a
            )
            yield Timeout(t_a)
        if session.state is SessionState.AWAIT_AUTH_RESPONSE:
            self._arm_auth_timer(session)

    def _on_auth_request(
        self, request: AuthRequest, pool_index: int, sender: int
    ) -> None:
        peer = request.sender
        session = self._sessions.get(peer)
        if session is None:
            return
        if (
            self._retry.enabled
            and session.state is SessionState.ESTABLISHED
            and session.established_at is not None
            and session.peer_nonce == request.nonce
            and session.shared_key is not None
            and self._sim.now - session.established_at
            > 0.5 * self._retry.base_timeout
        ):
            # The initiator is still retransmitting the AUTH_REQUEST we
            # already answered: our AUTH_RESPONSE was lost.  Answering
            # again is idempotent on our side.  The age gate keeps
            # benign duplicate copies (the same nonce arrives once per
            # shared code within the handshake window) from triggering
            # spurious retransmissions in fault-free runs.
            mac = MessageAuthenticator(
                session.shared_key, self.config.mac_bits
            )
            if not mac.verify(request.mac_tag, *request.mac_input()):
                self._trace.increment(_names.DNDP_BAD_MAC_IGNORED)
                return
            self._count(_names.RETRY_AUTH_RESPONSE_RETRANSMITS)
            self._sim.process(
                self._retransmit_auth_response(session),
                name=f"auth2-retry@{self.index}",
            )
            return
        acceptable = session.state is SessionState.CONFIRMING or (
            # Both sides raced to the initiator role; the lower ID wins
            # (same tie-break as in _on_confirm) and we serve as the
            # responder despite having sent an AUTH_REQUEST ourselves.
            session.state is SessionState.AWAIT_AUTH_RESPONSE
            and peer < self.node_id
        )
        if not acceptable:
            return
        if self._replay.seen_before("auth1", peer, request.nonce):
            self._trace.increment(_names.DNDP_REPLAYS_DROPPED)
            return
        self._sim.process(
            self._finish_responder(session, request, sender),
            name=f"auth2@{self.index}",
        )

    def _finish_responder(
        self, session: DNDPSession, request: AuthRequest, sender: int
    ) -> Iterator[object]:
        yield Timeout(self.config.t_key)
        shared = self._key.shared_key(session.peer)
        mac = MessageAuthenticator(shared, self.config.mac_bits)
        if not mac.verify(request.mac_tag, *request.mac_input()):
            # Either a forgery or an overheard AUTH_REQUEST addressed to
            # another holder of the same pool code — indistinguishable
            # cases, so the session stays where it was.
            self._trace.increment(_names.DNDP_BAD_MAC_IGNORED)
            return
        session.shared_key = shared
        session.peer_nonce = request.nonce
        session.my_nonce = self._nonces.next()
        response = AuthResponse(
            sender=self.node_id,
            nonce=session.my_nonce,
            mac_tag=mac.tag(
                self.node_id.to_bytes(),
                nonce_bytes(session.my_nonce),
            ),
        )
        t_a = self.timing.t_auth_message
        for pool_index in sorted(session.codes):
            if not self.revocation.is_active(pool_index):
                continue
            self._medium.transmit(
                self.index, pool_index, self._to_wire(response), t_a
            )
            yield Timeout(t_a)
        self._establish(session, sender, via_mndp=False)

    def _retransmit_auth_response(
        self, session: DNDPSession
    ) -> Iterator[object]:
        """Rebuild and resend AUTH_RESPONSE for an established session
        whose initiator evidently never received it."""
        assert session.shared_key is not None
        assert session.my_nonce is not None
        mac = MessageAuthenticator(session.shared_key, self.config.mac_bits)
        response = AuthResponse(
            sender=self.node_id,
            nonce=session.my_nonce,
            mac_tag=mac.tag(
                self.node_id.to_bytes(),
                nonce_bytes(session.my_nonce),
            ),
        )
        t_a = self.timing.t_auth_message
        for pool_index in sorted(session.codes):
            if not self.revocation.is_active(pool_index):
                continue
            self._medium.transmit(
                self.index, pool_index, self._to_wire(response), t_a
            )
            yield Timeout(t_a)

    def _on_auth_response(
        self, response: AuthResponse, pool_index: int, sender: int
    ) -> None:
        peer = response.sender
        session = self._sessions.get(peer)
        if (
            session is None
            or session.state is not SessionState.AWAIT_AUTH_RESPONSE
            or session.shared_key is None
        ):
            return
        mac = MessageAuthenticator(session.shared_key, self.config.mac_bits)
        if not mac.verify(response.mac_tag, *response.mac_input()):
            # Forged or overheard (addressed to another node): ignore.
            self._trace.increment(_names.DNDP_BAD_MAC_IGNORED)
            return
        if self._replay.seen_before("auth2", peer, response.nonce):
            self._trace.increment(_names.DNDP_REPLAYS_DROPPED)
            return
        session.peer_nonce = response.nonce
        self._establish(session, sender, via_mndp=False)

    def _establish(
        self, session: DNDPSession, sender: int, via_mndp: bool
    ) -> None:
        """Both MACs verified: derive the session code and go live."""
        session.state = SessionState.ESTABLISHED
        session.established_at = self._sim.now
        session.bump_timer()  # cancel any outstanding retry timer
        assert session.my_nonce is not None
        assert session.peer_nonce is not None
        assert session.shared_key is not None
        code = derive_session_code(
            session.shared_key,
            session.my_nonce,
            session.peer_nonce,
            self.config.code_length,
            label=("session", *sorted(
                (self.node_id.value, session.peer.value)
            )),
        )
        session.session_code = code
        self._session_codes[session.peer] = _SessionCodeState(
            peer=session.peer, code=code, confirmed=True
        )
        self._medium.listen(
            self.index, code.code_id, self._on_session_delivery
        )
        self._release_monitors(session)
        self._add_logical(session.peer, sender, via_mndp)
        latency = session.latency
        if latency is not None:
            self._trace.sample("dndp.latency", latency)

    def _add_logical(
        self, peer: NodeId, peer_index: int, via_mndp: bool
    ) -> None:
        if peer in self._logical:
            return
        self._logical[peer] = int(peer_index)
        self._peer_index[peer] = int(peer_index)
        self.neighbor_table.touch(peer, self._sim.now)
        if via_mndp:
            self._mndp_count += 1
            self._trace.increment(_names.MNDP_ESTABLISHED)
        else:
            self._dndp_count += 1
            self._trace.increment(_names.DNDP_ESTABLISHED)
        self._trace.log(
            self._sim.now,
            "logical_neighbor",
            node=self.index,
            peer=peer_index,
            via="mndp" if via_mndp else "dndp",
        )
        if len(self._mndp_queue):
            entries = self._mndp_queue.pop_for(peer, self._sim.now)
            if entries:
                self._sim.process(
                    self._drain_mndp_queue(peer, entries),
                    name=f"mndp-drain@{self.index}",
                )

    def _drain_mndp_queue(
        self, peer: NodeId, entries: Sequence[object]
    ) -> Iterator[object]:
        """Deliver M-NDP frames that waited for a session with ``peer``."""
        for entry in entries:
            if self._session_codes.get(peer) is None:
                # The session vanished again between dequeue and send.
                if self._mndp_queue.requeue(entry, self._sim.now):
                    self._count(_names.RETRY_MNDP_REQUEUED)
                else:
                    self._count(_names.RETRY_MNDP_DROPPED)
                continue
            self._count(_names.RETRY_MNDP_DEQUEUED)
            yield from self._unicast_session(peer, entry.frame)

    def _record_invalid(self, pool_indices: Sequence[int]) -> None:
        """Count an invalid request against each involved pool code."""
        for pool_index in pool_indices:
            if not self.revocation.is_active(pool_index):
                continue
            try:
                revoked_now = self.revocation.record_invalid_request(
                    pool_index
                )
            except RevokedCodeError:
                continue
            self._trace.increment(_names.REVOCATION_INVALID_REQUESTS)
            if revoked_now:
                self._medium.stop_listening(self.index, pool_index)
                self._realtime.pop(pool_index, None)
                # The refcounts are gone with the code; drop the
                # matching per-session claims so monitor accounting
                # stays conserved.
                for session in self._sessions.values():
                    session.monitored.discard(pool_index)
                self._trace.increment(_names.REVOCATION_CODES_REVOKED)

    def _on_fake_request(self, pool_index: int) -> None:
        """A DoS fake: one wasted t_ver, one revocation counter tick.

        A code revoked between buffering and processing is no longer
        scanned, so fakes already in the buffer cost nothing more.
        """
        if not self.revocation.is_active(pool_index):
            return
        self._trace.increment(_names.DOS_VERIFICATIONS)
        # The verification occupies the CPU for t_ver; the counter is
        # charged immediately since ordering does not matter here.
        self._record_invalid([pool_index])

    # ------------------------------------------------------------------
    # neighbor maintenance (Section IV-A's monitoring timeout)
    # ------------------------------------------------------------------

    def expire_stale_neighbors(self, threshold: float) -> List[NodeId]:
        """Drop logical neighbors silent for over ``threshold`` seconds.

        Stops monitoring their session codes and clears the session so
        a returning peer is re-discovered from scratch, as the paper's
        periodic-discovery design intends.  Returns the expired peers.
        """
        stale = [
            peer
            for peer in self.neighbor_table.stale_peers(
                self._sim.now, threshold
            )
            if peer in self._logical
        ]
        for peer in stale:
            self._logical.pop(peer, None)
            state = self._session_codes.pop(peer, None)
            if state is not None:
                self._medium.stop_listening(self.index, state.code.code_id)
            self._sessions.pop(peer, None)
            self.neighbor_table.forget(peer)
            self._trace.increment(_names.NEIGHBORS_EXPIRED)
            self._trace.log(
                self._sim.now, "neighbor_expired",
                node=self.index, peer=peer.value,
            )
        return stale

    def start_maintenance(self, threshold: float, interval: float):
        """Run periodic expiry on the simulated clock."""

        def maintain() -> Iterator[object]:
            while True:
                yield Timeout(interval)
                self.expire_stale_neighbors(threshold)

        return self._sim.process(
            maintain(), name=f"maintenance@{self.index}"
        )

    def send_keepalive(self, peer: NodeId) -> bool:
        """Send a short beacon over the session code shared with
        ``peer`` so it does not expire us; returns False if no session
        exists."""
        state = self._session_codes.get(peer)
        if state is None or not state.confirmed:
            return False
        self._medium.transmit(
            self.index,
            state.code.code_id,
            self._to_wire(Hello(self.node_id)),
            self.timing.t_hello,
        )
        return True

    def gc_stale_sessions(self) -> int:
        """Reclaim dead protocol state so faults degrade gracefully.

        Drops FAILED and stale pending sessions (releasing their
        monitor refcounts and unconfirmed session-code listeners),
        expires queued M-NDP frames past their TTL, and ages out M-NDP
        dedup / return-route entries older than ``mndp_ttl``.  Returns
        the number of sessions collected.
        """
        removed = 0
        for peer, session in list(self._sessions.items()):
            if session.state is SessionState.ESTABLISHED:
                continue
            if (
                session.state is not SessionState.FAILED
                and not self._session_stale(session)
            ):
                continue
            self._drop_session(peer, session)
            removed += 1
        if removed:
            self._count(_names.RETRY_SESSIONS_GCED, removed)
        expired = self._mndp_queue.expire(self._sim.now)
        if expired:
            self._count(_names.RETRY_MNDP_EXPIRED, expired)
        cutoff = self._sim.now - self.config.mndp_ttl
        stale_keys = [
            key
            for key, recorded in self._mndp_seen.items()
            if recorded < cutoff
        ]
        for key in stale_keys:
            del self._mndp_seen[key]
            self._mndp_return_route.pop(key, None)
        if stale_keys:
            self._count(_names.RETRY_MNDP_STATE_PRUNED, len(stale_keys))
        return removed

    def start_session_gc(self, interval: float):
        """Run :meth:`gc_stale_sessions` periodically on the sim clock."""
        if interval <= 0:
            raise ConfigurationError(
                f"gc interval must be positive: {interval}"
            )

        def collect() -> Iterator[object]:
            while True:
                yield Timeout(interval)
                self.gc_stale_sessions()

        return self._sim.process(
            collect(), name=f"session-gc@{self.index}"
        )

    # ------------------------------------------------------------------
    # introspection (used by repro.faults.invariants)
    # ------------------------------------------------------------------

    def sessions(self) -> Dict[NodeId, DNDPSession]:
        """A snapshot of the per-peer session table."""
        return dict(self._sessions)

    def monitor_counts(self) -> Dict[int, int]:
        """Current real-time monitoring refcounts per pool code."""
        return dict(self._realtime)

    def wedged_sessions(self) -> List[Tuple[NodeId, SessionState]]:
        """Non-terminal sessions that outlived the staleness bound.

        A hardened stack should never accumulate these: timeouts move
        them to FAILED and :meth:`gc_stale_sessions` reclaims them.
        """
        return [
            (peer, session.state)
            for peer, session in sorted(self._sessions.items())
            if session.state
            not in (SessionState.ESTABLISHED, SessionState.FAILED)
            and self._session_stale(session)
        ]

    # ------------------------------------------------------------------
    # M-NDP
    # ------------------------------------------------------------------

    def initiate_mndp(self, nu: Optional[int] = None):
        """Send signed M-NDP requests to every logical neighbor."""
        hop_budget = self.config.nu if nu is None else int(nu)
        return self._sim.process(
            self._send_mndp_requests(hop_budget),
            name=f"mndp@{self.index}",
        )

    def _send_mndp_requests(self, hop_budget: int) -> Iterator[object]:
        if not self._logical:
            return
        nonce = self._nonces.next()
        neighbors = tuple(sorted(self._logical))
        position = (
            (float(self._position[0]), float(self._position[1]))
            if self.config.use_gps
            else None
        )
        request = MNDPRequest(
            source=self.node_id,
            source_neighbors=neighbors,
            nonce=nonce,
            hop_budget=hop_budget,
            source_signature=None,  # type: ignore[arg-type]
            source_position=position,
        )
        yield Timeout(self.config.t_sig)
        signature = self._scheme.sign(
            self._key, request.source_signed_bytes()
        )
        request = MNDPRequest(
            source=request.source,
            source_neighbors=request.source_neighbors,
            nonce=request.nonce,
            hop_budget=request.hop_budget,
            source_signature=signature,
            source_position=position,
        )
        self._mndp_seen[(self.node_id, nonce)] = self._sim.now
        self._my_mndp_nonce = nonce
        for peer in sorted(self._logical):
            yield from self._unicast_session(peer, request)

    def _unicast_session(self, peer: NodeId, frame: object) -> Iterator[object]:
        """Send one frame over the session code shared with ``peer``."""
        state = self._session_codes.get(peer)
        if state is None:
            # No live session (expired, crashed peer, churn): park the
            # frame in the TTL'd pending queue instead of dropping it;
            # it drains if the peer is re-discovered in time.
            if peer == self.node_id:
                return
            if self._mndp_queue.push(peer, frame, self._sim.now):
                self._count(_names.RETRY_MNDP_QUEUED)
            else:
                self._count(_names.RETRY_MNDP_QUEUE_DROPPED)
            return
        bits = frame.wire_bits(self.config) if hasattr(
            frame, "wire_bits"
        ) else self.config.auth_frame_bits
        duration = (
            (1.0 + self.config.mu)
            * bits
            * self.config.code_length
            / self.config.chip_rate
        )
        self._medium.transmit(
            self.index, state.code.code_id, self._to_wire(frame), duration
        )
        yield Timeout(duration)

    def _on_session_delivery(self, tx: Transmission) -> None:
        """A frame arrived over an established session code (real time)."""
        for peer, state in self._session_codes.items():
            if state.code.code_id == tx.code_key:
                self.neighbor_table.touch(peer, self._sim.now)
                break
        frame = self._from_wire(tx.frame)
        if isinstance(frame, MNDPRequest):
            self._sim.process(
                self._handle_mndp_request(frame, tx.sender),
                name=f"mndp-req@{self.index}",
            )
        elif isinstance(frame, MNDPResponse):
            self._sim.process(
                self._handle_mndp_response(frame, tx.sender),
                name=f"mndp-resp@{self.index}",
            )
        elif isinstance(frame, Hello):
            self._on_mndp_hello(frame, tx)
        elif isinstance(frame, Confirm):
            self._on_mndp_confirm(frame, tx)

    def _handle_mndp_request(
        self, request: MNDPRequest, from_index: int
    ) -> Iterator[object]:
        key = (request.source, request.nonce)
        if key in self._mndp_seen:
            return
        self._mndp_seen[key] = self._sim.now
        # Verify the whole chain: one t_ver per signature.
        n_sigs = 1 + len(request.extensions)
        yield Timeout(n_sigs * self.config.t_ver)
        self._trace.increment(_names.MNDP_VERIFICATIONS, n_sigs)
        if not validate_request_chain(request, self._scheme):
            self._trace.increment(_names.MNDP_INVALID_REQUESTS)
            return
        relay = request.path_nodes()[-1]
        if relay != self.node_id and relay not in self._logical:
            # The last hop must be our own logical neighbor.
            self._trace.increment(_names.MNDP_INVALID_REQUESTS)
            return
        self._mndp_return_route[key] = relay
        source = request.source
        known = set(request.source_neighbors)
        for extension in request.extensions:
            known.update(extension.neighbors)
            known.add(extension.node)
        if source != self.node_id and source not in self._logical:
            if self._gps_filtered(request):
                self._trace.increment(_names.MNDP_GPS_FILTERED)
            else:
                yield from self._respond_to_mndp(request, relay)
        if request.hops_traversed < request.hop_budget:
            yield from self._forward_mndp(request, known)

    def _gps_filtered(self, request: MNDPRequest) -> bool:
        """Section V-C's optional filter: with GPS on, only respond to
        sources whose embedded position is within transmission range."""
        if not self.config.use_gps or request.source_position is None:
            return False
        dx = self._position[0] - request.source_position[0]
        dy = self._position[1] - request.source_position[1]
        return (dx * dx + dy * dy) ** 0.5 > self.config.tx_range

    def _respond_to_mndp(
        self, request: MNDPRequest, relay: NodeId
    ) -> Iterator[object]:
        """We may be a physical neighbor of the source: respond and start
        the session-code HELLO beacon."""
        yield Timeout(self.config.t_key)
        shared = self._key.shared_key(request.source)
        my_nonce = self._nonces.next()
        response = MNDPResponse(
            source=request.source,
            via=relay,
            responder=self.node_id,
            responder_neighbors=tuple(sorted(self._logical)),
            nonce=my_nonce,
            hop_budget=request.hop_budget,
            responder_signature=None,  # type: ignore[arg-type]
        )
        yield Timeout(self.config.t_sig)
        signature = self._scheme.sign(
            self._key, response.responder_signed_bytes()
        )
        response = MNDPResponse(
            source=response.source,
            via=response.via,
            responder=response.responder,
            responder_neighbors=response.responder_neighbors,
            nonce=response.nonce,
            hop_budget=response.hop_budget,
            responder_signature=signature,
        )
        code = derive_session_code(
            shared,
            my_nonce,
            request.nonce,
            self.config.code_length,
            label=("mndp-session", *sorted(
                (self.node_id.value, request.source.value)
            )),
        )
        pending = DNDPSession(
            peer=request.source,
            initiator=False,
            state=SessionState.AWAIT_CONFIRM,
            started_at=self._sim.now,
        )
        pending.shared_key = shared
        pending.my_nonce = my_nonce
        pending.peer_nonce = request.nonce
        pending.session_code = code
        self._sessions[request.source] = pending
        self._session_codes[request.source] = _SessionCodeState(
            peer=request.source, code=code, confirmed=False
        )
        self._medium.listen(
            self.index, code.code_id, self._on_session_delivery
        )
        route = self.node_id if relay == self.node_id else relay
        yield from self._unicast_session(route, response)
        # Beacon HELLO under the fresh session code for tau_h.
        self._sim.process(
            self._mndp_hello_beacon(code, request.hop_budget),
            name=f"mndp-hello@{self.index}",
        )

    def _mndp_hello_beacon(
        self, code: SpreadCode, hop_budget: int
    ) -> Iterator[object]:
        """Repeat ``{HELLO, ID_B}`` under the derived session code for
        ``tau_h``, the worst-case response traversal time."""
        tau_h = max(
            self.timing.theorem4_t_nu(
                hop_budget, self.config.expected_degree
            ),
            self.timing.t_hello,
        )
        deadline = self._sim.now + tau_h
        hello = Hello(self.node_id)
        t_h = self.timing.t_hello
        while self._sim.now < deadline:
            self._medium.transmit(
                self.index, code.code_id, self._to_wire(hello), t_h
            )
            yield Timeout(t_h)

    def _forward_mndp(
        self, request: MNDPRequest, known: Set[NodeId]
    ) -> Iterator[object]:
        """Extend the request with our ID/list/signature and forward to
        logical neighbors not already covered."""
        targets = [peer for peer in sorted(self._logical) if peer not in known]
        if not targets:
            return
        yield Timeout(self.config.t_sig)
        neighbors = tuple(sorted(self._logical))
        base = request.source_signed_bytes()
        for i in range(len(request.extensions)):
            base = request.extensions[i].signed_bytes(base)
        extension_unsigned = MNDPExtension(
            node=self.node_id,
            neighbors=neighbors,
            signature=None,  # type: ignore[arg-type]
        )
        signature = self._scheme.sign(
            self._key, extension_unsigned.signed_bytes(base)
        )
        extension = MNDPExtension(
            node=self.node_id, neighbors=neighbors, signature=signature
        )
        extended = request.extended(extension)
        for peer in targets:
            yield from self._unicast_session(peer, extended)

    def _handle_mndp_response(
        self, response: MNDPResponse, from_index: int
    ) -> Iterator[object]:
        n_sigs = 1 + len(response.extensions)
        yield Timeout(n_sigs * self.config.t_ver)
        self._trace.increment(_names.MNDP_VERIFICATIONS, n_sigs)
        if not validate_response_chain(response, self._scheme):
            self._trace.increment(_names.MNDP_INVALID_RESPONSES)
            return
        if response.source != self.node_id:
            # Relay back along the recorded reverse route.
            route = None
            for (source, nonce), relay in self._mndp_return_route.items():
                if source == response.source:
                    route = relay
                    break
            if route is None or route == self.node_id:
                return
            yield Timeout(self.config.t_sig)
            neighbors = tuple(sorted(self._logical))
            base = response.responder_signed_bytes()
            for i in range(len(response.extensions)):
                base = response.extensions[i].signed_bytes(base)
            unsigned = MNDPExtension(
                node=self.node_id,
                neighbors=neighbors,
                signature=None,  # type: ignore[arg-type]
            )
            signature = self._scheme.sign(
                self._key, unsigned.signed_bytes(base)
            )
            extended = response.extended(
                MNDPExtension(
                    node=self.node_id,
                    neighbors=neighbors,
                    signature=signature,
                )
            )
            yield from self._unicast_session(route, extended)
            return
        # We are the source: derive the session code and listen for the
        # responder's HELLO beacon.
        if response.responder in self._logical:
            return
        yield Timeout(self.config.t_key)
        shared = self._key.shared_key(response.responder)
        # Our nonce is the one we put in the request.
        my_nonce = self._find_request_nonce()
        if my_nonce is None:
            return
        code = derive_session_code(
            shared,
            my_nonce,
            response.nonce,
            self.config.code_length,
            label=("mndp-session", *sorted(
                (self.node_id.value, response.responder.value)
            )),
        )
        pending = DNDPSession(
            peer=response.responder,
            initiator=True,
            state=SessionState.AWAIT_CONFIRM,
            started_at=self._sim.now,
        )
        pending.shared_key = shared
        pending.my_nonce = my_nonce
        pending.peer_nonce = response.nonce
        pending.session_code = code
        self._sessions[response.responder] = pending
        self._session_codes[response.responder] = _SessionCodeState(
            peer=response.responder, code=code, confirmed=False
        )
        self._medium.listen(
            self.index, code.code_id, self._on_session_delivery
        )

    def _find_request_nonce(self) -> Optional[int]:
        """The nonce of our *latest* M-NDP request.

        Responses to earlier rounds derive stale session codes, so only
        the current round's nonce is valid.
        """
        return self._my_mndp_nonce

    def _on_mndp_hello(self, hello: Hello, tx: Transmission) -> None:
        """The source heard the responder's beacon: they really are
        physical neighbors.  Confirm and establish."""
        peer = hello.sender
        state = self._session_codes.get(peer)
        session = self._sessions.get(peer)
        if state is None or session is None or state.confirmed:
            return
        if peer in self._logical:
            return
        state.confirmed = True
        confirm = Confirm(self.node_id)
        duration = self.timing.t_confirm
        self._medium.transmit(
            self.index, state.code.code_id, self._to_wire(confirm), duration
        )
        session.state = SessionState.ESTABLISHED
        session.established_at = self._sim.now
        self._add_logical(peer, tx.sender, via_mndp=True)
        self._trace.sample(
            "mndp.latency", self._sim.now - session.started_at
        )

    def _on_mndp_confirm(self, confirm: Confirm, tx: Transmission) -> None:
        """The responder got the source's CONFIRM: mutual establishment."""
        peer = confirm.sender
        state = self._session_codes.get(peer)
        session = self._sessions.get(peer)
        if state is None or session is None:
            return
        if peer in self._logical:
            return
        state.confirmed = True
        session.state = SessionState.ESTABLISHED
        session.established_at = self._sim.now
        self._add_logical(peer, tx.sender, via_mndp=True)

"""The rate-``mu`` expansion codec used by JR-SND messages.

Section V-B: an ``L``-bit message is ECC-encoded into
``l = (1 + mu) L`` bits and "can tolerate up to a fraction of
``mu / (1 + mu)`` bit errors or losses".  :class:`ExpansionCodec`
realizes that contract with Reed-Solomon over GF(2^8): the message bits
are packed into symbols, each chunk of data symbols gets
``ceil(mu * k)`` parity symbols, and bit-level erasures (failed DSSS
correlation decisions) are lifted to symbol erasures.

The ``mu/(1+mu)`` tolerated fraction holds exactly for *contiguous*
corruption — which is what jamming produces: a reactive jammer destroys a
suffix of the message once it identifies the code, and a random jammer
with the correct code destroys the whole overlap.  Scattered single-bit
erasures are more expensive (each costs a full symbol); the tests
quantify both regimes.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.ecc.reed_solomon import ECC_BACKENDS, ReedSolomonCodec
from repro.errors import ConfigurationError, DecodeError, EccDecodeError
from repro.utils.artifact_cache import shared_cache

__all__ = ["ExpansionCodec", "erasure_tolerance"]


def erasure_tolerance(mu: float) -> float:
    """The paper's tolerated corruption fraction ``mu / (1 + mu)``."""
    if mu <= 0:
        raise ConfigurationError(f"mu must be positive, got {mu}")
    return mu / (1.0 + mu)


class ExpansionCodec:
    """Bit-level ECC with expansion factor ``1 + mu``.

    Parameters
    ----------
    mu:
        Redundancy parameter; parity volume is ``mu`` times the data
        volume (the paper's default is ``mu = 1``).
    backend:
        Reed-Solomon arithmetic backend (``"vectorized"`` or
        ``"naive"``), forwarded to every underlying
        :class:`ReedSolomonCodec`.
    """

    _SYMBOL_BITS = 8

    def __init__(self, mu: float, backend: str = "vectorized") -> None:
        if mu <= 0:
            raise ConfigurationError(f"mu must be positive, got {mu}")
        if backend not in ECC_BACKENDS:
            raise ConfigurationError(
                f"ecc backend must be one of {ECC_BACKENDS}, "
                f"got {backend!r}"
            )
        self._mu = float(mu)
        self._backend = str(backend)
        # Largest data chunk whose codeword still fits in an RS word.
        max_codeword = 255
        self._max_data_symbols = max(
            1, int(max_codeword / (1.0 + self._mu))
        )

    @property
    def mu(self) -> float:
        """The redundancy parameter."""
        return self._mu

    @property
    def backend(self) -> str:
        """The Reed-Solomon arithmetic backend in use."""
        return self._backend

    def parity_symbols(self, data_symbols: int) -> int:
        """Parity symbols attached to a chunk of ``data_symbols``."""
        if data_symbols <= 0:
            raise ConfigurationError(
                f"data_symbols must be positive, got {data_symbols}"
            )
        return max(1, math.ceil(self._mu * data_symbols))

    def _chunk_sizes(self, data_symbols: int) -> List[int]:
        """Split ``data_symbols`` into near-equal chunks under the RS cap."""
        n_chunks = math.ceil(data_symbols / self._max_data_symbols)
        base = data_symbols // n_chunks
        remainder = data_symbols % n_chunks
        return [base + (1 if i < remainder else 0) for i in range(n_chunks)]

    def _rs(self, n_parity: int) -> ReedSolomonCodec:
        """The RS codec for ``n_parity``, via the shared artifact cache.

        Replaces the old unbounded per-instance dict: codecs are shared
        across every ExpansionCodec in the process, the cache is
        LRU-bounded, and reuse is visible in the ``cache.rs_codec``
        hit/miss counters.
        """
        backend = self._backend
        return shared_cache().get_or_build(
            "rs_codec",
            (n_parity, backend),
            lambda: ReedSolomonCodec(n_parity, backend=backend),
        )

    def encoded_bits(self, message_bits: int) -> int:
        """Encoded length in bits for an ``message_bits``-bit message.

        Approximately ``(1 + mu) * message_bits``, rounded up to symbol
        and chunk granularity.
        """
        if message_bits <= 0:
            raise ConfigurationError(
                f"message_bits must be positive, got {message_bits}"
            )
        data_symbols = math.ceil(message_bits / self._SYMBOL_BITS)
        total = 0
        for k in self._chunk_sizes(data_symbols):
            total += k + self.parity_symbols(k)
        return total * self._SYMBOL_BITS

    def encode(self, bits: Sequence[int]) -> np.ndarray:
        """Encode a 0/1 bit sequence; returns the coded bit array."""
        arr = np.asarray(bits, dtype=np.int8)
        if arr.size == 0:
            raise ConfigurationError("cannot encode an empty message")
        if not np.isin(arr, (0, 1)).all():
            raise ConfigurationError("bits must contain only 0 and 1")
        symbols = self._pack(arr)
        out: List[int] = []
        offset = 0
        for k in self._chunk_sizes(len(symbols)):
            chunk = symbols[offset : offset + k]
            offset += k
            out.extend(self._rs(self.parity_symbols(k)).encode(chunk))
        return self._unpack(out)

    def decode(
        self, symbols: Sequence[Optional[int]], message_bits: int
    ) -> np.ndarray:
        """Decode bit decisions back into the original message.

        ``symbols`` holds one entry per coded bit: 0, 1, or ``None`` for
        an erasure (a DSSS block whose correlation fell below ``tau``).
        ``message_bits`` is the original (pre-ECC) message length.  Raises
        :class:`repro.errors.DecodeError` when corruption exceeds the
        code's capability.
        """
        if message_bits <= 0:
            raise ConfigurationError(
                f"message_bits must be positive, got {message_bits}"
            )
        expected = self.encoded_bits(message_bits)
        decisions = list(symbols)
        if len(decisions) != expected:
            raise ConfigurationError(
                f"expected {expected} coded bits, got {len(decisions)}"
            )
        data_symbols = math.ceil(message_bits / self._SYMBOL_BITS)
        decoded_symbols: List[int] = []
        bit_offset = 0
        for k in self._chunk_sizes(data_symbols):
            n_parity = self.parity_symbols(k)
            chunk_bits = (k + n_parity) * self._SYMBOL_BITS
            chunk = decisions[bit_offset : bit_offset + chunk_bits]
            bit_offset += chunk_bits
            word, erasures = self._lift(chunk)
            try:
                decoded_symbols.extend(
                    self._rs(n_parity).decode(word, erasures)
                )
            except EccDecodeError as exc:
                raise DecodeError(
                    f"message unrecoverable: {exc}"
                ) from exc
        bits = np.concatenate(
            [self._symbol_bits(sym) for sym in decoded_symbols]
        )
        return bits[:message_bits].astype(np.int8)

    def tolerated_burst_bits(self, message_bits: int) -> int:
        """Longest contiguous erased burst guaranteed decodable.

        A burst of ``b`` coded bits inside one chunk erases at most
        ``ceil(b / 8) + 1`` symbols, which must stay within the chunk's
        parity budget; the bound below is conservative across chunk
        boundaries.
        """
        data_symbols = math.ceil(message_bits / self._SYMBOL_BITS)
        worst = None
        for k in self._chunk_sizes(data_symbols):
            budget = self.parity_symbols(k)
            burst = max(0, (budget - 1) * self._SYMBOL_BITS)
            worst = burst if worst is None else min(worst, burst)
        return int(worst or 0)

    # ------------------------------------------------------------------

    def _pack(self, bits: np.ndarray) -> List[int]:
        """Pack bits (MSB first) into GF(256) symbols, zero-padded."""
        pad = (-bits.size) % self._SYMBOL_BITS
        padded = np.concatenate([bits, np.zeros(pad, dtype=np.int8)])
        return np.packbits(padded.astype(np.uint8)).tolist()

    @staticmethod
    def _unpack(symbols: Sequence[int]) -> np.ndarray:
        return np.unpackbits(
            np.asarray(symbols, dtype=np.uint8)
        ).astype(np.int8)

    def _symbol_bits(self, symbol: int) -> np.ndarray:
        return np.unpackbits(
            np.asarray([symbol], dtype=np.uint8)
        ).astype(np.int8)

    def _lift(
        self, decisions: Sequence[Optional[int]]
    ) -> "tuple[List[int], List[int]]":
        """Group bit decisions into symbols; any ``None`` bit erases its
        symbol."""
        word: List[int] = []
        erasures: List[int] = []
        for start in range(0, len(decisions), self._SYMBOL_BITS):
            group = decisions[start : start + self._SYMBOL_BITS]
            if any(d is None for d in group):
                erasures.append(start // self._SYMBOL_BITS)
                word.append(0)
            else:
                value = 0
                for d in group:
                    value = (value << 1) | int(d)
                word.append(value)
        return word, erasures

    def __repr__(self) -> str:
        return (
            f"ExpansionCodec(mu={self._mu}, "
            f"backend={self._backend!r})"
        )

"""A complete Reed-Solomon codec over GF(2^8).

Systematic RS(n, k): ``k`` data symbols followed by ``n - k`` parity
symbols obtained as the remainder of dividing by the generator polynomial
``g(x) = (x - a)(x - a^2)...(x - a^(n-k))``.  Decoding handles both
*errors* (unknown positions) and *erasures* (known positions) using the
classical pipeline:

1. syndrome computation,
2. Forney syndromes to fold in declared erasures,
3. Berlekamp-Massey to find the error-locator polynomial,
4. Chien search for error positions,
5. Forney's algorithm for error magnitudes.

An RS(n, k) code corrects ``e`` errors and ``f`` erasures whenever
``2e + f <= n - k``.  The protocol layer mostly sees erasures (a jammed
DSSS block fails the correlation threshold and is flagged), which is why
the paper's expansion factor ``1 + mu`` maps to a tolerated erasure
fraction of ``mu / (1 + mu)``.

Two backends share this class (``ECC_BACKENDS``):

``naive``
    The per-symbol reference pipeline above, in pure Python.  It is the
    ground truth the vectorized backend is property-tested against and
    the honest baseline for the throughput benchmark.

``vectorized``
    NumPy table-lookup kernels (:mod:`repro.ecc.gf256_vec`).  Long
    words use batched syndrome evaluation and a batched LFSR encoder;
    :meth:`encode_batch` / :meth:`decode_batch` amortize the kernels
    across many words at once — the shape of the Monte Carlo jammed-
    HELLO workload, where thousands of short words decode per sweep
    point.  Decoding exploits the fact that jamming mostly produces
    erasures: a word whose *folded* (Forney) syndromes vanish has an
    erasure-only solution and takes a fully batched locator/Forney
    path; any word with actual errors falls back to the scalar
    reference pipeline, word by word, so results — including every
    ``EccDecodeError`` past the ``2e + f`` budget — are bit-identical
    to ``naive`` in all cases.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ecc.gf256 import GF256
from repro.errors import ConfigurationError, EccDecodeError
from repro.obs import current as _metrics
from repro.obs import names as _names

__all__ = ["ReedSolomonCodec", "ECC_BACKENDS"]

ECC_BACKENDS = ("naive", "vectorized")

# Below this word length the numpy kernel overhead exceeds the scalar
# loop cost for a *single* word (measured crossover near 40 symbols);
# batch calls always vectorize since the overhead amortizes.
_VEC_MIN_SYMBOLS = 64


class ReedSolomonCodec:
    """Systematic Reed-Solomon codec with errors-and-erasures decoding.

    Parameters
    ----------
    n_parity:
        Number of parity symbols (``n - k``).
    backend:
        ``"vectorized"`` (default) or ``"naive"``; see the module
        docstring.  Both produce bit-identical symbols and exceptions.
    """

    def __init__(
        self, n_parity: int, backend: str = "vectorized"
    ) -> None:
        if not 0 < n_parity < GF256.ORDER - 1:
            raise ConfigurationError(
                f"n_parity must be in [1, {GF256.ORDER - 2}], got {n_parity}"
            )
        if backend not in ECC_BACKENDS:
            raise ConfigurationError(
                f"ecc backend must be one of {ECC_BACKENDS}, "
                f"got {backend!r}"
            )
        self._n_parity = int(n_parity)
        self._backend = backend
        self._generator = self._build_generator(self._n_parity)
        self._generator_arr = np.asarray(self._generator, dtype=np.uint8)

    @staticmethod
    def _build_generator(n_parity: int) -> List[int]:
        """Generator polynomial with roots a^1 .. a^n_parity."""
        generator = [1]
        for i in range(1, n_parity + 1):
            generator = GF256.poly_multiply(
                generator, [1, GF256.power(GF256.GENERATOR, i)]
            )
        return generator

    @property
    def n_parity(self) -> int:
        """Number of parity symbols appended to each message."""
        return self._n_parity

    @property
    def backend(self) -> str:
        """The arithmetic backend (``naive`` or ``vectorized``)."""
        return self._backend

    def max_codeword_length(self) -> int:
        """Longest legal codeword (255 for GF(2^8))."""
        return GF256.ORDER - 1

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(self, message: Sequence[int]) -> List[int]:
        """Append parity symbols to ``message``.

        ``message`` is a sequence of symbols in [0, 255] whose length plus
        ``n_parity`` must not exceed 255.
        """
        message = list(message)
        self._check_encodable(message)
        self._count(_names.ECC_SYMBOLS_ENCODED, len(message) + self._n_parity)
        if (
            self._backend == "vectorized"
            and len(message) >= _VEC_MIN_SYMBOLS
        ):
            return self._encode_rows(
                np.asarray([message], dtype=np.uint8)
            )[0]
        return self._encode_scalar(message)

    def encode_batch(
        self, messages: Sequence[Sequence[int]]
    ) -> List[List[int]]:
        """Encode a batch of equal-length messages.

        Equivalent to ``[self.encode(m) for m in messages]`` but on the
        vectorized backend the whole batch runs through one batched
        LFSR, one feedback step per data symbol.
        """
        messages = [list(m) for m in messages]
        if not messages:
            return []
        lengths = {len(m) for m in messages}
        if len(lengths) != 1:
            raise ConfigurationError(
                f"encode_batch needs equal-length messages, got "
                f"lengths {sorted(lengths)}"
            )
        if self._backend == "naive":
            for message in messages:
                self._check_encodable(message)
        else:
            # Vectorized bounds check; a failing batch re-raises from
            # the scalar checker on the offending message so the
            # exception is identical either way.  Length/empty checks
            # are batch-uniform, so word 0 stands in for all.
            self._check_encodable(messages[0])
            bad = self._first_bad_row(messages)
            if bad is not None:
                self._check_encodable(messages[bad])
        total = len(messages) * (len(messages[0]) + self._n_parity)
        self._count(_names.ECC_SYMBOLS_ENCODED, total)
        if self._backend == "naive":
            return [self._encode_scalar(m) for m in messages]
        return self._encode_rows(np.asarray(messages, dtype=np.uint8))

    def _check_encodable(self, message: List[int]) -> None:
        self._check_symbols("message", message)
        if len(message) + self._n_parity > self.max_codeword_length():
            raise ConfigurationError(
                f"codeword of {len(message) + self._n_parity} symbols "
                f"exceeds the RS limit of {self.max_codeword_length()}"
            )
        if not message:
            raise ConfigurationError("cannot encode an empty message")

    def _encode_scalar(self, message: List[int]) -> List[int]:
        padded = message + [0] * self._n_parity
        _, remainder = GF256.poly_divmod(padded, self._generator)
        parity = [0] * (self._n_parity - len(remainder)) + list(remainder)
        return message + parity

    def _encode_rows(self, rows: np.ndarray) -> List[List[int]]:
        from repro.ecc.gf256_vec import rs_encode_batch

        parity = rs_encode_batch(rows, self._generator_arr)
        return np.hstack([rows, parity]).tolist()

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode(
        self,
        received: Sequence[int],
        erasure_positions: Sequence[int] = (),
    ) -> List[int]:
        """Recover the data symbols from a corrupted codeword.

        ``erasure_positions`` are indices into ``received`` whose symbols
        are known to be unreliable (their values are still used as a
        starting point; any value works).  Raises
        :class:`repro.errors.EccDecodeError` when the corruption exceeds
        the code's capability.
        """
        received = list(received)
        self._check_decodable(received, erasure_positions)
        self._count(_names.ECC_SYMBOLS_DECODED, len(received))
        if (
            self._backend == "vectorized"
            and len(received) >= _VEC_MIN_SYMBOLS
        ):
            return self._decode_rows(
                [received], [sorted(set(int(p) for p in erasure_positions))]
            )[0]
        return self._decode_scalar(received, erasure_positions)

    def decode_batch(
        self,
        words: Sequence[Sequence[int]],
        erasure_lists: Optional[Sequence[Sequence[int]]] = None,
    ) -> List[List[int]]:
        """Decode a batch of equal-length received words.

        Equivalent to ``[self.decode(w, e) for w, e in zip(...)]``,
        including which :class:`~repro.errors.EccDecodeError` is raised
        first when several words are unrecoverable.  On the vectorized
        backend, syndrome evaluation, erasure folding, and the
        erasure-only correction path run batched across all words;
        only words containing actual symbol *errors* drop to the
        scalar reference pipeline.
        """
        words = list(words)
        if not words:
            return []
        if erasure_lists is None:
            erasure_lists = [()] * len(words)
        if len(erasure_lists) != len(words):
            raise ConfigurationError(
                f"{len(erasure_lists)} erasure lists for "
                f"{len(words)} words"
            )
        lengths = {len(w) for w in words}
        if len(lengths) != 1:
            raise ConfigurationError(
                f"decode_batch needs equal-length words, got "
                f"lengths {sorted(lengths)}"
            )
        self._count(_names.ECC_SYMBOLS_DECODED, len(words) * len(words[0]))
        if self._backend == "naive":
            for word, erasures in zip(words, erasure_lists):
                self._check_decodable(word, erasures)
            return [
                self._decode_scalar(word, erasures)
                for word, erasures in zip(words, erasure_lists)
            ]
        return self._decode_rows(words, erasure_lists)

    @staticmethod
    def _first_bad_row(rows: Sequence[Sequence[int]]) -> Optional[int]:
        """Index of the first row holding a symbol outside [0, 255]."""
        try:
            arr = np.asarray(rows, dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            for index, row in enumerate(rows):
                for symbol in row:
                    if not 0 <= symbol < GF256.ORDER:
                        return index
            return None
        row_bad = ((arr < 0) | (arr >= GF256.ORDER)).any(axis=1)
        if row_bad.any():
            return int(np.flatnonzero(row_bad)[0])
        return None

    def _check_decodable(
        self, received: List[int], erasure_positions: Sequence[int]
    ) -> None:
        self._check_symbols("received", received)
        if len(received) <= self._n_parity:
            raise ConfigurationError(
                f"received word of {len(received)} symbols cannot carry "
                f"{self._n_parity} parity symbols"
            )
        for position in erasure_positions:
            if not 0 <= position < len(received):
                raise ConfigurationError(
                    f"erasure position {position} out of range"
                )
        if len(set(erasure_positions)) > self._n_parity:
            raise EccDecodeError(
                f"{len(set(erasure_positions))} erasures exceed "
                f"{self._n_parity} parity symbols"
            )

    def _decode_scalar(
        self,
        received: Sequence[int],
        erasure_positions: Sequence[int],
    ) -> List[int]:
        """The reference errors-and-erasures pipeline."""
        word = list(received)
        erasures = sorted(set(int(p) for p in erasure_positions))
        syndromes = self._syndromes(word)
        if all(s == 0 for s in syndromes):
            return word[: len(word) - self._n_parity]

        erasure_locator = self._erasure_locator(erasures, len(word))
        forney_syndromes = self._forney_syndromes(
            syndromes, erasures, len(word)
        )
        error_locator = self._berlekamp_massey(
            forney_syndromes, len(erasures)
        )
        error_positions = self._chien_search(error_locator, len(word))
        all_positions = sorted(set(error_positions) | set(erasures))
        if 2 * len(error_positions) + len(erasures) > self._n_parity:
            raise EccDecodeError(
                f"{len(error_positions)} errors + {len(erasures)} erasures "
                f"exceed capability of {self._n_parity} parity symbols"
            )
        combined_locator = GF256.poly_multiply(
            error_locator, erasure_locator
        )
        corrected = self._forney_correct(
            word, syndromes, combined_locator, all_positions
        )
        # Verify the correction actually produced a codeword.
        if any(s != 0 for s in self._syndromes(corrected)):
            raise EccDecodeError("correction failed: residual syndromes")
        return corrected[: len(word) - self._n_parity]

    def _decode_rows(
        self,
        words: Sequence[Sequence[int]],
        erasure_lists: Sequence[Sequence[int]],
    ) -> List[List[int]]:
        """The vectorized batch pipeline over raw (unvalidated) inputs.

        Validation, erasure dedup/sorting, and the padded position
        table are all built in one vectorized pass.  Clean words
        return immediately from the batched syndrome pass;
        erasure-only words (vanishing folded syndromes) go through the
        batched locator/Forney path; anything else falls back to the
        scalar reference in ascending word order, so the first
        unrecoverable word raises exactly as a sequential loop would.
        """
        from repro.ecc import gf256_vec as vec

        n_parity = self._n_parity
        batch = len(words)
        length = len(words[0])
        k = length - n_parity

        # --- validation, raising exactly as a per-word scalar loop
        # would.  Word 0 is checked fully up front (the word-length
        # check is batch-uniform, so it stands in for all); the rest
        # run vectorized, and the first word failing any check
        # re-raises through the scalar checker for the identical
        # exception.
        self._check_decodable(list(words[0]), erasure_lists[0])
        try:
            arr64 = np.asarray(words, dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            # Exotic symbol types numpy cannot convert: the scalar
            # reference handles (or rejects) them one word at a time.
            for word, erasures in zip(words, erasure_lists):
                self._check_decodable(list(word), erasures)
            return [
                self._decode_scalar(word, erasures)
                for word, erasures in zip(words, erasure_lists)
            ]
        fail: Optional[int] = None
        row_bad = ((arr64 < 0) | (arr64 >= GF256.ORDER)).any(axis=1)
        if row_bad.any():
            fail = int(np.flatnonzero(row_bad)[0])
        counts = np.asarray(
            [len(erasures) for erasures in erasure_lists], dtype=np.int64
        )
        total = int(counts.sum())
        flat = np.asarray(
            [int(p) for e in erasure_lists for p in e], dtype=np.int64
        )
        owner = np.repeat(np.arange(batch), counts)
        suspects = []
        out_of_range = (flat < 0) | (flat >= length)
        if out_of_range.any():
            suspects.extend(owner[out_of_range].tolist())
        # A long raw list only fails if its *distinct* positions
        # exceed the budget; confirm per suspect, they are rare.
        suspects.extend(
            index
            for index in np.flatnonzero(counts > n_parity).tolist()
            if len(set(erasure_lists[index])) > n_parity
        )
        if suspects and (fail is None or min(suspects) < fail):
            fail = min(suspects)
        if fail is not None:
            self._check_decodable(
                list(words[fail]), erasure_lists[fail]
            )

        # --- ragged erasure lists -> left-aligned sorted distinct
        # positions padded with the sentinel ``length`` (sorts last).
        f_raw = int(counts.max()) if batch else 0
        if f_raw:
            positions = np.full((batch, f_raw), length, dtype=np.int64)
            col = np.arange(total) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            positions[owner, col] = flat
            positions.sort(axis=1)
            duplicate = np.zeros_like(positions, dtype=bool)
            duplicate[:, 1:] = (
                positions[:, 1:] == positions[:, :-1]
            ) & (positions[:, 1:] < length)
            if duplicate.any():
                positions[duplicate] = length
                positions.sort(axis=1)
            pad = positions >= length
            f_counts = (~pad).sum(axis=1)
            f_max = int(f_counts.max())
            positions = np.where(pad, 0, positions)[:, :f_max]
            pad = pad[:, :f_max]
        else:
            f_max = 0
            f_counts = counts
            positions = np.zeros((batch, 0), dtype=np.int64)
            pad = np.zeros((batch, 0), dtype=bool)

        arr = arr64.astype(np.uint8)
        syndromes = vec.syndromes_batch(arr, n_parity)
        clean = ~syndromes.any(axis=1)
        # Output rows default to the received data symbols — exactly
        # right for clean words; corrected and fallback rows overwrite.
        out = arr[:, :k].copy()

        fallback: List[int] = []
        candidates = ~clean & (f_counts > 0)
        # Dirty words with no declared erasures hold genuine errors:
        # straight to the scalar reference.
        fallback.extend(
            np.flatnonzero(~clean & (f_counts == 0)).tolist()
        )
        if candidates.any():
            rows = np.flatnonzero(candidates)
            sub_counts = f_counts[rows]
            sub_positions = positions[rows]
            sub_pad = pad[rows]
            # X_j = alpha^(L - 1 - position); padded slots use root 0
            # (identity locator factors, masked out of Forney).
            roots = np.where(
                sub_pad,
                np.uint8(0),
                vec.gf_pow_alpha(length - 1 - sub_positions),
            )
            # Shared fold loop: each row's exact erasure-only test is
            # recorded at its own fold depth f (zero-root folds past a
            # row's last real erasure merely shift its folded
            # syndromes, so the test must be read off at depth f).
            folded = syndromes[rows]
            erasure_only = np.zeros(rows.size, dtype=bool)
            for t in range(f_max + 1):
                done = sub_counts == t
                if done.any():
                    erasure_only[done] = ~folded[done].any(axis=1)
                if t < f_max:
                    x = roots[:, t]
                    folded = vec.gf_mul(folded[:, :-1], x[:, None]) ^ (
                        folded[:, 1:]
                    )
            fallback.extend(rows[~erasure_only].tolist())
            if erasure_only.any():
                sel = np.flatnonzero(erasure_only)
                sub_rows = rows[sel]
                corrected, solved = self._solve_erasures(
                    vec, arr[sub_rows], syndromes[sub_rows],
                    roots[sel], sub_positions[sel], sub_pad[sel],
                )
                out[sub_rows[solved]] = corrected[solved][:, :k]
                # The batched path could not certify these words; the
                # scalar reference gets the final say.
                fallback.extend(sub_rows[~solved].tolist())

        results = out.tolist()
        for index in sorted(fallback):
            results[index] = self._decode_scalar(
                words[index], erasure_lists[index]
            )
        return results

    def _solve_erasures(
        self,
        vec: np.ndarray,
        rows: np.ndarray,
        syndromes: np.ndarray,
        roots: np.ndarray,
        positions: np.ndarray,
        pad: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched erasure-only Forney correction.

        ``rows`` is ``(B, L)``; ``roots``, ``positions``, and the
        boolean ``pad`` mask are ``(B, f_max)`` — slots flagged in
        ``pad`` are zero-root padding for words with fewer erasures
        and contribute identity locator factors and no correction.
        Returns the corrected words and a boolean mask of which were
        verified (re-computed syndromes all zero); unverified words go
        back to the scalar reference so its exception fires.
        """
        n_parity = self._n_parity
        batch, f_max = roots.shape
        locators = vec.erasure_locators_batch(roots)  # (B, f_max + 1)
        # Omega(x) = S(x) * Lambda(x) mod x^n_parity, with S written
        # highest-degree-first exactly as the scalar pipeline does;
        # leading zero locator columns of padded words contribute
        # nothing, so the low-order n_parity product columns match the
        # scalar product exactly.
        synd_rev = syndromes[:, ::-1]
        product = np.zeros((batch, n_parity + f_max), dtype=np.uint8)
        for t in range(f_max + 1):
            product[:, t : t + n_parity] ^= vec.gf_mul(
                synd_rev, locators[:, t][:, None]
            )
        omega = product[:, -n_parity:]
        # Formal derivative: odd-degree coefficients survive (column
        # degree is position-determined, so one mask fits all words).
        degrees = np.arange(f_max, 0, -1)
        derivative = np.where(
            (degrees % 2 == 1)[None, :], locators[:, :-1], np.uint8(0)
        )
        # Horner-evaluate Omega and Lambda' at every word's inverse
        # roots simultaneously: (B, f_max) points per (B, D) rows.
        x_inverse = vec.gf_inv(roots)
        numerators = np.zeros((batch, f_max), dtype=np.uint8)
        for t in range(omega.shape[1]):
            numerators = vec.gf_mul(numerators, x_inverse) ^ (
                omega[:, t][:, None]
            )
        denominators = np.zeros((batch, f_max), dtype=np.uint8)
        for t in range(derivative.shape[1]):
            denominators = vec.gf_mul(denominators, x_inverse) ^ (
                derivative[:, t][:, None]
            )
        ok = np.ones(batch, dtype=bool)
        zero_den = (denominators == 0) & ~pad
        if zero_den.any():
            # Cannot happen for distinct erasure roots; route the
            # affected words through the scalar reference anyway.
            ok &= ~zero_den.any(axis=1)
        denominators = np.where(
            denominators == 0, np.uint8(1), denominators
        )
        magnitudes = np.where(
            pad, np.uint8(0), vec.gf_div(numerators, denominators)
        )
        corrected = rows.copy()
        # One slot at a time: padded slots may alias a real erasure
        # position in the same row (their magnitude is 0, but numpy
        # buffers duplicate fancy indices, dropping updates), so each
        # XOR-assign must touch every row at most once.
        word_index = np.arange(batch)
        for j in range(f_max):
            corrected[word_index, positions[:, j]] ^= magnitudes[:, j]
        residual = vec.syndromes_batch(corrected, n_parity)
        ok &= ~residual.any(axis=1)
        return corrected, ok

    @staticmethod
    def _check_symbols(name: str, symbols: Sequence[int]) -> None:
        for symbol in symbols:
            if not 0 <= symbol < GF256.ORDER:
                raise ConfigurationError(
                    f"{name} contains symbol {symbol} outside [0, 255]"
                )

    def _count(self, name: str, amount: int) -> None:
        registry = _metrics()
        if registry.enabled:
            registry.inc(_names.backend_qualified(name, self._backend), amount)

    # ------------------------------------------------------------------
    # Scalar decoding pipeline internals (the reference)
    # ------------------------------------------------------------------

    def _syndromes(self, word: Sequence[int]) -> List[int]:
        """Evaluate the received polynomial at the generator's roots."""
        return [
            GF256.poly_eval(word, GF256.power(GF256.GENERATOR, i))
            for i in range(1, self._n_parity + 1)
        ]

    @staticmethod
    def _erasure_locator(
        erasures: Sequence[int], length: int
    ) -> List[int]:
        """Locator polynomial with roots at the erased positions."""
        locator = [1]
        for position in erasures:
            exponent = length - 1 - position
            # Factor (1 - X_j x) with X_j = alpha^exponent, written
            # highest-degree-first; its root is X_j^{-1}, matching the
            # Chien search convention.
            locator = GF256.poly_multiply(
                locator, [GF256.power(GF256.GENERATOR, exponent), 1]
            )
        return locator

    def _forney_syndromes(
        self, syndromes: Sequence[int], erasures: Sequence[int], length: int
    ) -> List[int]:
        """Fold erasure information into the syndromes.

        The resulting (shorter-effective) syndromes describe only the
        unknown-position errors, so Berlekamp-Massey can run unmodified.
        """
        folded = list(syndromes)
        for position in erasures:
            x = GF256.power(GF256.GENERATOR, length - 1 - position)
            for i in range(len(folded) - 1):
                folded[i] = GF256.multiply(folded[i], x) ^ folded[i + 1]
            folded.pop()
        return folded

    def _berlekamp_massey(
        self, syndromes: Sequence[int], n_erasures: int
    ) -> List[int]:
        """Find the minimal error-locator polynomial (lowest degree first
        internally, returned highest degree first)."""
        error_locator = [1]
        previous_locator = [1]
        for i, syndrome in enumerate(syndromes):
            previous_locator.append(0)
            delta = syndrome
            for j in range(1, len(error_locator)):
                delta ^= GF256.multiply(
                    error_locator[len(error_locator) - 1 - j],
                    syndromes[i - j],
                )
            if delta != 0:
                if len(previous_locator) > len(error_locator):
                    new_locator = GF256.poly_scale(previous_locator, delta)
                    previous_locator = GF256.poly_scale(
                        error_locator, GF256.inverse(delta)
                    )
                    error_locator = new_locator
                error_locator = GF256.poly_add(
                    error_locator, GF256.poly_scale(previous_locator, delta)
                )
        while error_locator and error_locator[0] == 0:
            error_locator = error_locator[1:]
        n_errors = len(error_locator) - 1
        if 2 * n_errors + n_erasures > self._n_parity:
            raise EccDecodeError(
                "error locator degree exceeds correction capability"
            )
        return error_locator

    def _chien_search(
        self, error_locator: Sequence[int], length: int
    ) -> List[int]:
        """Find codeword positions whose locator evaluation is zero."""
        n_errors = len(error_locator) - 1
        if n_errors == 0:
            return []
        positions = []
        for position in range(length):
            exponent = length - 1 - position
            x_inverse = GF256.power(
                GF256.GENERATOR, -exponent
            ) if exponent else 1
            if GF256.poly_eval(error_locator, x_inverse) == 0:
                positions.append(position)
        if len(positions) != n_errors:
            raise EccDecodeError(
                f"Chien search found {len(positions)} roots for a degree-"
                f"{n_errors} locator; word is uncorrectable"
            )
        return positions

    def _forney_correct(
        self,
        word: Sequence[int],
        syndromes: Sequence[int],
        locator: Sequence[int],
        positions: Sequence[int],
    ) -> List[int]:
        """Compute error magnitudes with Forney's algorithm and fix them."""
        length = len(word)
        # Error evaluator: Omega(x) = S(x) * Lambda(x) mod x^(n_parity).
        syndrome_poly = list(reversed(list(syndromes)))
        product = GF256.poly_multiply(syndrome_poly, locator)
        omega = product[-self._n_parity:] if len(
            product
        ) >= self._n_parity else product
        locator_derivative = GF256.poly_derivative(locator)

        corrected = list(word)
        for position in positions:
            exponent = length - 1 - position
            x = GF256.power(GF256.GENERATOR, exponent)
            x_inverse = GF256.inverse(x)
            numerator = GF256.poly_eval(omega, x_inverse)
            denominator = GF256.poly_eval(locator_derivative, x_inverse)
            if denominator == 0:
                raise EccDecodeError(
                    "Forney denominator vanished; word is uncorrectable"
                )
            # With generator roots alpha^1..alpha^np and the syndrome
            # polynomial S(x) = S_1 + S_2 x + ..., Forney's formula is
            # Y_i = Omega(X_i^{-1}) / Lambda'(X_i^{-1}) with no extra
            # X_i factor.
            magnitude = GF256.divide(numerator, denominator)
            corrected[position] ^= magnitude
        return corrected

    def correction_capability(self) -> Tuple[int, int]:
        """Return ``(max_errors, max_erasures)`` as independent maxima."""
        return self._n_parity // 2, self._n_parity

    def __repr__(self) -> str:
        return (
            f"ReedSolomonCodec(n_parity={self._n_parity}, "
            f"backend={self._backend!r})"
        )

"""A complete Reed-Solomon codec over GF(2^8).

Systematic RS(n, k): ``k`` data symbols followed by ``n - k`` parity
symbols obtained as the remainder of dividing by the generator polynomial
``g(x) = (x - a)(x - a^2)...(x - a^(n-k))``.  Decoding handles both
*errors* (unknown positions) and *erasures* (known positions) using the
classical pipeline:

1. syndrome computation,
2. Forney syndromes to fold in declared erasures,
3. Berlekamp-Massey to find the error-locator polynomial,
4. Chien search for error positions,
5. Forney's algorithm for error magnitudes.

An RS(n, k) code corrects ``e`` errors and ``f`` erasures whenever
``2e + f <= n - k``.  The protocol layer mostly sees erasures (a jammed
DSSS block fails the correlation threshold and is flagged), which is why
the paper's expansion factor ``1 + mu`` maps to a tolerated erasure
fraction of ``mu / (1 + mu)``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.ecc.gf256 import GF256
from repro.errors import ConfigurationError, EccDecodeError

__all__ = ["ReedSolomonCodec"]


class ReedSolomonCodec:
    """Systematic Reed-Solomon codec with errors-and-erasures decoding.

    Parameters
    ----------
    n_parity:
        Number of parity symbols (``n - k``).
    """

    def __init__(self, n_parity: int) -> None:
        if not 0 < n_parity < GF256.ORDER - 1:
            raise ConfigurationError(
                f"n_parity must be in [1, {GF256.ORDER - 2}], got {n_parity}"
            )
        self._n_parity = int(n_parity)
        self._generator = self._build_generator(self._n_parity)

    @staticmethod
    def _build_generator(n_parity: int) -> List[int]:
        """Generator polynomial with roots a^1 .. a^n_parity."""
        generator = [1]
        for i in range(1, n_parity + 1):
            generator = GF256.poly_multiply(
                generator, [1, GF256.power(GF256.GENERATOR, i)]
            )
        return generator

    @property
    def n_parity(self) -> int:
        """Number of parity symbols appended to each message."""
        return self._n_parity

    def max_codeword_length(self) -> int:
        """Longest legal codeword (255 for GF(2^8))."""
        return GF256.ORDER - 1

    def encode(self, message: Sequence[int]) -> List[int]:
        """Append parity symbols to ``message``.

        ``message`` is a sequence of symbols in [0, 255] whose length plus
        ``n_parity`` must not exceed 255.
        """
        message = list(message)
        self._check_symbols("message", message)
        if len(message) + self._n_parity > self.max_codeword_length():
            raise ConfigurationError(
                f"codeword of {len(message) + self._n_parity} symbols "
                f"exceeds the RS limit of {self.max_codeword_length()}"
            )
        if not message:
            raise ConfigurationError("cannot encode an empty message")
        padded = message + [0] * self._n_parity
        _, remainder = GF256.poly_divmod(padded, self._generator)
        parity = [0] * (self._n_parity - len(remainder)) + list(remainder)
        return message + parity

    def decode(
        self,
        received: Sequence[int],
        erasure_positions: Sequence[int] = (),
    ) -> List[int]:
        """Recover the data symbols from a corrupted codeword.

        ``erasure_positions`` are indices into ``received`` whose symbols
        are known to be unreliable (their values are still used as a
        starting point; any value works).  Raises
        :class:`repro.errors.EccDecodeError` when the corruption exceeds
        the code's capability.
        """
        received = list(received)
        self._check_symbols("received", received)
        if len(received) <= self._n_parity:
            raise ConfigurationError(
                f"received word of {len(received)} symbols cannot carry "
                f"{self._n_parity} parity symbols"
            )
        for position in erasure_positions:
            if not 0 <= position < len(received):
                raise ConfigurationError(
                    f"erasure position {position} out of range"
                )
        if len(set(erasure_positions)) > self._n_parity:
            raise EccDecodeError(
                f"{len(set(erasure_positions))} erasures exceed "
                f"{self._n_parity} parity symbols"
            )

        word = list(received)
        erasures = sorted(set(int(p) for p in erasure_positions))
        syndromes = self._syndromes(word)
        if all(s == 0 for s in syndromes):
            return word[: len(word) - self._n_parity]

        erasure_locator = self._erasure_locator(erasures, len(word))
        forney_syndromes = self._forney_syndromes(
            syndromes, erasures, len(word)
        )
        error_locator = self._berlekamp_massey(
            forney_syndromes, len(erasures)
        )
        error_positions = self._chien_search(error_locator, len(word))
        all_positions = sorted(set(error_positions) | set(erasures))
        if 2 * len(error_positions) + len(erasures) > self._n_parity:
            raise EccDecodeError(
                f"{len(error_positions)} errors + {len(erasures)} erasures "
                f"exceed capability of {self._n_parity} parity symbols"
            )
        combined_locator = GF256.poly_multiply(
            error_locator, erasure_locator
        )
        corrected = self._forney_correct(
            word, syndromes, combined_locator, all_positions
        )
        # Verify the correction actually produced a codeword.
        if any(s != 0 for s in self._syndromes(corrected)):
            raise EccDecodeError("correction failed: residual syndromes")
        return corrected[: len(word) - self._n_parity]

    # ------------------------------------------------------------------
    # Decoding pipeline internals
    # ------------------------------------------------------------------

    def _syndromes(self, word: Sequence[int]) -> List[int]:
        """Evaluate the received polynomial at the generator's roots."""
        return [
            GF256.poly_eval(word, GF256.power(GF256.GENERATOR, i))
            for i in range(1, self._n_parity + 1)
        ]

    @staticmethod
    def _erasure_locator(
        erasures: Sequence[int], length: int
    ) -> List[int]:
        """Locator polynomial with roots at the erased positions."""
        locator = [1]
        for position in erasures:
            exponent = length - 1 - position
            # Factor (1 - X_j x) with X_j = alpha^exponent, written
            # highest-degree-first; its root is X_j^{-1}, matching the
            # Chien search convention.
            locator = GF256.poly_multiply(
                locator, [GF256.power(GF256.GENERATOR, exponent), 1]
            )
        return locator

    def _forney_syndromes(
        self, syndromes: Sequence[int], erasures: Sequence[int], length: int
    ) -> List[int]:
        """Fold erasure information into the syndromes.

        The resulting (shorter-effective) syndromes describe only the
        unknown-position errors, so Berlekamp-Massey can run unmodified.
        """
        folded = list(syndromes)
        for position in erasures:
            x = GF256.power(GF256.GENERATOR, length - 1 - position)
            for i in range(len(folded) - 1):
                folded[i] = GF256.multiply(folded[i], x) ^ folded[i + 1]
            folded.pop()
        return folded

    def _berlekamp_massey(
        self, syndromes: Sequence[int], n_erasures: int
    ) -> List[int]:
        """Find the minimal error-locator polynomial (lowest degree first
        internally, returned highest degree first)."""
        error_locator = [1]
        previous_locator = [1]
        for i, syndrome in enumerate(syndromes):
            previous_locator.append(0)
            delta = syndrome
            for j in range(1, len(error_locator)):
                delta ^= GF256.multiply(
                    error_locator[len(error_locator) - 1 - j],
                    syndromes[i - j],
                )
            if delta != 0:
                if len(previous_locator) > len(error_locator):
                    new_locator = GF256.poly_scale(previous_locator, delta)
                    previous_locator = GF256.poly_scale(
                        error_locator, GF256.inverse(delta)
                    )
                    error_locator = new_locator
                error_locator = GF256.poly_add(
                    error_locator, GF256.poly_scale(previous_locator, delta)
                )
        while error_locator and error_locator[0] == 0:
            error_locator = error_locator[1:]
        n_errors = len(error_locator) - 1
        if 2 * n_errors + n_erasures > self._n_parity:
            raise EccDecodeError(
                "error locator degree exceeds correction capability"
            )
        return error_locator

    def _chien_search(
        self, error_locator: Sequence[int], length: int
    ) -> List[int]:
        """Find codeword positions whose locator evaluation is zero."""
        n_errors = len(error_locator) - 1
        if n_errors == 0:
            return []
        positions = []
        for position in range(length):
            exponent = length - 1 - position
            x_inverse = GF256.power(
                GF256.GENERATOR, -exponent
            ) if exponent else 1
            if GF256.poly_eval(error_locator, x_inverse) == 0:
                positions.append(position)
        if len(positions) != n_errors:
            raise EccDecodeError(
                f"Chien search found {len(positions)} roots for a degree-"
                f"{n_errors} locator; word is uncorrectable"
            )
        return positions

    def _forney_correct(
        self,
        word: Sequence[int],
        syndromes: Sequence[int],
        locator: Sequence[int],
        positions: Sequence[int],
    ) -> List[int]:
        """Compute error magnitudes with Forney's algorithm and fix them."""
        length = len(word)
        # Error evaluator: Omega(x) = S(x) * Lambda(x) mod x^(n_parity).
        syndrome_poly = list(reversed(list(syndromes)))
        product = GF256.poly_multiply(syndrome_poly, locator)
        omega = product[-self._n_parity:] if len(
            product
        ) >= self._n_parity else product
        locator_derivative = GF256.poly_derivative(locator)

        corrected = list(word)
        for position in positions:
            exponent = length - 1 - position
            x = GF256.power(GF256.GENERATOR, exponent)
            x_inverse = GF256.inverse(x)
            numerator = GF256.poly_eval(omega, x_inverse)
            denominator = GF256.poly_eval(locator_derivative, x_inverse)
            if denominator == 0:
                raise EccDecodeError(
                    "Forney denominator vanished; word is uncorrectable"
                )
            # With generator roots alpha^1..alpha^np and the syndrome
            # polynomial S(x) = S_1 + S_2 x + ..., Forney's formula is
            # Y_i = Omega(X_i^{-1}) / Lambda'(X_i^{-1}) with no extra
            # X_i factor.
            magnitude = GF256.divide(numerator, denominator)
            corrected[position] ^= magnitude
        return corrected

    @staticmethod
    def _check_symbols(name: str, symbols: Sequence[int]) -> None:
        for symbol in symbols:
            if not 0 <= symbol < GF256.ORDER:
                raise ConfigurationError(
                    f"{name} contains symbol {symbol} outside [0, 255]"
                )

    def correction_capability(self) -> Tuple[int, int]:
        """Return ``(max_errors, max_erasures)`` as independent maxima."""
        return self._n_parity // 2, self._n_parity

    def __repr__(self) -> str:
        return f"ReedSolomonCodec(n_parity={self._n_parity})"

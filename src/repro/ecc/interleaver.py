"""Block interleaving.

A jammer that identifies the spread code mid-message destroys a
*contiguous suffix* of the transmission.  Interleaving spreads such a
burst across the whole codeword so that each Reed-Solomon symbol loses at
most a proportional share, which is what makes the paper's "tolerates a
fraction mu/(1+mu) of bit errors or losses" model accurate for burst
jamming.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TypeVar

from repro.errors import ConfigurationError

__all__ = ["BlockInterleaver"]

T = TypeVar("T")


class BlockInterleaver:
    """A rows x columns block interleaver.

    Symbols are written row-by-row into a matrix and read column-by-column
    (and inversely for de-interleaving).  The input length must equal
    ``rows * columns``.
    """

    def __init__(self, rows: int, columns: int) -> None:
        if rows < 1 or columns < 1:
            raise ConfigurationError(
                f"rows and columns must be >= 1, got {rows}x{columns}"
            )
        self._rows = int(rows)
        self._columns = int(columns)

    @property
    def rows(self) -> int:
        """Number of matrix rows."""
        return self._rows

    @property
    def columns(self) -> int:
        """Number of matrix columns."""
        return self._columns

    @property
    def block_size(self) -> int:
        """Symbols per interleaving block."""
        return self._rows * self._columns

    def interleave(self, symbols: Sequence[T]) -> List[T]:
        """Permute ``symbols`` (write rows, read columns)."""
        self._check_length(symbols)
        out: List[T] = []
        for column in range(self._columns):
            for row in range(self._rows):
                out.append(symbols[row * self._columns + column])
        return out

    def deinterleave(self, symbols: Sequence[T]) -> List[T]:
        """Invert :meth:`interleave`."""
        self._check_length(symbols)
        out: List[Optional[T]] = [None] * self.block_size
        index = 0
        for column in range(self._columns):
            for row in range(self._rows):
                out[row * self._columns + column] = symbols[index]
                index += 1
        return out  # type: ignore[return-value]

    def max_burst_per_row(self, burst_length: int) -> int:
        """Worst-case symbols a contiguous burst of ``burst_length``
        post-interleaving positions can hit within one original row."""
        if burst_length < 0:
            raise ConfigurationError(
                f"burst_length must be >= 0, got {burst_length}"
            )
        # A column of the matrix holds one symbol per row; a burst of b
        # consecutive read-out symbols spans ceil(b / rows) columns, each
        # contributing at most one symbol to any given row.
        return min(
            self._columns, -(-min(burst_length, self.block_size) // self._rows)
        )

    def _check_length(self, symbols: Sequence[T]) -> None:
        if len(symbols) != self.block_size:
            raise ConfigurationError(
                f"expected {self.block_size} symbols, got {len(symbols)}"
            )

    def __repr__(self) -> str:
        return f"BlockInterleaver({self._rows}x{self._columns})"

"""A bit-level repetition code.

The simplest ECC baseline: each bit is transmitted ``factor`` times and
decoded by majority vote, with erasures (``None`` inputs) simply not
voting.  Used as a comparison point for the Reed-Solomon codec in tests
and the physical-layer benchmarks, and as a cheap inner code option for
:class:`repro.ecc.codec.ExpansionCodec`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, DecodeError

__all__ = ["RepetitionCodec"]


class RepetitionCodec:
    """Encode bits by repetition, decode by majority vote.

    Parameters
    ----------
    factor:
        Number of copies per bit; must be >= 1.  Odd factors avoid ties.
    """

    def __init__(self, factor: int) -> None:
        if factor < 1:
            raise ConfigurationError(f"factor must be >= 1, got {factor}")
        self._factor = int(factor)

    @property
    def factor(self) -> int:
        """Copies transmitted per data bit."""
        return self._factor

    def encode(self, bits: Sequence[int]) -> np.ndarray:
        """Repeat each bit ``factor`` times."""
        arr = np.asarray(bits, dtype=np.int8)
        if arr.size and not np.isin(arr, (0, 1)).all():
            raise ConfigurationError("bits must contain only 0 and 1")
        return np.repeat(arr, self._factor)

    def decode(self, symbols: Sequence[Optional[int]]) -> np.ndarray:
        """Majority-vote decode; ``None`` entries are erasures.

        Raises :class:`repro.errors.DecodeError` if any bit's vote is a
        tie or all its copies were erased.
        """
        symbols = list(symbols)
        if len(symbols) % self._factor != 0:
            raise ConfigurationError(
                f"symbol count {len(symbols)} is not a multiple of "
                f"factor {self._factor}"
            )
        decoded: List[int] = []
        for start in range(0, len(symbols), self._factor):
            group = symbols[start : start + self._factor]
            ones = sum(1 for s in group if s == 1)
            zeros = sum(1 for s in group if s == 0)
            if ones == zeros:
                raise DecodeError(
                    f"tie or total erasure in repetition group at bit "
                    f"{start // self._factor}"
                )
            decoded.append(1 if ones > zeros else 0)
        return np.asarray(decoded, dtype=np.int8)

    def tolerated_erasures_per_bit(self) -> int:
        """Erasures per group that still allow unambiguous decoding."""
        return self._factor - 1

    def __repr__(self) -> str:
        return f"RepetitionCodec(factor={self._factor})"

"""Arithmetic in the Galois field GF(2^8).

The field is constructed with the primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D), the conventional choice for
Reed-Solomon over bytes.  Multiplication and division use log/antilog
tables built once at import time; polynomial helpers operate on
coefficient lists with index 0 as the *highest*-degree coefficient, which
matches the natural order of transmitted symbols.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["GF256"]

_PRIMITIVE_POLY = 0x11D
_FIELD_SIZE = 256


def _build_tables() -> Tuple[List[int], List[int]]:
    """Build antilog (exp) and log tables for the generator alpha = 2."""
    exp = [0] * (_FIELD_SIZE * 2)
    log = [0] * _FIELD_SIZE
    value = 1
    for power in range(_FIELD_SIZE - 1):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _PRIMITIVE_POLY
    # Duplicate the table so products of logs never need a modulo.
    for power in range(_FIELD_SIZE - 1, _FIELD_SIZE * 2):
        exp[power] = exp[power - (_FIELD_SIZE - 1)]
    return exp, log


_EXP, _LOG = _build_tables()


class GF256:
    """Namespace of GF(2^8) field and polynomial operations.

    All methods are static; elements are ints in ``[0, 255]``.
    """

    ORDER = _FIELD_SIZE
    GENERATOR = 2

    @staticmethod
    def add(a: int, b: int) -> int:
        """Field addition (XOR)."""
        return a ^ b

    @staticmethod
    def subtract(a: int, b: int) -> int:
        """Field subtraction (identical to addition in GF(2^8))."""
        return a ^ b

    @staticmethod
    def multiply(a: int, b: int) -> int:
        """Field multiplication via log tables."""
        if a == 0 or b == 0:
            return 0
        return _EXP[_LOG[a] + _LOG[b]]

    @staticmethod
    def divide(a: int, b: int) -> int:
        """Field division; raises on division by zero."""
        if b == 0:
            raise ConfigurationError("division by zero in GF(2^8)")
        if a == 0:
            return 0
        return _EXP[(_LOG[a] - _LOG[b]) % (_FIELD_SIZE - 1)]

    @staticmethod
    def power(a: int, exponent: int) -> int:
        """``a`` raised to an integer exponent (negative allowed for a != 0)."""
        if a == 0:
            if exponent <= 0:
                raise ConfigurationError("0 cannot be raised to a power <= 0")
            return 0
        return _EXP[(_LOG[a] * exponent) % (_FIELD_SIZE - 1)]

    @staticmethod
    def inverse(a: int) -> int:
        """Multiplicative inverse; raises for 0."""
        if a == 0:
            raise ConfigurationError("0 has no inverse in GF(2^8)")
        return _EXP[(_FIELD_SIZE - 1) - _LOG[a]]

    # ------------------------------------------------------------------
    # Polynomial helpers (coefficient index 0 = highest degree).
    # ------------------------------------------------------------------

    @staticmethod
    def poly_scale(poly: Sequence[int], scalar: int) -> List[int]:
        """Multiply every coefficient by ``scalar``."""
        return [GF256.multiply(c, scalar) for c in poly]

    @staticmethod
    def poly_add(p: Sequence[int], q: Sequence[int]) -> List[int]:
        """Add two polynomials of possibly different degrees."""
        size = max(len(p), len(q))
        result = [0] * size
        for i, c in enumerate(p):
            result[i + size - len(p)] = c
        for i, c in enumerate(q):
            result[i + size - len(q)] ^= c
        return result

    @staticmethod
    def poly_multiply(p: Sequence[int], q: Sequence[int]) -> List[int]:
        """Multiply two polynomials."""
        result = [0] * (len(p) + len(q) - 1)
        for i, pc in enumerate(p):
            if pc == 0:
                continue
            for j, qc in enumerate(q):
                result[i + j] ^= GF256.multiply(pc, qc)
        return result

    @staticmethod
    def poly_eval(poly: Sequence[int], x: int) -> int:
        """Evaluate a polynomial at ``x`` using Horner's rule."""
        result = 0
        for coefficient in poly:
            result = GF256.multiply(result, x) ^ coefficient
        return result

    @staticmethod
    def poly_divmod(
        dividend: Sequence[int], divisor: Sequence[int]
    ) -> Tuple[List[int], List[int]]:
        """Polynomial division; returns ``(quotient, remainder)``."""
        divisor = list(divisor)
        if not divisor or all(c == 0 for c in divisor):
            raise ConfigurationError("polynomial division by zero")
        while divisor and divisor[0] == 0:
            divisor = divisor[1:]
        out = list(dividend)
        normalizer = divisor[0]
        steps = len(dividend) - (len(divisor) - 1)
        for i in range(max(steps, 0)):
            out[i] = GF256.divide(out[i], normalizer)
            coefficient = out[i]
            if coefficient != 0:
                for j in range(1, len(divisor)):
                    if divisor[j] != 0:
                        out[i + j] ^= GF256.multiply(divisor[j], coefficient)
        separator = len(dividend) - (len(divisor) - 1)
        if separator <= 0:
            return [0], list(dividend)
        return out[:separator], out[separator:]

    @staticmethod
    def poly_derivative(poly: Sequence[int]) -> List[int]:
        """Formal derivative: odd-power terms survive in characteristic 2."""
        n = len(poly)
        result: List[int] = []
        for i, c in enumerate(poly[:-1]):
            degree = n - 1 - i
            # In GF(2^m), the derivative coefficient is c * degree mod 2.
            result.append(c if degree % 2 == 1 else 0)
        return result if result else [0]

"""Vectorized GF(2^8) kernels for the Reed-Solomon hot path.

The scalar tables of :mod:`repro.ecc.gf256` are rebuilt here as NumPy
``uint8``/``int64`` arrays so whole *batches* of field operations run as
table lookups: multiplying two arrays of symbols is two log lookups, one
integer add, and one antilog lookup, elementwise.  On top of the
elementwise kernels this module provides the three batched polynomial
primitives the codec needs:

- :func:`syndromes_batch` — evaluate every received word at every
  generator root at once (the classical per-root Horner loop collapses
  into one exponent outer product and an XOR reduction);
- :func:`poly_eval_batch` — vectorized Horner over a batch of
  (polynomial, point) rows, used for Chien-style evaluations and the
  Forney numerator/denominator;
- :func:`rs_encode_batch` — the systematic encoder as a batched LFSR:
  because the generator polynomial is monic, the remainder of
  ``message * x^n_parity`` divided by ``g(x)`` is computed with one
  feedback step per data symbol, vectorized across all words of the
  batch.

All kernels are bit-identical to their scalar counterparts in
:class:`repro.ecc.gf256.GF256` — the scalar code remains the reference
the vectorized backend is property-tested against.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.ecc.gf256 import _EXP, _LOG

__all__ = [
    "EXP",
    "LOG",
    "gf_mul",
    "gf_mul_scalar",
    "gf_div",
    "gf_inv",
    "gf_pow_alpha",
    "poly_eval_batch",
    "syndromes_batch",
    "rs_encode_batch",
    "erasure_locators_batch",
]

# The duplicated antilog table (510 entries) lets a single lookup absorb
# the sum of two logs without a modulo.  The *zero-extended* pair
# EXPZ/LOGZ goes one step further: LOGZ[0] is a sentinel (511) large
# enough that any log-sum involving a zero operand indexes past the
# duplicated antilog region into a zero-filled tail — so products and
# quotients need no explicit zero masking at all, just one gather.
EXP = np.asarray(_EXP, dtype=np.uint8)
LOG = np.asarray(_LOG, dtype=np.int64)

_ORDER = 255  # multiplicative group order of GF(2^8)
_ZERO_LOG = 511  # sentinel: any sum/difference with it lands in the tail

# Nonzero log sums peak at 2 * 254 = 508 (products) / 509 (quotients),
# so the zero tail starts at 2 * _ORDER; the scalar _EXP table carries
# two wrap-around entries past that point which must NOT be copied.
EXPZ = np.zeros(2 * _ZERO_LOG + 1, dtype=np.uint8)
EXPZ[: 2 * _ORDER] = EXP[: 2 * _ORDER]
LOGZ = LOG.copy()
LOGZ[0] = _ZERO_LOG


def gf_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise GF(2^8) product of two broadcastable uint8 arrays."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    return EXPZ[LOGZ[a] + LOGZ[b]]


def gf_mul_scalar(a: np.ndarray, scalar: int) -> np.ndarray:
    """Multiply every element of ``a`` by one field scalar."""
    a = np.asarray(a, dtype=np.uint8)
    return EXPZ[LOGZ[a] + int(LOGZ[scalar])]


def gf_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise quotient ``a / b``; the caller guarantees ``b`` has
    no zeros (Forney denominators are checked before dividing)."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    # LOGZ[a] - LOG[b] + 255 is in [1, 509] for nonzero a and lands in
    # the zero tail (>= 512) when a == 0 — no modulo, no mask.
    return EXPZ[LOGZ[a] - LOG[b] + _ORDER]


def gf_inv(a: np.ndarray) -> np.ndarray:
    """Elementwise multiplicative inverse; the caller guarantees no
    zeros (erasure/error locators never place a root at 0)."""
    a = np.asarray(a, dtype=np.uint8)
    return EXP[_ORDER - LOG[a]]


def gf_pow_alpha(exponents: np.ndarray) -> np.ndarray:
    """``alpha ** e`` for an int64 array of (possibly negative) powers."""
    return EXP[np.mod(np.asarray(exponents, dtype=np.int64), _ORDER)]


def poly_eval_batch(polys: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Horner-evaluate row ``i`` of ``polys`` at ``points[i]``.

    ``polys`` is ``(B, D)`` uint8 with coefficient index 0 the highest
    degree (the convention of :class:`~repro.ecc.gf256.GF256`);
    ``points`` is ``(B,)`` uint8.  Returns ``(B,)`` uint8.
    """
    polys = np.asarray(polys, dtype=np.uint8)
    points = np.asarray(points, dtype=np.uint8)
    result = np.zeros(polys.shape[0], dtype=np.uint8)
    for j in range(polys.shape[1]):
        result = gf_mul(result, points) ^ polys[:, j]
    return result


@lru_cache(maxsize=64)
def _syndrome_exponents(length: int, n_parity: int) -> np.ndarray:
    """The ``(n_parity, length)`` table of ``alpha^(i * degree)``
    exponents, reduced mod 255 — word-length-invariant, so cached
    (callers must treat the returned array as read-only)."""
    degrees = np.arange(length - 1, -1, -1, dtype=np.int64)
    roots = np.arange(1, n_parity + 1, dtype=np.int64)
    return np.mod(roots[:, None] * degrees[None, :], _ORDER)


def syndromes_batch(words: np.ndarray, n_parity: int) -> np.ndarray:
    """Syndromes ``S_i = word(alpha^i)`` for a batch of received words.

    ``words`` is ``(B, L)`` uint8 with symbol index 0 transmitted first
    (highest degree).  Returns ``(B, n_parity)`` uint8 where column
    ``i - 1`` holds ``S_i``, identical to the scalar
    ``GF256.poly_eval(word, alpha^i)`` loop.

    Position ``j`` of an ``L``-symbol word carries degree ``L - 1 - j``,
    so ``S_i = XOR_j word[j] * alpha^(i * (L - 1 - j))`` — one exponent
    outer product, one antilog gather, one XOR reduction.
    """
    words = np.asarray(words, dtype=np.uint8)
    exponents = _syndrome_exponents(words.shape[1], n_parity)
    log_words = LOGZ[words]  # (B, L); zero symbols hit the zero tail
    terms = EXPZ[log_words[:, None, :] + exponents[None, :, :]]
    return np.bitwise_xor.reduce(terms, axis=2)


def rs_encode_batch(
    messages: np.ndarray, generator: np.ndarray
) -> np.ndarray:
    """Parity symbols for a batch of equal-length messages.

    ``messages`` is ``(B, k)`` uint8; ``generator`` is the monic RS
    generator polynomial (highest degree first, length
    ``n_parity + 1``).  Returns ``(B, n_parity)`` uint8 parity blocks
    identical to the remainder computed by ``GF256.poly_divmod``.

    One LFSR feedback step per data symbol: the leading remainder
    symbol XOR the incoming data symbol scales the generator tail into
    the shifted remainder.  No normalization is needed because the
    generator is monic.
    """
    messages = np.asarray(messages, dtype=np.uint8)
    generator = np.asarray(generator, dtype=np.uint8)
    n_parity = generator.size - 1
    batch, k = messages.shape
    log_tail = LOGZ[generator[1:]]  # g is monic: generator[0] == 1
    parity = np.zeros((batch, n_parity), dtype=np.uint8)
    for j in range(k):
        feedback = messages[:, j] ^ parity[:, 0]
        shifted = np.zeros_like(parity)
        shifted[:, :-1] = parity[:, 1:]
        scaled = EXPZ[LOGZ[feedback][:, None] + log_tail[None, :]]
        parity = shifted ^ scaled
    return parity


def erasure_locators_batch(erasure_roots: np.ndarray) -> np.ndarray:
    """Erasure locator polynomials for a batch of words.

    ``erasure_roots`` is ``(B, f_max)`` uint8 holding each word's
    ``X_j = alpha^(L - 1 - position)`` values left-aligned (rows with
    fewer erasures padded with zeros).  Returns ``(B, f_max + 1)``
    uint8 locator coefficients, highest degree first and right-aligned
    so column ``-1`` is the constant term 1 — a word with ``f``
    erasures occupies the last ``f + 1`` columns, matching the list
    ``GF256.poly_multiply`` builds factor by factor.

    Each factor is the binomial ``(X_j x + 1)``; padded roots multiply
    by the identity ``(0 x + 1)``, which leaves the polynomial
    unchanged, so ragged batches need no masking beyond the zero pad.
    """
    erasure_roots = np.asarray(erasure_roots, dtype=np.uint8)
    batch, f_max = erasure_roots.shape
    locators = np.zeros((batch, f_max + 1), dtype=np.uint8)
    locators[:, -1] = 1
    for j in range(f_max):
        root = erasure_roots[:, j]
        # Multiply by (root * x + 1): shift-left copy scaled by root.
        scaled = gf_mul(locators[:, 1:], root[:, None])
        locators[:, :-1] ^= scaled
    return locators

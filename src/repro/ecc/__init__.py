"""Error-correcting codes (the paper's reference [15], Reed-Solomon).

JR-SND encodes every protocol message with an ECC whose expansion factor is
``1 + mu``: an ``l_t + l_id``-bit message becomes ``(1 + mu)(l_t + l_id)``
bits and tolerates up to a fraction ``mu / (1 + mu)`` of erased or
corrupted bits.  This package provides:

- :mod:`repro.ecc.gf256` — arithmetic in GF(2^8),
- :mod:`repro.ecc.reed_solomon` — a full RS codec with errors-and-erasures
  decoding (Berlekamp-Massey + Chien search + Forney),
- :mod:`repro.ecc.repetition` — a trivial repetition code baseline,
- :mod:`repro.ecc.interleaver` — block interleaving to spread bursts,
- :mod:`repro.ecc.codec` — the rate-``mu`` bit-level wrapper the protocol
  layer actually uses.
"""

from repro.ecc.codec import ExpansionCodec, erasure_tolerance
from repro.ecc.gf256 import GF256
from repro.ecc.interleaver import BlockInterleaver
from repro.ecc.reed_solomon import ReedSolomonCodec
from repro.ecc.repetition import RepetitionCodec

__all__ = [
    "GF256",
    "ReedSolomonCodec",
    "RepetitionCodec",
    "BlockInterleaver",
    "ExpansionCodec",
    "erasure_tolerance",
]

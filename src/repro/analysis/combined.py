"""The combined JR-SND metrics (end of Section VI-A).

``P = P_D + (1 - P_D) P_M`` — a pair succeeds directly or, failing that,
indirectly; and ``T = max(T_D, T_M)`` — both protocols run periodically
in parallel, so the combined latency is bounded by the slower one.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.dndp_theory import (
    dndp_expected_latency,
    dndp_lower_bound,
)
from repro.analysis.mndp_theory import (
    mndp_expected_latency,
    mndp_two_hop_bound,
)
from repro.core.config import JRSNDConfig
from repro.utils.validation import check_fraction

__all__ = ["combined_probability", "combined_latency"]


def combined_probability(p_dndp: float, p_mndp: float) -> float:
    """``P = P_D + (1 - P_D) P_M``."""
    check_fraction("p_dndp", p_dndp)
    check_fraction("p_mndp", p_mndp)
    return p_dndp + (1.0 - p_dndp) * p_mndp


def combined_latency(
    config: JRSNDConfig,
    nu: Optional[int] = None,
    degree: Optional[float] = None,
) -> float:
    """``T = max(T_D, T_M)`` at the given parameters."""
    return max(
        dndp_expected_latency(config),
        mndp_expected_latency(config, nu=nu, degree=degree),
    )


def theoretical_jrsnd_probability(
    config: JRSNDConfig, q: int, degree: Optional[float] = None
) -> float:
    """A fully closed-form JR-SND estimate: reactive-jamming ``P_D``
    (Theorem 1 lower bound) combined with the 2-hop M-NDP bound
    (Theorem 3)."""
    p_d = dndp_lower_bound(config, q)
    g = config.expected_degree if degree is None else float(degree)
    p_m = mndp_two_hop_bound(p_d, g)
    return combined_probability(p_d, p_m)

"""Transmission-range geometry behind Theorem 3.

Theorem 3 needs the expected number of *common* physical neighbors of
two nodes that are themselves physical neighbors.  With transmission
radius ``a`` and the pair's distance ``d`` uniform over the disc
(density ``2d/a²`` on ``[0, a]``), the expected intersection area of
their two range discs is

``E[A] = (π − 3√3/4) a²``  —  a fraction ``1 − 3√3/(4π) ≈ 0.5865``
of one disc.

This module provides the exact two-circle lens area, the expectation
(by quadrature, validated against the closed form in the tests), and
the common-neighbor count estimate the theorem uses.
"""

from __future__ import annotations

import math

from scipy import integrate

from repro.errors import ConfigurationError
from repro.sim.field import lens_overlap_fraction
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "lens_area",
    "expected_overlap_area",
    "expected_common_neighbors",
]


def lens_area(distance: float, radius: float) -> float:
    """Intersection area of two discs of ``radius`` at ``distance``.

    The classical lens formula:
    ``2 r² cos⁻¹(d / 2r) − (d/2) √(4r² − d²)``.

    >>> lens_area(0.0, 1.0) == math.pi
    True
    """
    check_positive("radius", radius)
    check_non_negative("distance", distance)
    if distance >= 2.0 * radius:
        return 0.0
    half = distance / 2.0
    return (
        2.0 * radius**2 * math.acos(half / radius)
        - half * math.sqrt(4.0 * radius**2 - distance**2)
    )


def expected_overlap_area(radius: float) -> float:
    """``E[lens_area(D, a)]`` for ``D`` uniform over the disc.

    Integrates the lens area against the distance density ``2d/a²``;
    equals ``(π − 3√3/4) a²`` (ref. [11] of the paper), which the tests
    verify to quadrature precision.
    """
    check_positive("radius", radius)
    value, _ = integrate.quad(
        lambda d: lens_area(d, radius) * 2.0 * d / radius**2,
        0.0,
        radius,
    )
    return float(value)


def expected_common_neighbors(
    degree: float, include_endpoints: bool = False
) -> float:
    """Theorem 3's common-neighbor count ``g (1 − 3√3/(4π)) − 1``.

    ``degree`` is the mean physical degree ``g``; the default excludes
    the endpoints themselves, as the theorem does.  Clamped at 0 for
    very sparse networks.
    """
    if degree <= 0:
        raise ConfigurationError(f"degree must be positive, got {degree}")
    count = degree * lens_overlap_fraction()
    if not include_endpoints:
        count -= 1.0
    return max(count, 0.0)

"""Theorems 3 and 4: M-NDP success bound and latency.

Theorem 3 (``nu = 2``): a pair that failed D-NDP succeeds via a common
logical neighbor; with ``g`` average physical neighbors the expected
number of common neighbors is ``g (1 - 3 sqrt(3) / (4 pi)) - 1`` and

``P_M >= 1 - (1 - P_D^2)^(g (1 - 3 sqrt(3)/(4 pi)) - 1)``.

Theorem 4: ``T_M = T_nu + 2 nu (nu + 1) t_ver + 2 nu t_sig`` with
``T_nu = N/R (3 nu (nu+1)/2 ((g+1) l_id + 2 l_sig) + 2 nu (l_n + l_nu))``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import JRSNDConfig
from repro.core.timing import ProtocolTiming
from repro.errors import ConfigurationError
from repro.utils.validation import check_fraction, check_positive

__all__ = ["mndp_two_hop_bound", "mndp_expected_latency"]


def mndp_two_hop_bound(p_dndp: float, degree: float) -> float:
    """Theorem 3's lower bound on 2-hop M-NDP success.

    Parameters
    ----------
    p_dndp:
        The D-NDP success probability ``P_D``.
    degree:
        Average physical neighbors ``g``.
    """
    from repro.analysis.geometry import expected_common_neighbors

    check_fraction("p_dndp", p_dndp)
    if degree <= 0:
        raise ConfigurationError(f"degree must be positive, got {degree}")
    common = expected_common_neighbors(degree)
    if common <= 0:
        return 0.0
    return 1.0 - (1.0 - p_dndp**2) ** common


def mndp_expected_latency(
    config: JRSNDConfig,
    nu: Optional[int] = None,
    degree: Optional[float] = None,
) -> float:
    """Theorem 4's mean M-NDP latency ``T_M`` for a ``nu``-hop path.

    ``nu`` defaults to the configuration's hop budget and ``degree`` to
    the uniform-placement expectation.
    """
    hop_budget = config.nu if nu is None else int(nu)
    check_positive("nu", hop_budget)
    g = config.expected_degree if degree is None else float(degree)
    check_positive("degree", g)
    timing = ProtocolTiming(config)
    t_nu = timing.theorem4_t_nu(hop_budget, g)
    crypto = (
        2.0 * hop_budget * (hop_budget + 1) * config.t_ver
        + 2.0 * hop_budget * config.t_sig
    )
    return t_nu + crypto

"""Closed-form performance analysis (Section VI-A, Theorems 1-4)."""

from repro.analysis.geometry import (
    expected_common_neighbors,
    expected_overlap_area,
    lens_area,
)
from repro.analysis.combined import combined_latency, combined_probability
from repro.analysis.dndp_theory import (
    dndp_expected_latency,
    dndp_expected_latency_antennas,
    dndp_lower_bound,
    dndp_probability_bounds,
    dndp_upper_bound,
    jamming_beta,
    jamming_beta_prime,
)
from repro.analysis.mndp_theory import (
    mndp_expected_latency,
    mndp_two_hop_bound,
)

__all__ = [
    "jamming_beta",
    "jamming_beta_prime",
    "dndp_lower_bound",
    "dndp_upper_bound",
    "dndp_probability_bounds",
    "dndp_expected_latency",
    "dndp_expected_latency_antennas",
    "mndp_two_hop_bound",
    "mndp_expected_latency",
    "combined_probability",
    "combined_latency",
    "lens_area",
    "expected_overlap_area",
    "expected_common_neighbors",
]

"""Theorems 1 and 2: D-NDP success probability bounds and latency.

Theorem 1: with ``q`` compromised nodes,

- ``alpha``      — per-code compromise probability (Eq. 2),
- ``c = s alpha`` — expected compromised codes,
- ``beta  = min(z (1+mu) / (c mu), 1)``   — random jamming hits the HELLO,
- ``beta' = min(3 z (1+mu) / (c mu), 1)`` — random jamming hits one of
  the three later messages,
- ``P^- = 1 - sum_x Pr[x] alpha^x``                      (reactive),
- ``P^+ = 1 - sum_x Pr[x] (alpha (beta + beta' - beta beta'))^x`` (random),

and the true D-NDP probability lies in ``[P^-, P^+]``.

Theorem 2: ``T_D = rho m (3m + 4) N^2 l_h / 2 + 2 N l_f / R + 2 t_key``.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.config import JRSNDConfig
from repro.errors import ConfigurationError
from repro.predistribution.analysis import (
    code_compromise_probability,
    shared_code_pmf,
)

__all__ = [
    "jamming_beta",
    "jamming_beta_prime",
    "dndp_lower_bound",
    "dndp_upper_bound",
    "dndp_probability_bounds",
    "dndp_expected_latency",
]


def _alpha(config: JRSNDConfig, q: int) -> float:
    return code_compromise_probability(
        config.n_nodes, config.share_count, q
    )


def _compromised_codes(config: JRSNDConfig, q: int) -> float:
    return config.pool_size * _alpha(config, q)


def jamming_beta(config: JRSNDConfig, q: int) -> float:
    """``beta``: probability random jamming kills one targeted message."""
    c = _compromised_codes(config, q)
    if c <= 0:
        return 0.0
    return min(
        config.z_jamming_signals * (1.0 + config.mu) / (c * config.mu), 1.0
    )


def jamming_beta_prime(config: JRSNDConfig, q: int) -> float:
    """``beta'``: probability random jamming kills at least one of the
    three post-HELLO messages."""
    c = _compromised_codes(config, q)
    if c <= 0:
        return 0.0
    return min(
        3.0 * config.z_jamming_signals * (1.0 + config.mu)
        / (c * config.mu),
        1.0,
    )


def dndp_lower_bound(config: JRSNDConfig, q: int) -> float:
    """``P^-``: D-NDP success under reactive jamming (worst case).

    The pair succeeds iff at least one shared code escaped compromise:
    ``1 - sum_x Pr[x] alpha^x``.
    """
    alpha = _alpha(config, q)
    pmf = shared_code_pmf(
        config.n_nodes, config.codes_per_node, config.share_count
    )
    return 1.0 - float(
        sum(pmf[x] * alpha**x for x in range(len(pmf)))
    )


def dndp_upper_bound(config: JRSNDConfig, q: int) -> float:
    """``P^+``: D-NDP success under random jamming (best case)."""
    alpha = _alpha(config, q)
    beta = jamming_beta(config, q)
    beta_prime = jamming_beta_prime(config, q)
    kill = beta + beta_prime - beta * beta_prime
    pmf = shared_code_pmf(
        config.n_nodes, config.codes_per_node, config.share_count
    )
    return 1.0 - float(
        sum(pmf[x] * (alpha * kill) ** x for x in range(len(pmf)))
    )


def dndp_probability_bounds(
    config: JRSNDConfig, q: int
) -> Tuple[float, float]:
    """``(P^-, P^+)`` bracketing the true D-NDP probability."""
    low = dndp_lower_bound(config, q)
    high = dndp_upper_bound(config, q)
    if low > high + 1e-12:
        raise ConfigurationError(
            f"bounds inverted: P^-={low} > P^+={high}"
        )
    return low, high


def dndp_expected_latency(config: JRSNDConfig) -> float:
    """Theorem 2's mean latency ``T_D``.

    ``rho m (3m + 4) N^2 l_h / 2`` covers the schedule terms
    (``3 t_p / 2 + lambda t_h / 2``); ``2 N l_f / R`` the two auth
    transmissions; ``2 t_key`` the two key computations.  This is the
    paper's single-transmit-antenna formula; see
    :func:`dndp_expected_latency_antennas` for the extension.
    """
    c = config
    schedule = (
        c.rho
        * c.codes_per_node
        * (3 * c.codes_per_node + 4)
        * c.code_length**2
        * c.hello_coded_bits
        / 2.0
    )
    auth = 2.0 * c.code_length * c.auth_frame_bits / c.chip_rate
    return schedule + auth + 2.0 * c.t_key


def dndp_expected_latency_antennas(config: JRSNDConfig) -> float:
    """Theorem 2 generalized to ``k`` transmit antennas.

    With ``k`` codes broadcast in parallel the code cycle shrinks to
    ``ceil(m / k)`` slots, so the buffer ``t_b = (cycle + 1) t_h`` and
    every schedule term built on it shrink accordingly (the correlation
    workload ``lambda`` is unchanged: the receiver still searches all
    ``m`` codes).  Reduces to Theorem 2 at ``k = 1``.
    """
    from repro.core.timing import ProtocolTiming

    timing = ProtocolTiming(config)
    schedule = (
        1.5 * timing.t_process + 0.5 * timing.gap_ratio * timing.t_hello
    )
    auth = 2.0 * timing.t_auth_message
    return schedule + auth + 2.0 * config.t_key

"""The crypto cost model (Table I, adopted from ref. [13]).

Real pairing-based operations dominate the handshake latency; the paper
charges ``t_key = 11 ms`` per shared-key computation, ``t_sig = 5.7 ms``
per signature, and ``t_ver = 35.5 ms`` per verification.  The simulated
primitives run in microseconds, so these costs are charged on the
*simulated clock* by the protocol engines instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative

__all__ = ["CryptoTimingModel"]


@dataclass(frozen=True)
class CryptoTimingModel:
    """Seconds charged per cryptographic operation on the simulated clock.

    Attributes
    ----------
    t_key:
        Non-interactive pairwise key computation (the paper's 11 ms).
    t_sig:
        ID-based signature generation (5.7 ms).
    t_ver:
        ID-based signature verification (35.5 ms).
    t_mac:
        MAC computation; negligible next to the pairing operations and
        defaulted to zero as the paper does.
    """

    t_key: float = 11e-3
    t_sig: float = 5.7e-3
    t_ver: float = 35.5e-3
    t_mac: float = 0.0

    def __post_init__(self) -> None:
        for name in ("t_key", "t_sig", "t_ver", "t_mac"):
            check_non_negative(name, getattr(self, name))

    def handshake_key_cost(self) -> float:
        """Both endpoints compute one shared key each (Theorem 2's
        ``2 t_key`` term)."""
        return 2.0 * self.t_key

    def mndp_hop_cost(self, signatures_verified: int) -> float:
        """Cost of processing one M-NDP hop: verify every signature in
        the chain, then sign the extension."""
        check_non_negative("signatures_verified", signatures_verified)
        return signatures_verified * self.t_ver + self.t_sig

"""Message authentication codes for the D-NDP handshake.

D-NDP's third and fourth messages carry ``f_K(ID | nonce)`` — a MAC under
the freshly derived pairwise key.  Tags are truncated to the paper's
``l_mac`` width (Table I implies ``l_mac = 44`` bits: the coded auth
frame is ``l_f = (1 + mu)(l_id + l_n + l_mac) = 160`` bits with
``mu = 1, l_id = 16, l_n = 20``).
"""

from __future__ import annotations

import hmac
from typing import Sequence

from repro.crypto.kdf import derive_bytes
from repro.errors import ConfigurationError
from repro.utils.validation import check_in_range

__all__ = ["MessageAuthenticator"]


class MessageAuthenticator:
    """Computes and checks truncated MAC tags under a shared key.

    Parameters
    ----------
    key:
        The pairwise key ``K_AB``.
    tag_bits:
        Truncated tag width, the paper's ``l_mac``.
    """

    def __init__(self, key: bytes, tag_bits: int = 44) -> None:
        if not key:
            raise ConfigurationError("key must be non-empty")
        check_in_range("tag_bits", tag_bits, 8, 256)
        self._key = bytes(key)
        self._tag_bits = int(tag_bits)

    @property
    def tag_bits(self) -> int:
        """Width of emitted tags."""
        return self._tag_bits

    def tag(self, *parts: bytes) -> bytes:
        """MAC over the concatenation of ``parts`` (length-delimited)."""
        material = b"".join(
            len(p).to_bytes(4, "big") + bytes(p) for p in self._check(parts)
        )
        full = derive_bytes(self._key, "mac", material)
        return self._truncate(full)

    def verify(self, tag: bytes, *parts: bytes) -> bool:
        """Constant-time check of a previously issued tag."""
        expected = self.tag(*parts)
        return hmac.compare_digest(expected, bytes(tag))

    def _truncate(self, full: bytes) -> bytes:
        n_bytes = (self._tag_bits + 7) // 8
        truncated = bytearray(full[:n_bytes])
        # Mask trailing bits beyond tag_bits so the wire width is exact.
        extra = n_bytes * 8 - self._tag_bits
        if extra:
            truncated[-1] &= 0xFF << extra & 0xFF
        return bytes(truncated)

    @staticmethod
    def _check(parts: Sequence[bytes]) -> Sequence[bytes]:
        for part in parts:
            if not isinstance(part, (bytes, bytearray)):
                raise ConfigurationError(
                    f"MAC input must be bytes, got {type(part).__name__}"
                )
        return parts

"""Key derivation helpers (HKDF-style, HMAC-SHA256 based).

All key material in the simulated IBC substrate flows through these two
functions so derivations are domain-separated by explicit labels and any
two independent labels yield computationally independent keys.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Union

from repro.errors import ConfigurationError

__all__ = ["derive_bytes", "expand_bytes"]

_HASH_LEN = 32

Context = Union[bytes, str, int]


def _canonical(part: Context) -> bytes:
    """Encode a context element unambiguously (length-prefixed)."""
    if isinstance(part, bytes):
        raw = part
    elif isinstance(part, str):
        raw = b"s:" + part.encode("utf-8")
    elif isinstance(part, int):
        if part < 0:
            raise ConfigurationError("integer context must be non-negative")
        raw = b"i:" + part.to_bytes((part.bit_length() + 7) // 8 or 1, "big")
    else:
        raise ConfigurationError(
            f"unsupported context type {type(part).__name__}"
        )
    return len(raw).to_bytes(4, "big") + raw


def derive_bytes(key: bytes, label: str, *context: Context) -> bytes:
    """Derive a 32-byte subkey from ``key`` bound to ``label`` + context.

    >>> a = derive_bytes(b"master", "sig", 7)
    >>> b = derive_bytes(b"master", "sig", 7)
    >>> c = derive_bytes(b"master", "sig", 8)
    >>> a == b, a == c
    (True, False)
    """
    if not isinstance(key, (bytes, bytearray)):
        raise ConfigurationError("key must be bytes")
    material = _canonical(label) + b"".join(_canonical(c) for c in context)
    return hmac.new(bytes(key), material, hashlib.sha256).digest()


def expand_bytes(key: bytes, length: int, label: str = "expand") -> bytes:
    """Expand ``key`` into ``length`` pseudorandom bytes (counter mode)."""
    if length <= 0:
        raise ConfigurationError(f"length must be positive, got {length}")
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(derive_bytes(key, label, counter))
        counter += 1
    return b"".join(blocks)[:length]

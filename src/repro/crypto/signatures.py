"""ID-based signatures (simulated).

M-NDP requests and responses carry a signature ``SIG_{K_A^{-1}}`` over the
prior message fields, verified by anyone using ``ID_A`` as the public key.
The simulation signs with an HMAC under the signer's authority-derived
signature key; verification recomputes the tag through the authority's
public parameters.  Signing requires the private key object, verification
does not — matching the asymmetry of the real ID-based scheme.

Signatures are truncated to the paper's ``l_sig = 672`` bits... except
that an HMAC-SHA256 tag is only 256 bits; the wire format pads tags to
``l_sig`` so message lengths (and hence transmission delays in
Theorem 4) match the paper's accounting.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass

from repro.crypto.identity import IBCPrivateKey, NodeId, PublicParameters
from repro.crypto.kdf import derive_bytes, expand_bytes
from repro.errors import AuthenticationError, ConfigurationError

__all__ = ["IdentitySignature", "SignatureScheme"]

_TAG_BYTES = 32


@dataclass(frozen=True)
class IdentitySignature:
    """A signature tag bound to a signer identity."""

    signer: NodeId
    tag: bytes

    def __post_init__(self) -> None:
        if len(self.tag) != _TAG_BYTES:
            raise ConfigurationError(
                f"signature tag must be {_TAG_BYTES} bytes, "
                f"got {len(self.tag)}"
            )

    def wire_bytes(self, l_sig_bits: int) -> bytes:
        """Pad the tag to the paper's ``l_sig`` wire width."""
        total = (l_sig_bits + 7) // 8
        if total < _TAG_BYTES:
            raise ConfigurationError(
                f"l_sig of {l_sig_bits} bits cannot carry a "
                f"{_TAG_BYTES}-byte tag"
            )
        padding = expand_bytes(self.tag, total - _TAG_BYTES, "sig-pad")
        return self.tag + padding


class SignatureScheme:
    """Sign with a private key; verify with the signer's ID.

    Parameters
    ----------
    params:
        The authority's public parameters (needed only for verification).
    """

    def __init__(self, params: PublicParameters) -> None:
        self._params = params

    def sign(self, key: IBCPrivateKey, message: bytes) -> IdentitySignature:
        """Produce ``SIG_{K^{-1}}(message)``."""
        if not isinstance(message, (bytes, bytearray)):
            raise ConfigurationError("message must be bytes")
        tag = derive_bytes(key.signing_key(), "sig", bytes(message))
        return IdentitySignature(key.node_id, tag)

    def verify(
        self, signer: NodeId, message: bytes, signature: IdentitySignature
    ) -> bool:
        """Check a signature against the claimed signer ID.

        Returns ``False`` (never raises) on mismatched signer, tampered
        message, or forged tag, since invalid signatures are an expected
        input under the DoS attack of Section V-D.
        """
        if signature.signer != signer:
            return False
        expected = derive_bytes(
            self._params.signature_key_for(signer), "sig", bytes(message)
        )
        return hmac.compare_digest(expected, signature.tag)

    def require_valid(
        self, signer: NodeId, message: bytes, signature: IdentitySignature
    ) -> None:
        """Raise :class:`AuthenticationError` unless the signature holds."""
        if not self.verify(signer, message, signature):
            raise AuthenticationError(
                f"signature by {signer!r} failed verification"
            )

"""Identity-based key infrastructure (simulating the paper's ref. [13]).

The authority holds a master secret.  Each node ``A`` gets an
:class:`IBCPrivateKey` bound to its :class:`NodeId`; the key can compute
the *pairwise shared key* ``K_AB`` with any peer ID such that both
endpoints derive the same value (``K_AB == K_BA``) without interaction —
exactly the SOK/Zhang-et-al. property D-NDP and M-NDP rely on.

Simulation note (also in DESIGN.md): the real construction's hardness
("no third node can compute ``K_AB``") is modelled by encapsulation.  The
private key object internally holds a pairwise-root secret derived from
the master, but the simulated adversary only ever calls the public API of
key objects it captured by compromising nodes, so the information
available to every simulated party matches the real scheme's security
semantics.  Key *values* are real 256-bit HMAC outputs, so protocol-level
properties (key agreement, MAC verification, session-code equality)
hold cryptographically, not by bookkeeping.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.kdf import derive_bytes
from repro.errors import AuthenticationError, ConfigurationError
from repro.utils.validation import check_in_range

__all__ = ["NodeId", "TrustedAuthority", "IBCPrivateKey", "PublicParameters"]


class NodeId:
    """A node identifier, the node's public key in the IBC scheme.

    Stored as an integer constrained to ``id_bits`` (the paper's
    ``l_id = 16``), so IDs round-trip through the over-the-air frames.
    """

    __slots__ = ("_value", "_id_bits")

    def __init__(self, value: int, id_bits: int = 16) -> None:
        check_in_range("id_bits", id_bits, 1, 64)
        check_in_range("node id", value, 0, (1 << id_bits) - 1)
        self._value = int(value)
        self._id_bits = int(id_bits)

    @property
    def value(self) -> int:
        """Integer value of the ID."""
        return self._value

    @property
    def id_bits(self) -> int:
        """Field width used on the air."""
        return self._id_bits

    def to_bytes(self) -> bytes:
        """Canonical byte encoding (big endian, fixed width)."""
        return self._value.to_bytes((self._id_bits + 7) // 8, "big")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeId):
            return NotImplemented
        return self._value == other._value and self._id_bits == other._id_bits

    def __lt__(self, other: "NodeId") -> bool:
        return self._value < other._value

    def __hash__(self) -> int:
        return hash((self._value, self._id_bits))

    def __repr__(self) -> str:
        return f"NodeId({self._value})"


class PublicParameters:
    """The authority's public parameters.

    In the real scheme these are the pairing group descriptions; here they
    carry a signature-verification oracle (see
    :class:`repro.crypto.signatures.SignatureScheme`) and the ID width.
    Verification is a *public* operation — anyone, including the
    adversary, may verify — so exposing an oracle backed by the master
    secret does not leak signing capability.
    """

    def __init__(self, authority: "TrustedAuthority", id_bits: int) -> None:
        self._authority = authority
        self._id_bits = int(id_bits)

    @property
    def id_bits(self) -> int:
        """ID width in bits."""
        return self._id_bits

    def signature_key_for(self, signer: NodeId) -> bytes:
        """Recompute the signer's signature key (internal to verification).

        Public verifiability of ID-based signatures is simulated by
        recomputing the HMAC key; callers outside
        :mod:`repro.crypto.signatures` should use
        :class:`~repro.crypto.signatures.SignatureScheme` instead.
        """
        return self._authority._signature_key(signer)


class IBCPrivateKey:
    """Node ``A``'s ID-based private key ``K_A^{-1}``.

    Exposes exactly two capabilities: non-interactive pairwise key
    agreement (:meth:`shared_key`) and message signing (via
    :meth:`signing_key`, consumed by
    :class:`~repro.crypto.signatures.SignatureScheme`).
    """

    def __init__(
        self, node_id: NodeId, pairwise_root: bytes, signing_key: bytes
    ) -> None:
        if len(pairwise_root) < 16 or len(signing_key) < 16:
            raise ConfigurationError("key material too short")
        self._node_id = node_id
        self._pairwise_root = pairwise_root
        self._signing_key = signing_key

    @property
    def node_id(self) -> NodeId:
        """The ID this private key belongs to."""
        return self._node_id

    def shared_key(self, peer: NodeId) -> bytes:
        """The pairwise key ``K_AB``; symmetric in the two identities.

        >>> authority = TrustedAuthority(b"m")
        >>> ka = authority.issue_private_key(NodeId(1))
        >>> kb = authority.issue_private_key(NodeId(2))
        >>> ka.shared_key(NodeId(2)) == kb.shared_key(NodeId(1))
        True
        """
        if peer == self._node_id:
            raise ConfigurationError(
                "a node does not form a pairwise key with itself"
            )
        low, high = sorted((self._node_id, peer))
        return derive_bytes(
            self._pairwise_root, "pairwise", low.to_bytes(), high.to_bytes()
        )

    def signing_key(self) -> bytes:
        """Key material for ID-based signatures (internal use)."""
        return self._signing_key

    def __repr__(self) -> str:
        return f"IBCPrivateKey(node={self._node_id!r})"


class TrustedAuthority:
    """The single MANET authority: issues private keys pre-deployment.

    Parameters
    ----------
    master_secret:
        The authority's master secret; every derivation is rooted here.
    id_bits:
        Width of node IDs (the paper's ``l_id``).
    """

    def __init__(self, master_secret: bytes, id_bits: int = 16) -> None:
        if not master_secret:
            raise ConfigurationError("master_secret must be non-empty")
        check_in_range("id_bits", id_bits, 1, 64)
        self._master = bytes(master_secret)
        self._id_bits = int(id_bits)
        self._pairwise_root = derive_bytes(self._master, "pairwise-root")

    @property
    def id_bits(self) -> int:
        """ID width in bits."""
        return self._id_bits

    def public_parameters(self) -> PublicParameters:
        """The scheme's public parameters (safe to hand to anyone)."""
        return PublicParameters(self, self._id_bits)

    def make_id(self, value: int) -> NodeId:
        """Construct a NodeId with this authority's ID width."""
        return NodeId(value, self._id_bits)

    def issue_private_key(self, node_id: NodeId) -> IBCPrivateKey:
        """Issue ``K_A^{-1}`` for a node (done before deployment)."""
        if node_id.id_bits != self._id_bits:
            raise AuthenticationError(
                f"node id width {node_id.id_bits} does not match the "
                f"authority's {self._id_bits}"
            )
        return IBCPrivateKey(
            node_id,
            pairwise_root=self._pairwise_root,
            signing_key=self._signature_key(node_id),
        )

    def _signature_key(self, node_id: NodeId) -> bytes:
        return derive_bytes(self._master, "signature", node_id.to_bytes())

    def pairwise_key(
        self, a: NodeId, b: NodeId, _check: Optional[bool] = True
    ) -> bytes:
        """Authority-side computation of ``K_AB`` (for tests/verification)."""
        if a == b:
            raise ConfigurationError("identical identities")
        low, high = sorted((a, b))
        return derive_bytes(
            self._pairwise_root, "pairwise", low.to_bytes(), high.to_bytes()
        )

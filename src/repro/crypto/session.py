"""Session spread-code derivation (end of D-NDP, Section V-B).

After mutual authentication, both nodes compute the session spread code
``C_AB = h_{K_AB}(n_A XOR n_B)`` — an ``N``-bit keyed hash of the XORed
nonces, used from then on for real-time-monitored unicast between the
pair.  The XOR makes the derivation order-independent, so both ends get
the identical code without knowing who initiated.
"""

from __future__ import annotations

from repro.crypto.kdf import derive_bytes, expand_bytes
from repro.dsss.spread_code import SpreadCode
from repro.errors import ConfigurationError
from repro.utils.bitstring import bits_from_bytes, nrz_from_bits
from repro.utils.validation import check_positive

__all__ = ["derive_session_code"]


def derive_session_code(
    shared_key: bytes,
    nonce_a: int,
    nonce_b: int,
    code_length: int,
    label: object = None,
) -> SpreadCode:
    """Derive ``C_AB = h_K(n_A XOR n_B)`` as an ``N``-chip spread code.

    Both endpoints call this with their own nonce first; the XOR makes
    the result identical.

    >>> a = derive_session_code(b"k" * 32, 3, 5, 64)
    >>> b = derive_session_code(b"k" * 32, 5, 3, 64)
    >>> a == b
    True
    """
    if not shared_key:
        raise ConfigurationError("shared_key must be non-empty")
    if nonce_a < 0 or nonce_b < 0:
        raise ConfigurationError("nonces must be non-negative")
    check_positive("code_length", code_length)
    mixed = nonce_a ^ nonce_b
    seed = derive_bytes(
        bytes(shared_key),
        "session-code",
        mixed.to_bytes((max(mixed.bit_length(), 1) + 7) // 8, "big"),
    )
    n_bytes = (int(code_length) + 7) // 8
    bits = bits_from_bytes(expand_bytes(seed, n_bytes, "session-chips"))
    chips = nrz_from_bits(bits[: int(code_length)])
    return SpreadCode(chips, code_id=label if label is not None else "session")

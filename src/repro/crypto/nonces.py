"""Nonces and replay protection.

Each D-NDP/M-NDP run uses fresh ``l_n``-bit nonces (Table I: 20 bits) to
bind the handshake messages together and to seed the session spread code.
:class:`ReplayCache` remembers recently seen ``(peer, nonce)`` pairs so a
replayed authentication message is rejected.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import check_in_range, check_positive

__all__ = ["NonceGenerator", "ReplayCache"]


class NonceGenerator:
    """Draws fixed-width random nonces from a dedicated RNG stream."""

    def __init__(self, rng: np.random.Generator, nonce_bits: int = 20) -> None:
        check_in_range("nonce_bits", nonce_bits, 8, 64)
        self._rng = rng
        self._nonce_bits = int(nonce_bits)

    @property
    def nonce_bits(self) -> int:
        """Width of generated nonces."""
        return self._nonce_bits

    def next(self) -> int:
        """A fresh random nonce in ``[0, 2^nonce_bits)``."""
        return int(self._rng.integers(0, 1 << self._nonce_bits))

    def to_bytes(self, nonce: int) -> bytes:
        """Canonical byte encoding of a nonce."""
        check_in_range("nonce", nonce, 0, (1 << self._nonce_bits) - 1)
        return int(nonce).to_bytes((self._nonce_bits + 7) // 8, "big")


class ReplayCache:
    """A bounded LRU set of seen identifiers.

    20-bit nonces are short, so the cache is scoped per peer: an entry is
    a ``(peer, nonce)`` tuple, and eviction is least-recently-seen once
    ``capacity`` is exceeded.
    """

    def __init__(self, capacity: int = 4096) -> None:
        check_positive("capacity", capacity)
        self._capacity = int(capacity)
        self._seen: "OrderedDict[Tuple[Hashable, ...], None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._seen)

    def seen_before(self, *key: Hashable) -> bool:
        """Record ``key``; return True if it was already present."""
        if not key:
            raise ConfigurationError("replay key must be non-empty")
        if key in self._seen:
            self._seen.move_to_end(key)
            return True
        self._seen[key] = None
        if len(self._seen) > self._capacity:
            self._seen.popitem(last=False)
        return False

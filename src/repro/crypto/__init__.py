"""Simulated identity-based cryptography (IBC) substrate.

The paper builds mutual authentication on the certificateless/ID-based
scheme of Zhang et al. [13] (itself on Boneh-Franklin pairings [14]): each
node's ID is its public key, the authority issues the matching private
key, any two nodes can *non-interactively* compute the same pairwise key
``K_AB = K_BA`` from their own private key and the peer's ID, and nodes
sign M-NDP messages with ID-verifiable signatures.

No pairing library is available offline, so this package simulates the
IBC primitives with HMAC constructions that preserve the exact interfaces
and agreement properties the protocol needs (see ``DESIGN.md``):

- the math trapdoor of the pairing is modelled by *object encapsulation*:
  a node can only compute what its :class:`~repro.crypto.identity.IBCPrivateKey`
  object exposes, and the adversary models in :mod:`repro.adversary` only
  ever use key objects captured from compromised nodes;
- wall-clock cost of the real primitives is modelled by the
  :class:`~repro.crypto.timing.CryptoTimingModel` (Table I: ``t_key``,
  ``t_sig``, ``t_ver``), charged on the simulated clock.
"""

from repro.crypto.identity import (
    IBCPrivateKey,
    NodeId,
    PublicParameters,
    TrustedAuthority,
)
from repro.crypto.kdf import derive_bytes, expand_bytes
from repro.crypto.mac import MessageAuthenticator
from repro.crypto.nonces import NonceGenerator, ReplayCache
from repro.crypto.session import derive_session_code
from repro.crypto.signatures import IdentitySignature, SignatureScheme
from repro.crypto.timing import CryptoTimingModel

__all__ = [
    "NodeId",
    "TrustedAuthority",
    "IBCPrivateKey",
    "PublicParameters",
    "SignatureScheme",
    "IdentitySignature",
    "MessageAuthenticator",
    "NonceGenerator",
    "ReplayCache",
    "derive_session_code",
    "derive_bytes",
    "expand_bytes",
    "CryptoTimingModel",
]

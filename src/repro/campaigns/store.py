"""The SQLite campaign results store.

One file holds everything a campaign produces: the spec that generated
it, every shard's :class:`~repro.experiments.runner.RunResult` rows,
and each shard's deterministic merged
:class:`~repro.obs.MetricsSnapshot`.  Rows are keyed by
``(campaign id, spec hash, git revision, shard index)`` so one store
can hold the same campaign executed at several revisions — which is
what ``campaign diff`` compares.

Two properties carry the resume guarantees:

- **Shard atomicity.**  A shard lands in a single transaction (shard
  row + run rows together).  SIGKILL mid-shard rolls the transaction
  back on the next open; the shard simply re-runs, and because a run's
  randomness depends only on ``(point seed, run index)`` it re-runs to
  the identical result.
- **Canonical form.**  On campaign completion the executor rebuilds
  the store from scratch — fixed page size, rows inserted in sorted
  key order, one transaction — and atomically replaces the working
  file.  A fresh SQLite database built by the same insert sequence is
  byte-deterministic, so a resumed campaign's final store is
  *bit-identical* to an uninterrupted run's.

Robustness (schema v2):

- a ``failures`` table records **quarantined runs** (runs benched by
  the pool supervisor after repeatedly killing their worker) and
  **infrastructure events** (engine degradations), keyed like every
  other row so resume logic can skip — or, with
  ``--retry-quarantined``, clear and re-execute — poisoned shards;
- every open runs ``PRAGMA integrity_check`` plus a spec-hash check
  over the stored campaign rows; a store that fails either (torn by a
  crash mid-page, bit-rotted, hand-edited) is **salvaged**: every
  readable, internally consistent shard (shard row + its full run
  complement) is carried into a rebuilt file that atomically replaces
  the damaged one, so a resume re-executes only what was actually
  lost;
- v1 stores migrate in place (the new table is created and the
  version stamped); unknown versions are still refused.

Canonical form is unaffected: quarantine rows block completion (their
shards never commit) and infrastructure events are execution telemetry,
excluded from the canonical export — so a completed campaign's bytes
are identical whether or not supervision had to intervene on the way.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import subprocess
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaigns.spec import CampaignSpec, Shard
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentResult, RunResult
from repro.obs import MetricsSnapshot, current
from repro.obs import names as _names

__all__ = [
    "CampaignStore",
    "current_git_revision",
    "STORE_SCHEMA_VERSION",
    "QUARANTINE_KIND",
    "INFRASTRUCTURE_KIND",
]

STORE_SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id  TEXT NOT NULL,
    spec_hash    TEXT NOT NULL,
    git_revision TEXT NOT NULL,
    spec_json    TEXT NOT NULL,
    status       TEXT NOT NULL,
    PRIMARY KEY (campaign_id, spec_hash, git_revision)
);
CREATE TABLE IF NOT EXISTS shards (
    campaign_id  TEXT NOT NULL,
    spec_hash    TEXT NOT NULL,
    git_revision TEXT NOT NULL,
    shard_index  INTEGER NOT NULL,
    point_index  INTEGER NOT NULL,
    params_json  TEXT NOT NULL,
    run_start    INTEGER NOT NULL,
    run_stop     INTEGER NOT NULL,
    metrics_json TEXT,
    PRIMARY KEY (campaign_id, spec_hash, git_revision, shard_index)
);
CREATE TABLE IF NOT EXISTS runs (
    campaign_id       TEXT NOT NULL,
    spec_hash         TEXT NOT NULL,
    git_revision      TEXT NOT NULL,
    shard_index       INTEGER NOT NULL,
    run_index         INTEGER NOT NULL,
    n_pairs           INTEGER NOT NULL,
    dndp_successes    INTEGER NOT NULL,
    mndp_successes    INTEGER NOT NULL,
    mean_degree       REAL NOT NULL,
    mean_dndp_latency REAL,
    PRIMARY KEY (campaign_id, spec_hash, git_revision, run_index,
                 shard_index)
);
CREATE TABLE IF NOT EXISTS failures (
    campaign_id  TEXT NOT NULL,
    spec_hash    TEXT NOT NULL,
    git_revision TEXT NOT NULL,
    shard_index  INTEGER NOT NULL,
    run_index    INTEGER NOT NULL,
    kind         TEXT NOT NULL,
    attempts     INTEGER NOT NULL,
    detail       TEXT NOT NULL,
    PRIMARY KEY (campaign_id, spec_hash, git_revision, shard_index,
                 run_index, kind)
);
"""

#: Column arity per table — the salvage path uses it to reject rows
#: recovered with a damaged shape.
_TABLE_ARITY = {
    "campaigns": 5,
    "shards": 9,
    "runs": 10,
    "failures": 8,
}

#: Failure-record kinds (the store is agnostic; these are the two the
#: executor writes).
QUARANTINE_KIND = "quarantine"
INFRASTRUCTURE_KIND = "infrastructure"


class _StoreCorruption(Exception):
    """Internal: the file failed integrity/consistency verification."""


def current_git_revision(cwd: Optional[str] = None) -> str:
    """The working tree's HEAD commit, or ``"unknown"`` outside git."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            cwd=cwd,
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return result.stdout.strip() or "unknown"


class CampaignStore:
    """Checkpointed SQLite persistence for campaign results.

    Use as a context manager; every write method commits its own
    transaction so an interrupted process never leaves a partial shard
    visible.
    """

    def __init__(self, path: str, salvage: bool = True) -> None:
        self._path = path
        #: Human-readable reason when this open had to salvage the
        #: file, else ``None`` — callers surface it in progress output.
        self.salvaged: Optional[str] = None
        try:
            self._conn = self._open_verified(path)
        except _StoreCorruption as damage:
            if not salvage:
                raise ConfigurationError(
                    f"campaign store {path} failed verification: "
                    f"{damage}"
                ) from damage
            self._conn = self._salvage(path, str(damage))
            self.salvaged = str(damage)

    @property
    def path(self) -> str:
        return self._path

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        self._conn.close()

    @staticmethod
    def _ensure_schema(conn: sqlite3.Connection) -> None:
        # Fix the page size *before* the first table exists so working
        # and canonical stores share their on-disk geometry everywhere.
        conn.execute("PRAGMA page_size = 4096")
        (version,) = conn.execute("PRAGMA user_version").fetchone()
        if version not in (0, 1, STORE_SCHEMA_VERSION):
            raise ConfigurationError(
                f"campaign store schema v{version} is not supported "
                f"(expected v{STORE_SCHEMA_VERSION})"
            )
        # ``IF NOT EXISTS`` throughout makes this both the fresh-file
        # bootstrap and the v1 → v2 migration (v2 only adds the
        # ``failures`` table; existing rows are untouched).
        conn.executescript(_SCHEMA)
        if version != STORE_SCHEMA_VERSION:
            conn.execute(
                f"PRAGMA user_version = {STORE_SCHEMA_VERSION}"
            )
            conn.commit()

    # -- open-time verification and salvage ----------------------------

    @classmethod
    def _open_verified(cls, path: str) -> sqlite3.Connection:
        """Open ``path`` and verify it, or raise :class:`_StoreCorruption`.

        Verification is two-layered: SQLite's own ``PRAGMA
        integrity_check`` catches physical damage (torn pages, broken
        b-trees), and re-hashing every stored ``spec_json`` against its
        ``spec_hash`` column catches logical damage that leaves the
        pages well-formed.  Unsupported schema *versions* are a policy
        refusal, not damage — they raise ``ConfigurationError`` and are
        never salvaged.
        """
        conn = sqlite3.connect(path)
        try:
            try:
                findings = conn.execute(
                    "PRAGMA integrity_check"
                ).fetchall()
            except sqlite3.DatabaseError as error:
                raise _StoreCorruption(f"unreadable database: {error}")
            if findings != [("ok",)]:
                summary = "; ".join(
                    str(row[0]) for row in findings[:3]
                )
                raise _StoreCorruption(
                    f"integrity_check failed: {summary}"
                )
            try:
                cls._ensure_schema(conn)
                mismatched = cls._spec_hash_mismatches(conn)
                torn = cls._torn_shards(conn)
            except sqlite3.DatabaseError as error:
                raise _StoreCorruption(f"damaged schema: {error}")
            if mismatched:
                raise _StoreCorruption(
                    "spec hash does not match stored spec for: "
                    + ", ".join(mismatched)
                )
            if torn:
                raise _StoreCorruption(
                    "shards missing run rows (torn commit): "
                    + ", ".join(torn)
                )
        except BaseException:  # jrsnd: noqa(JRS003) -- verification failed for *any* reason: close the handle, then re-raise unchanged
            conn.close()
            raise
        return conn

    @staticmethod
    def _spec_hash_mismatches(conn: sqlite3.Connection) -> List[str]:
        mismatched = []
        for campaign_id, spec_hash, revision, spec_json in conn.execute(
            "SELECT campaign_id, spec_hash, git_revision, spec_json "
            "FROM campaigns"
        ):
            digest = hashlib.sha256(
                str(spec_json).encode("utf-8")
            ).hexdigest()[:16]
            if digest != spec_hash:
                mismatched.append(f"{campaign_id}@{revision}")
        return mismatched

    @staticmethod
    def _torn_shards(conn: sqlite3.Connection) -> List[str]:
        """Shards whose run-row count disagrees with their range.

        Shard commits are single transactions, so a healthy store can
        never disagree — a mismatch means the file lost rows to
        corruption that left the pages themselves well-formed.
        """
        torn = []
        for (campaign_id, spec_hash, revision, shard_index, run_start,
             run_stop) in conn.execute(
            "SELECT campaign_id, spec_hash, git_revision, "
            "shard_index, run_start, run_stop FROM shards"
        ).fetchall():
            (count,) = conn.execute(
                "SELECT COUNT(*) FROM runs WHERE campaign_id = ? "
                "AND spec_hash = ? AND git_revision = ? "
                "AND shard_index = ?",
                (campaign_id, spec_hash, revision, shard_index),
            ).fetchone()
            if count != run_stop - run_start:
                torn.append(
                    f"shard {shard_index} of {campaign_id}@{revision}"
                )
        return torn

    @staticmethod
    def _readable_rows(
        conn: sqlite3.Connection, table: str
    ) -> List[Tuple[Any, ...]]:
        """Best-effort row dump: stop at the first unreadable row."""
        rows: List[Tuple[Any, ...]] = []
        try:
            cursor = conn.execute(f"SELECT * FROM {table}")
        except sqlite3.DatabaseError:
            return rows
        arity = _TABLE_ARITY[table]
        while True:
            try:
                row = cursor.fetchone()
            except sqlite3.DatabaseError:
                break
            if row is None:
                break
            if len(row) == arity:
                rows.append(tuple(row))
        return rows

    @classmethod
    def _salvage(cls, path: str, why: str) -> sqlite3.Connection:
        """Rebuild a damaged store from its readable, consistent rows.

        Keeps exactly the **last committed shard set**: a campaign row
        survives only if its spec hash verifies, a shard row only if
        its full run complement (``run_stop - run_start`` rows) was
        readable, and run/failure rows only under a surviving parent.
        Surviving campaigns are demoted to ``running`` so a resumed
        executor re-executes the lost shards and re-canonicalizes.
        The rebuilt file atomically replaces the damaged one.
        """
        current().inc(_names.CAMPAIGNS_STORE_SALVAGED)
        recovered: Dict[str, List[Tuple[Any, ...]]] = {
            table: [] for table in _TABLE_ARITY
        }
        try:
            damaged: Optional[sqlite3.Connection] = sqlite3.connect(
                path
            )
        except sqlite3.DatabaseError:
            damaged = None
        if damaged is not None:
            for table in recovered:
                recovered[table] = cls._readable_rows(damaged, table)
            try:
                damaged.close()
            except sqlite3.DatabaseError:
                pass
        campaigns = []
        for row in recovered["campaigns"]:
            campaign_id, spec_hash, revision, spec_json, _status = row
            digest = hashlib.sha256(
                str(spec_json).encode("utf-8")
            ).hexdigest()[:16]
            if digest == spec_hash:
                campaigns.append(
                    (campaign_id, spec_hash, revision, spec_json,
                     "running")
                )
        keys = {row[:3] for row in campaigns}
        runs_per_shard: Dict[Tuple[Any, ...], int] = {}
        for row in recovered["runs"]:
            shard_key = row[:4]
            runs_per_shard[shard_key] = (
                runs_per_shard.get(shard_key, 0) + 1
            )
        shards = [
            row
            for row in recovered["shards"]
            if row[:3] in keys
            and runs_per_shard.get(row[:4], 0)
            == int(row[7]) - int(row[6])
        ]
        shard_keys = {row[:4] for row in shards}
        runs = [
            row for row in recovered["runs"] if row[:4] in shard_keys
        ]
        failures = [
            row for row in recovered["failures"] if row[:3] in keys
        ]
        rebuilt = path + ".salvage.tmp"
        if os.path.exists(rebuilt):
            os.unlink(rebuilt)
        conn = sqlite3.connect(rebuilt)
        try:
            cls._ensure_schema(conn)
            with conn:
                for table, rows in (
                    ("campaigns", campaigns),
                    ("shards", shards),
                    ("runs", runs),
                    ("failures", failures),
                ):
                    placeholders = ", ".join(
                        "?" * _TABLE_ARITY[table]
                    )
                    conn.executemany(
                        f"INSERT INTO {table} "
                        f"VALUES ({placeholders})",
                        sorted(rows),
                    )
        except BaseException:  # jrsnd: noqa(JRS003) -- the half-built salvage file must not leak an open handle; re-raised unchanged
            conn.close()
            raise
        conn.close()
        os.replace(rebuilt, path)
        return sqlite3.connect(path)

    # -- campaign lifecycle --------------------------------------------

    def register_campaign(
        self, spec: CampaignSpec, git_revision: str
    ) -> None:
        """Idempotently record the campaign row for this revision.

        Re-registering the same ``name`` with a *different* spec hash
        raises: a store must never silently mix results of two specs
        under one campaign id.
        """
        spec_hash = spec.spec_hash()
        rows = self._conn.execute(
            "SELECT spec_hash FROM campaigns WHERE campaign_id = ?",
            (spec.name,),
        ).fetchall()
        for (existing_hash,) in rows:
            if existing_hash != spec_hash:
                raise ConfigurationError(
                    f"campaign {spec.name!r} already exists with spec "
                    f"hash {existing_hash}; refusing to mix results "
                    f"with spec hash {spec_hash}"
                )
        existing = self._conn.execute(
            "SELECT status FROM campaigns WHERE campaign_id = ? "
            "AND spec_hash = ? AND git_revision = ?",
            (spec.name, spec_hash, git_revision),
        ).fetchone()
        if existing is None:
            self._conn.execute(
                "INSERT INTO campaigns VALUES (?, ?, ?, ?, ?)",
                (spec.name, spec_hash, git_revision, spec.to_json(),
                 "running"),
            )
            self._conn.commit()

    def campaign_status(
        self, campaign_id: str, spec_hash: str, git_revision: str
    ) -> Optional[str]:
        row = self._conn.execute(
            "SELECT status FROM campaigns WHERE campaign_id = ? "
            "AND spec_hash = ? AND git_revision = ?",
            (campaign_id, spec_hash, git_revision),
        ).fetchone()
        return None if row is None else str(row[0])

    def mark_complete(
        self, campaign_id: str, spec_hash: str, git_revision: str,
        status: str = "complete",
    ) -> None:
        self._conn.execute(
            "UPDATE campaigns SET status = ? WHERE campaign_id = ? "
            "AND spec_hash = ? AND git_revision = ?",
            (status, campaign_id, spec_hash, git_revision),
        )
        self._conn.commit()

    # -- shard persistence ---------------------------------------------

    def completed_shards(
        self, campaign_id: str, spec_hash: str, git_revision: str
    ) -> frozenset:
        """Indices of shards already committed for this key."""
        rows = self._conn.execute(
            "SELECT shard_index FROM shards WHERE campaign_id = ? "
            "AND spec_hash = ? AND git_revision = ?",
            (campaign_id, spec_hash, git_revision),
        ).fetchall()
        return frozenset(index for (index,) in rows)

    def write_shard(
        self,
        spec: CampaignSpec,
        git_revision: str,
        shard: Shard,
        results: Sequence[RunResult],
        metrics: Optional[MetricsSnapshot],
    ) -> None:
        """Commit one finished shard atomically (shard row + runs)."""
        if len(results) != shard.n_runs:
            raise ConfigurationError(
                f"shard {shard.index} expected {shard.n_runs} results, "
                f"got {len(results)}"
            )
        spec_hash = spec.spec_hash()
        metrics_json = (
            None if metrics is None
            else metrics.deterministic().to_json(indent=None)
        )
        with self._conn:  # one transaction: all rows or none
            self._conn.execute(
                "INSERT INTO shards VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    spec.name, spec_hash, git_revision, shard.index,
                    shard.point.index, shard.point.params_json(),
                    shard.run_start, shard.run_stop, metrics_json,
                ),
            )
            self._conn.executemany(
                "INSERT INTO runs VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        spec.name, spec_hash, git_revision, shard.index,
                        run_index, result.n_pairs,
                        result.dndp_successes, result.mndp_successes,
                        result.mean_degree, result.mean_dndp_latency,
                    )
                    for run_index, result in zip(
                        shard.run_indices, results
                    )
                ],
            )

    # -- failure records ------------------------------------------------

    def record_failure(
        self,
        campaign_id: str,
        spec_hash: str,
        git_revision: str,
        shard_index: int,
        run_index: int,
        kind: str,
        attempts: int,
        detail: str,
    ) -> None:
        """Upsert one failure record (quarantine or infrastructure).

        ``run_index`` is the quarantined run for ``kind="quarantine"``;
        infrastructure events use negative indices (``-1``, ``-2``,
        ...) — they describe the engine, not a run — so several events
        at one shard coexist under the primary key.
        """
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO failures "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id, spec_hash, git_revision,
                    int(shard_index), int(run_index), kind,
                    int(attempts), detail,
                ),
            )

    def failure_records(
        self,
        campaign_id: str,
        spec_hash: str,
        git_revision: str,
        kind: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Failure records for this key, ordered deterministically."""
        query = (
            "SELECT shard_index, run_index, kind, attempts, detail "
            "FROM failures WHERE campaign_id = ? AND spec_hash = ? "
            "AND git_revision = ?"
        )
        params: List[Any] = [campaign_id, spec_hash, git_revision]
        if kind is not None:
            query += " AND kind = ?"
            params.append(kind)
        query += " ORDER BY shard_index, run_index, kind"
        return [
            {
                "shard_index": shard_index,
                "run_index": run_index,
                "kind": row_kind,
                "attempts": attempts,
                "detail": detail,
            }
            for shard_index, run_index, row_kind, attempts, detail
            in self._conn.execute(query, params)
        ]

    def quarantined_shards(
        self, campaign_id: str, spec_hash: str, git_revision: str
    ) -> frozenset:
        """Indices of shards holding at least one quarantined run."""
        rows = self._conn.execute(
            "SELECT DISTINCT shard_index FROM failures "
            "WHERE campaign_id = ? AND spec_hash = ? "
            "AND git_revision = ? AND kind = ?",
            (campaign_id, spec_hash, git_revision, QUARANTINE_KIND),
        ).fetchall()
        return frozenset(index for (index,) in rows)

    def clear_failures(
        self,
        campaign_id: str,
        spec_hash: str,
        git_revision: str,
        kind: Optional[str] = None,
    ) -> int:
        """Delete failure records for this key; returns rows removed."""
        query = (
            "DELETE FROM failures WHERE campaign_id = ? "
            "AND spec_hash = ? AND git_revision = ?"
        )
        params: List[Any] = [campaign_id, spec_hash, git_revision]
        if kind is not None:
            query += " AND kind = ?"
            params.append(kind)
        with self._conn:
            cursor = self._conn.execute(query, params)
        return int(cursor.rowcount)

    # -- queries --------------------------------------------------------

    def list_campaigns(self) -> List[Dict[str, Any]]:
        """One row per (campaign, spec hash, revision) with progress."""
        rows = self._conn.execute(
            "SELECT campaign_id, spec_hash, git_revision, spec_json, "
            "status FROM campaigns "
            "ORDER BY campaign_id, spec_hash, git_revision"
        ).fetchall()
        campaigns = []
        for campaign_id, spec_hash, revision, spec_json, status in rows:
            spec = CampaignSpec.from_json(spec_json)
            done = len(
                self.completed_shards(campaign_id, spec_hash, revision)
            )
            campaigns.append(
                {
                    "campaign_id": campaign_id,
                    "spec_hash": spec_hash,
                    "git_revision": revision,
                    "status": status,
                    "shards_done": done,
                    "shards_total": len(spec.shards()),
                    "spec": spec,
                }
            )
        return campaigns

    def spec_for(
        self, campaign_id: str, git_revision: Optional[str] = None
    ) -> Tuple[CampaignSpec, str]:
        """``(spec, git_revision)`` for a stored campaign.

        With several revisions present and none requested, the
        lexicographically last revision is returned (deterministic).
        """
        if git_revision is None:
            row = self._conn.execute(
                "SELECT spec_json, git_revision FROM campaigns "
                "WHERE campaign_id = ? "
                "ORDER BY git_revision DESC LIMIT 1",
                (campaign_id,),
            ).fetchone()
        else:
            row = self._conn.execute(
                "SELECT spec_json, git_revision FROM campaigns "
                "WHERE campaign_id = ? AND git_revision = ?",
                (campaign_id, git_revision),
            ).fetchone()
        if row is None:
            raise ConfigurationError(
                f"campaign {campaign_id!r} not found in {self._path}"
            )
        return CampaignSpec.from_json(row[0]), str(row[1])

    def point_results(
        self, campaign_id: str, spec_hash: str, git_revision: str
    ) -> Dict[int, Tuple[Dict[str, Any], ExperimentResult]]:
        """Per-point ``(params, ExperimentResult)`` rebuilt from runs.

        Runs are ordered by run index (then shard index), so the
        reconstructed :class:`ExperimentResult` aggregates exactly as
        an in-process sweep of the same point would.
        """
        shard_points = {
            shard_index: (point_index, params_json)
            for shard_index, point_index, params_json
            in self._conn.execute(
                "SELECT shard_index, point_index, params_json "
                "FROM shards WHERE campaign_id = ? AND spec_hash = ? "
                "AND git_revision = ?",
                (campaign_id, spec_hash, git_revision),
            )
        }
        by_point: Dict[int, List[RunResult]] = {}
        params_by_point: Dict[int, Dict[str, Any]] = {}
        rows = self._conn.execute(
            "SELECT shard_index, run_index, n_pairs, dndp_successes, "
            "mndp_successes, mean_degree, mean_dndp_latency FROM runs "
            "WHERE campaign_id = ? AND spec_hash = ? "
            "AND git_revision = ? ORDER BY run_index, shard_index",
            (campaign_id, spec_hash, git_revision),
        ).fetchall()
        for (shard_index, _run_index, n_pairs, dndp, mndp, degree,
             latency) in rows:
            point_index, params_json = shard_points[shard_index]
            params_by_point.setdefault(
                point_index, json.loads(params_json)
            )
            by_point.setdefault(point_index, []).append(
                RunResult(
                    n_pairs=n_pairs,
                    dndp_successes=dndp,
                    mndp_successes=mndp,
                    mean_degree=degree,
                    mean_dndp_latency=latency,
                )
            )
        return {
            point_index: (
                params_by_point[point_index],
                ExperimentResult(runs=tuple(results)),
            )
            for point_index, results in sorted(by_point.items())
        }

    def shard_metrics(
        self, campaign_id: str, spec_hash: str, git_revision: str
    ) -> Dict[int, Optional[MetricsSnapshot]]:
        """Each committed shard's merged deterministic snapshot."""
        rows = self._conn.execute(
            "SELECT shard_index, metrics_json FROM shards "
            "WHERE campaign_id = ? AND spec_hash = ? "
            "AND git_revision = ? ORDER BY shard_index",
            (campaign_id, spec_hash, git_revision),
        ).fetchall()
        return {
            index: (
                None if text is None
                else MetricsSnapshot.from_json(text)
            )
            for index, text in rows
        }

    # -- canonical form -------------------------------------------------

    def _all_rows(self) -> Dict[str, List[Tuple[Any, ...]]]:
        tables = {}
        for table in ("campaigns", "shards", "runs", "failures"):
            columns = [
                info[1]
                for info in self._conn.execute(
                    f"PRAGMA table_info({table})"
                )
            ]
            order = ", ".join(columns)
            tables[table] = self._conn.execute(
                f"SELECT * FROM {table} ORDER BY {order}"
            ).fetchall()
        return tables

    def canonical_digest(self) -> str:
        """SHA-256 over every row in canonical order.

        A logical content address: two stores with identical results
        have identical digests regardless of the insertion history
        that produced them.  ``campaign status`` prints it and the CI
        smoke compares it across the kill/resume and uninterrupted
        paths (alongside byte equality of the canonical files).
        """
        digest = hashlib.sha256()
        for table, rows in sorted(self._all_rows().items()):
            digest.update(table.encode("utf-8"))
            for row in rows:
                digest.update(
                    json.dumps(row, sort_keys=True).encode("utf-8")
                )
        return digest.hexdigest()

    def export_canonical(
        self,
        path: str,
        mark_complete: Optional[Tuple[str, str, str]] = None,
    ) -> None:
        """Rebuild this store's content as a byte-deterministic file.

        Fresh database, fixed page size, schema first, then every row
        inserted in sorted-key order inside one transaction: the same
        content always produces the same bytes.

        ``mark_complete`` — a ``(campaign_id, spec_hash, revision)``
        key — stamps that campaign's status as ``complete`` *in the
        exported rows only*.  The executor relies on this: the working
        store stays ``running`` until the canonical file atomically
        replaces it, so a crash at any instant leaves either a
        resumable working store or a finished canonical one, never an
        ambiguous in-between.

        Infrastructure failure records (engine degradations) are
        execution telemetry, not campaign content: they are dropped
        from the export so a campaign that had to degrade mid-flight
        still canonicalizes byte-identically to an undisturbed one.
        Quarantine records *are* content (they block completion) and
        are carried through.
        """
        if os.path.exists(path):
            os.unlink(path)
        conn = sqlite3.connect(path)
        try:
            conn.execute("PRAGMA page_size = 4096")
            conn.executescript(_SCHEMA)
            conn.execute(
                f"PRAGMA user_version = {STORE_SCHEMA_VERSION}"
            )
            conn.commit()
            rows = self._all_rows()
            if mark_complete is not None:
                rows["campaigns"] = [
                    (
                        tuple(row[:4]) + ("complete",)
                        if tuple(row[:3]) == tuple(mark_complete)
                        else row
                    )
                    for row in rows["campaigns"]
                ]
            rows["failures"] = [
                row for row in rows["failures"]
                if row[5] != INFRASTRUCTURE_KIND
            ]
            with conn:
                for table in ("campaigns", "shards", "runs",
                              "failures"):
                    if not rows[table]:
                        continue
                    placeholders = ", ".join(
                        "?" for _ in rows[table][0]
                    )
                    conn.executemany(
                        f"INSERT INTO {table} VALUES ({placeholders})",
                        rows[table],
                    )
        finally:
            conn.close()

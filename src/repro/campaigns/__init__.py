"""repro.campaigns — sharded, resumable Monte Carlo sweep campaigns.

The paper's evaluation (Section VI) sweeps n/m/l/q/nu and the jammer
strategy over a 2000-node field, 100 runs per point.  One
``NetworkExperiment`` call can execute a point, but a full evaluation
is hours of compute that must survive interruption and leave a
queryable record.  This package adds that layer:

- :class:`CampaignSpec` — a declarative grid over the paper's
  parameters plus runs-per-point and a root seed, expanded
  *deterministically* into numbered shards (``spec.shards()``); the
  spec's canonical JSON is content-hashed so a store can refuse to mix
  results from different specs under one campaign name;
- :class:`CampaignStore` — a SQLite results store; each finished shard
  commits its :class:`~repro.experiments.runner.RunResult` rows and
  deterministic merged :class:`~repro.obs.MetricsSnapshot` in a single
  transaction keyed by ``(campaign id, spec hash, shard index, git
  revision)``, so a SIGKILL mid-shard rolls back cleanly;
- :func:`run_campaign` — the executor: skips shards already in the
  store, runs the rest through the existing
  :func:`~repro.experiments.parallel.run_parallel` machinery, and on
  completion rewrites the store into a canonical byte-deterministic
  form — resuming after a kill yields a file bit-identical to an
  uninterrupted run, and re-running a finished campaign is a no-op.

``python -m repro campaign launch|resume|status|query|diff`` is the
command-line surface; see ``docs/architecture.md`` ("Campaigns & the
results store") and the EXPERIMENTS.md recipe reproducing the paper's
Figure 4/5 sweeps as one resumable campaign.
"""

from repro.campaigns.spec import (
    CampaignPoint,
    CampaignSpec,
    Shard,
    GRID_AXES,
)
from repro.campaigns.store import CampaignStore, current_git_revision
from repro.campaigns.executor import CampaignStatus, run_campaign

__all__ = [
    "CampaignPoint",
    "CampaignSpec",
    "CampaignStatus",
    "CampaignStore",
    "GRID_AXES",
    "Shard",
    "current_git_revision",
    "run_campaign",
]

"""Declarative campaign specs and their deterministic expansion.

A spec is data, not code: a base config preset, a grid of axis values,
runs per point, and a root seed.  Everything downstream — point order,
shard boundaries, per-point seeds, the content hash — is a pure
function of that data, which is what makes a campaign resumable: any
process expanding the same spec produces the same shard list, so a
store populated by a killed run composes seamlessly with the shards a
resuming run still has to execute.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.adversary.jammer import JammerStrategy
from repro.core.config import JRSNDConfig
from repro.core.mndp import COMPUTE_BACKENDS
from repro.errors import ConfigurationError
from repro.experiments.scenarios import preset_config
from repro.utils.rng import SeedSequencer
from repro.utils.validation import check_positive

__all__ = ["GRID_AXES", "CampaignPoint", "Shard", "CampaignSpec"]

#: Sweepable axes: the paper's n / m / l / q / nu plus the PHY noise
#: level, the jammer strategy, and the link model.  Config axes map
#: straight onto :class:`JRSNDConfig` fields; the two protocol axes
#: are handled by the experiment constructor.
CONFIG_AXES = (
    "n_nodes",
    "codes_per_node",
    "share_count",
    "n_compromised",
    "nu",
    "phy_noise_std",
)
PROTOCOL_AXES = ("strategy", "link_model")
GRID_AXES = CONFIG_AXES + PROTOCOL_AXES

_STRATEGIES = {
    "reactive": JammerStrategy.REACTIVE,
    "random": JammerStrategy.RANDOM,
}
_LINK_MODELS = ("codes", "independent")


@dataclass(frozen=True)
class CampaignPoint:
    """One fully resolved grid point of a campaign.

    ``params`` holds the axis values that distinguish this point
    (config overrides plus strategy/link_model), in sorted-key order;
    ``seed`` is the point's derived root seed, a pure function of the
    campaign seed and the point index.
    """

    index: int
    params: Tuple[Tuple[str, Any], ...]
    seed: int

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def params_json(self) -> str:
        """Canonical JSON of the point's parameters (stable key order)."""
        return json.dumps(dict(self.params), sort_keys=True,
                          separators=(",", ":"))


@dataclass(frozen=True)
class Shard:
    """A checkpointable unit of work: a run range of one point."""

    index: int
    point: CampaignPoint
    run_start: int
    run_stop: int

    @property
    def n_runs(self) -> int:
        return self.run_stop - self.run_start

    @property
    def run_indices(self) -> range:
        return range(self.run_start, self.run_stop)


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative, hashable description of one sweep campaign.

    Attributes
    ----------
    name:
        Campaign identifier; the store keys results under it.
    seed:
        Root seed; every point derives an independent child seed.
    runs_per_point:
        Monte Carlo runs per grid point (the paper uses 100).
    grid:
        Axis name -> value list; axes are :data:`GRID_AXES`.  The
        expansion is the cartesian product with axes iterated in
        sorted-name order and values in their given order.
    base:
        Config preset name (``paper`` / ``small`` / ``tiny``, see
        :data:`repro.experiments.scenarios.CONFIG_PRESETS`).
    strategy, link_model:
        Defaults for points whose grid does not sweep them.
    runs_per_shard:
        Checkpoint granularity: a point's runs are chunked into shards
        of at most this many runs (default: one shard per point).
    mndp_rounds, compute_backend, collect_metrics, sample_latency:
        Forwarded to :class:`~repro.experiments.runner.NetworkExperiment`.
    phy_backend:
        Optional PHY override forwarded to the experiment; ``None``
        (default) keeps the base preset's ``config.phy_backend`` (so a
        ``*-chipless`` base is not silently overridden).
    pool_cache_size:
        Constructed experiments each persistent-pool worker keeps warm
        (LRU); size it at or above the campaign's distinct point count
        to make every revisit a cache hit.
    pool_chunksize:
        Run indices per pool task message; ``None`` (default) lets
        :func:`~repro.experiments.pool.adaptive_chunksize` choose.
    max_run_retries:
        Times the pool supervisor retries a run whose worker died
        before quarantining it as a tagged failure (see
        :class:`~repro.experiments.pool.SupervisionPolicy`).
    run_timeout:
        Per-run soft timeout in seconds; a worker silent that long is
        classified hung, killed, and its runs retried.  ``None``
        (default) disables the timeout sweep entirely.
    """

    name: str
    seed: int
    runs_per_point: int
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    base: str = "paper"
    strategy: str = "reactive"
    link_model: str = "codes"
    runs_per_shard: Optional[int] = None
    mndp_rounds: int = 1
    compute_backend: str = "vectorized"
    collect_metrics: bool = True
    sample_latency: bool = False
    phy_backend: Optional[str] = None
    pool_cache_size: int = 8
    pool_chunksize: Optional[int] = None
    max_run_retries: int = 2
    run_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("-", "").replace(
            "_", ""
        ).isalnum():
            raise ConfigurationError(
                f"campaign name must be a non-empty slug, got {self.name!r}"
            )
        check_positive("runs_per_point", self.runs_per_point)
        if self.runs_per_shard is not None:
            check_positive("runs_per_shard", self.runs_per_shard)
        check_positive("mndp_rounds", self.mndp_rounds)
        check_positive("pool_cache_size", self.pool_cache_size)
        if self.pool_chunksize is not None:
            check_positive("pool_chunksize", self.pool_chunksize)
        if self.max_run_retries < 0:
            raise ConfigurationError(
                f"max_run_retries must be >= 0, "
                f"got {self.max_run_retries}"
            )
        if self.run_timeout is not None:
            check_positive("run_timeout", self.run_timeout)
        for axis, values in self.grid.items():
            if axis not in GRID_AXES:
                raise ConfigurationError(
                    f"unknown grid axis {axis!r}; sweepable axes are "
                    f"{sorted(GRID_AXES)}"
                )
            if not isinstance(values, (list, tuple)) or not values:
                raise ConfigurationError(
                    f"grid axis {axis!r} needs a non-empty value list"
                )
        if self.strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {sorted(_STRATEGIES)}, "
                f"got {self.strategy!r}"
            )
        for value in self.grid.get("strategy", ()):
            if value not in _STRATEGIES:
                raise ConfigurationError(
                    f"grid strategy {value!r} must be one of "
                    f"{sorted(_STRATEGIES)}"
                )
        if self.link_model not in _LINK_MODELS:
            raise ConfigurationError(
                f"link_model must be one of {_LINK_MODELS}, "
                f"got {self.link_model!r}"
            )
        for value in self.grid.get("link_model", ()):
            if value not in _LINK_MODELS:
                raise ConfigurationError(
                    f"grid link_model {value!r} must be one of "
                    f"{_LINK_MODELS}"
                )
        if self.compute_backend not in COMPUTE_BACKENDS:
            raise ConfigurationError(
                f"compute_backend must be one of {COMPUTE_BACKENDS}, "
                f"got {self.compute_backend!r}"
            )
        if self.phy_backend is not None:
            from repro.dsss.phy import PHY_BACKENDS

            if self.phy_backend not in PHY_BACKENDS:
                raise ConfigurationError(
                    f"phy_backend must be one of {PHY_BACKENDS}, "
                    f"got {self.phy_backend!r}"
                )
        # Resolving the preset now surfaces a bad name at spec-build
        # time instead of deep inside shard 0.
        preset_config(self.base)

    # -- canonical form and hashing ------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form (grid values as lists)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "runs_per_point": self.runs_per_point,
            "grid": {
                axis: list(values)
                for axis, values in sorted(self.grid.items())
            },
            "base": self.base,
            "strategy": self.strategy,
            "link_model": self.link_model,
            "runs_per_shard": self.runs_per_shard,
            "mndp_rounds": self.mndp_rounds,
            "compute_backend": self.compute_backend,
            "collect_metrics": self.collect_metrics,
            "sample_latency": self.sample_latency,
            "phy_backend": self.phy_backend,
            "pool_cache_size": self.pool_cache_size,
            "pool_chunksize": self.pool_chunksize,
            "max_run_retries": self.max_run_retries,
            "run_timeout": self.run_timeout,
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators.

        Two specs with the same content always serialize to the same
        bytes, so :meth:`spec_hash` is a content address.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def spec_hash(self) -> str:
        """SHA-256 of the canonical JSON (first 16 hex chars)."""
        digest = hashlib.sha256(self.to_json().encode("utf-8"))
        return digest.hexdigest()[:16]

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        known = {
            "name", "seed", "runs_per_point", "grid", "base",
            "strategy", "link_model", "runs_per_shard", "mndp_rounds",
            "compute_backend", "collect_metrics", "sample_latency",
            "phy_backend", "pool_cache_size", "pool_chunksize",
            "max_run_retries", "run_timeout",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown campaign spec fields: {sorted(unknown)}"
            )
        for required in ("name", "seed", "runs_per_point"):
            if required not in data:
                raise ConfigurationError(
                    f"campaign spec is missing {required!r}"
                )
        return cls(
            name=str(data["name"]),
            seed=int(data["seed"]),
            runs_per_point=int(data["runs_per_point"]),
            grid={
                str(axis): list(values)
                for axis, values in dict(data.get("grid", {})).items()
            },
            base=str(data.get("base", "paper")),
            strategy=str(data.get("strategy", "reactive")),
            link_model=str(data.get("link_model", "codes")),
            runs_per_shard=(
                None if data.get("runs_per_shard") is None
                else int(data["runs_per_shard"])
            ),
            mndp_rounds=int(data.get("mndp_rounds", 1)),
            compute_backend=str(
                data.get("compute_backend", "vectorized")
            ),
            collect_metrics=bool(data.get("collect_metrics", True)),
            sample_latency=bool(data.get("sample_latency", False)),
            phy_backend=(
                None if data.get("phy_backend") is None
                else str(data["phy_backend"])
            ),
            pool_cache_size=int(data.get("pool_cache_size", 8)),
            pool_chunksize=(
                None if data.get("pool_chunksize") is None
                else int(data["pool_chunksize"])
            ),
            max_run_retries=int(data.get("max_run_retries", 2)),
            run_timeout=(
                None if data.get("run_timeout") is None
                else float(data["run_timeout"])
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"campaign spec is not valid JSON: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ConfigurationError("campaign spec must be a JSON object")
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # -- deterministic expansion ---------------------------------------

    def points(self) -> List[CampaignPoint]:
        """The grid's cartesian product, in deterministic order.

        Axes iterate in sorted-name order, values in spec order; the
        point index is the product's enumeration order and the point
        seed derives from ``(campaign seed, point index)`` only.
        """
        axes = sorted(self.grid)
        value_lists = [list(self.grid[axis]) for axis in axes]
        seeds = SeedSequencer(self.seed)
        points = []
        for index, combo in enumerate(
            itertools.product(*value_lists) if axes else [()]
        ):
            params = dict(zip(axes, combo))
            params.setdefault("strategy", self.strategy)
            params.setdefault("link_model", self.link_model)
            points.append(
                CampaignPoint(
                    index=index,
                    params=tuple(sorted(params.items())),
                    seed=seeds.child(f"point-{index}").seed,
                )
            )
        return points

    def shards(self) -> List[Shard]:
        """Every point's runs chunked into checkpointable shards."""
        chunk = self.runs_per_shard or self.runs_per_point
        shards = []
        for point in self.points():
            for start in range(0, self.runs_per_point, chunk):
                stop = min(start + chunk, self.runs_per_point)
                shards.append(
                    Shard(
                        index=len(shards),
                        point=point,
                        run_start=start,
                        run_stop=stop,
                    )
                )
        return shards

    def point_config(self, point: CampaignPoint) -> JRSNDConfig:
        """The resolved :class:`JRSNDConfig` for one point."""
        overrides = {
            axis: value
            for axis, value in point.params
            if axis in CONFIG_AXES
        }
        return preset_config(self.base).replace(**overrides)

    def point_strategy(self, point: CampaignPoint) -> JammerStrategy:
        return _STRATEGIES[point.params_dict["strategy"]]

    def point_link_model(self, point: CampaignPoint) -> str:
        return str(point.params_dict["link_model"])

"""The campaign executor: expand, skip, run, commit, canonicalize.

The control loop is deliberately dumb — all the intelligence lives in
the determinism guarantees around it:

1. expand the spec into shards (pure function of the spec);
2. ask the store which shard indices are already committed for this
   ``(campaign, spec hash, git revision)`` and skip them;
3. run each remaining shard through
   :func:`~repro.experiments.parallel.run_parallel` with the point's
   derived seed and the shard's run-index range;
4. commit the shard's results and merged deterministic metrics in one
   transaction;
5. when every shard is present, mark the campaign complete and
   atomically replace the working store with its canonical
   byte-deterministic rebuild.

A SIGKILL anywhere in steps 3-4 loses at most the in-flight shard's
work; the next ``resume`` re-executes exactly that shard and the final
store is bit-identical to an uninterrupted run's.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from typing import Callable, Optional

from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import CampaignStore, current_git_revision
from repro.errors import ConfigurationError
from repro.experiments.parallel import run_parallel
from repro.obs import current
from repro.obs import names as _names
from repro.utils.fileio import atomic_write_text

__all__ = ["CampaignStatus", "run_campaign"]


@dataclass(frozen=True)
class CampaignStatus:
    """What one ``run_campaign`` invocation did."""

    campaign_id: str
    spec_hash: str
    git_revision: str
    shards_total: int
    shards_skipped: int
    shards_executed: int
    runs_executed: int
    complete: bool
    canonical_digest: str

    @property
    def was_noop(self) -> bool:
        """True when every shard was already in the store."""
        return self.shards_executed == 0 and self.complete


def _self_sigkill() -> None:
    """Deliver an uncatchable SIGKILL to this process.

    The ``--kill-after-shards`` testing hook uses the real signal (not
    ``sys.exit``) so the interruption path exercised by tests and the
    CI smoke is byte-for-byte the one a ``kill -9`` or OOM kill takes:
    no ``atexit``, no ``finally``, no sqlite connection cleanup.
    """
    os.kill(os.getpid(), signal.SIGKILL)


def run_campaign(
    spec: CampaignSpec,
    store_path: str,
    processes: Optional[int] = None,
    max_shards: Optional[int] = None,
    kill_after_shards: Optional[int] = None,
    git_revision: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignStatus:
    """Launch or resume ``spec`` against the store at ``store_path``.

    Launching and resuming are the same operation: shards already
    committed under ``(spec.name, spec hash, git revision)`` are
    skipped, the rest execute in shard-index order.  Re-invoking on a
    finished campaign is a no-op that leaves the store untouched.

    Parameters
    ----------
    processes:
        Worker processes per shard (forwarded to ``run_parallel``).
    max_shards:
        Stop gracefully after executing this many shards (testing and
        budgeted execution); the campaign stays resumable.
    kill_after_shards:
        Testing hook: SIGKILL this process immediately after the
        N-th shard commit, simulating a hard crash mid-campaign.
    git_revision:
        Override the revision key (defaults to ``git rev-parse HEAD``).
    progress:
        Optional line sink for human-readable progress.
    """
    if max_shards is not None and max_shards < 0:
        raise ConfigurationError("max_shards must be >= 0")
    revision = git_revision or current_git_revision()
    shards = spec.shards()
    spec_hash = spec.spec_hash()
    emit = progress or (lambda line: None)
    registry = current()

    executed = 0
    runs_executed = 0
    with CampaignStore(store_path) as store:
        store.register_campaign(spec, revision)
        done = store.completed_shards(spec.name, spec_hash, revision)
        # 'complete' is only ever written by the canonical export, so
        # it also certifies the file is already in canonical form.
        already_complete = (
            store.campaign_status(spec.name, spec_hash, revision)
            == "complete"
        )
        skipped = len(done)
        if skipped:
            registry.inc(_names.CAMPAIGNS_RESUMED)
            registry.inc(_names.CAMPAIGNS_SHARDS_SKIPPED, skipped)
            emit(
                f"resuming: {skipped}/{len(shards)} shards already "
                f"in store"
            )
        for shard in shards:
            if shard.index in done:
                continue
            if max_shards is not None and executed >= max_shards:
                break
            point = shard.point
            with registry.timer(_names.CAMPAIGNS_SHARD_SECONDS):
                result = run_parallel(
                    spec.point_config(point),
                    seed=point.seed,
                    runs=shard.n_runs,
                    processes=processes,
                    strategy=spec.point_strategy(point),
                    mndp_rounds=spec.mndp_rounds,
                    link_model=spec.point_link_model(point),
                    collect_metrics=spec.collect_metrics,
                    compute_backend=spec.compute_backend,
                    run_indices=shard.run_indices,
                    phy_backend=spec.phy_backend,
                )
            metrics = (
                result.merged_metrics()
                if spec.collect_metrics else None
            )
            store.write_shard(spec, revision, shard, result.runs, metrics)
            executed += 1
            runs_executed += shard.n_runs
            registry.inc(_names.CAMPAIGNS_SHARDS_COMPLETED)
            registry.inc(_names.CAMPAIGNS_RUNS_EXECUTED, shard.n_runs)
            registry.inc(_names.CAMPAIGNS_STORE_COMMITS)
            emit(
                f"shard {shard.index + 1}/{len(shards)} committed "
                f"(point {point.index}, runs "
                f"{shard.run_start}..{shard.run_stop - 1})"
            )
            if (
                kill_after_shards is not None
                and executed >= kill_after_shards
            ):
                emit(f"kill-after-shards={kill_after_shards}: SIGKILL")
                _self_sigkill()
        done = store.completed_shards(spec.name, spec_hash, revision)
        complete = len(done) == len(shards)

    if complete and not already_complete:
        _canonicalize(
            store_path, (spec.name, spec_hash, revision)
        )
        with CampaignStore(store_path) as store:
            digest = store.canonical_digest()
        _write_summary_sidecar(store_path, spec, revision, digest)
        emit(f"campaign complete; canonical store at {store_path}")
    else:
        with CampaignStore(store_path) as store:
            digest = store.canonical_digest()
        if complete:
            emit("campaign already complete; store untouched")
        else:
            emit(
                f"stopped with {len(shards) - len(done)} shards "
                f"remaining; resume with the same spec to continue"
            )

    return CampaignStatus(
        campaign_id=spec.name,
        spec_hash=spec_hash,
        git_revision=revision,
        shards_total=len(shards),
        shards_skipped=skipped,
        shards_executed=executed,
        runs_executed=runs_executed,
        complete=complete,
        canonical_digest=digest,
    )


def _canonicalize(store_path, campaign_key) -> None:
    """Atomically replace the working store with its canonical form,
    stamping ``campaign_key`` complete in the exported rows."""
    tmp_path = store_path + ".canonical.tmp"
    with CampaignStore(store_path) as store:
        store.export_canonical(tmp_path, mark_complete=campaign_key)
    os.replace(tmp_path, store_path)


def _write_summary_sidecar(
    store_path: str,
    spec: CampaignSpec,
    git_revision: str,
    digest: str,
) -> None:
    """A small JSON sidecar for dashboards and CI artifact diffing.

    Written through the same atomic helper as ``--metrics-out``; an
    interrupt can never leave a truncated sidecar next to a valid
    store.
    """
    import json

    summary = {
        "campaign_id": spec.name,
        "spec_hash": spec.spec_hash(),
        "git_revision": git_revision,
        "canonical_digest": digest,
        "points": len(spec.points()),
        "shards": len(spec.shards()),
        "runs_per_point": spec.runs_per_point,
    }
    atomic_write_text(
        store_path + ".summary.json",
        json.dumps(summary, indent=2, sort_keys=True),
    )

"""The campaign executor: expand, skip, run, commit, canonicalize.

The control loop is deliberately dumb — all the intelligence lives in
the determinism guarantees around it:

1. expand the spec into shards (pure function of the spec);
2. ask the store which shard indices are already committed for this
   ``(campaign, spec hash, git revision)`` and skip them;
3. run each remaining shard through
   :func:`~repro.experiments.parallel.run_parallel` with the point's
   derived seed and the shard's run-index range;
4. commit the shard's results and merged deterministic metrics in one
   transaction;
5. when every shard is present, mark the campaign complete and
   atomically replace the working store with its canonical
   byte-deterministic rebuild.

By default the whole grid executes on one persistent
:class:`~repro.experiments.pool.WorkerPool` (workers and their cached
experiments survive across shards) and the loop pipelines one shard
deep: shard N+1 is submitted to the pool *before* shard N's SQLite
commit runs on the main thread, so commit latency overlaps compute
instead of serializing with it.  Because a shard's results are a pure
function of ``(spec, shard)``, the store bytes are unaffected by the
engine — ``use_pool=False`` (CLI ``--no-pool``) falls back to one
``run_parallel`` pool per shard and produces an identical store.

A SIGKILL anywhere in steps 3-4 loses at most the in-flight shards'
work (the committing one, plus the pipelined next one); the next
``resume`` re-executes exactly those shards and the final store is
bit-identical to an uninterrupted run's.

Self-healing (the supervision layer):

- Worker deaths inside a shard are absorbed by the pool supervisor
  (respawn + seed-pure retry, see
  :class:`~repro.experiments.pool.SupervisionPolicy`); the executor
  never sees them.
- A run that exhausts its retry budget comes back as a **quarantined**
  failure: the executor persists one failure record per poisoned run,
  leaves the shard uncommitted, and moves on.  Plain resume skips
  quarantined shards; ``retry_quarantined=True`` clears the records
  and re-executes them.
- Supervision itself giving up (respawn budget exhausted, spawn
  failure) triggers **graceful degradation** instead of an exception:
  persistent pool → fresh per-shard pool → serial in-process
  execution, each step announced loudly on the progress sink and
  recorded as an infrastructure event.  Because every engine produces
  bit-identical results, degradation changes throughput, never bytes.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.campaigns.spec import CampaignSpec, Shard
from repro.campaigns.store import (
    INFRASTRUCTURE_KIND,
    QUARANTINE_KIND,
    CampaignStore,
    current_git_revision,
)
from repro.errors import (
    ConfigurationError,
    ParallelExecutionError,
    WorkerPoolError,
    is_quarantined_failure,
)
from repro.experiments.parallel import collect_outcomes, run_parallel
from repro.experiments.pool import (
    ExperimentSpec,
    PendingRun,
    SupervisionPolicy,
    WorkerPool,
    available_cpu_count,
)
from repro.obs import current
from repro.obs import names as _names
from repro.utils.fileio import atomic_write_text

__all__ = ["CampaignStatus", "run_campaign"]


@dataclass(frozen=True)
class CampaignStatus:
    """What one ``run_campaign`` invocation did."""

    campaign_id: str
    spec_hash: str
    git_revision: str
    shards_total: int
    shards_skipped: int
    shards_executed: int
    runs_executed: int
    complete: bool
    canonical_digest: str
    #: Quarantine records present in the store when this invocation
    #: returned (store-wide for this key, not just this invocation).
    runs_quarantined: int = 0
    shards_quarantined: int = 0
    #: Engine-degradation messages emitted by this invocation.
    degraded: Tuple[str, ...] = field(default=())

    @property
    def was_noop(self) -> bool:
        """True when every shard was already in the store."""
        return self.shards_executed == 0 and self.complete


def _self_sigkill() -> None:
    """Deliver an uncatchable SIGKILL to this process.

    The ``--kill-after-shards`` testing hook uses the real signal (not
    ``sys.exit``) so the interruption path exercised by tests and the
    CI smoke is byte-for-byte the one a ``kill -9`` or OOM kill takes:
    no ``atexit``, no ``finally``, no sqlite connection cleanup.
    """
    os.kill(os.getpid(), signal.SIGKILL)


def _shard_experiment_spec(
    spec: CampaignSpec, shard: Shard
) -> ExperimentSpec:
    """The pool-side spec for one shard — mirrors the ``run_parallel``
    arguments of the per-shard path exactly, so both engines build
    byte-identical experiments."""
    point = shard.point
    return ExperimentSpec(
        config=spec.point_config(point),
        seed=point.seed,
        strategy_value=spec.point_strategy(point).value,
        mndp_rounds=spec.mndp_rounds,
        link_model=spec.point_link_model(point),
        collect_metrics=spec.collect_metrics,
        compute_backend=spec.compute_backend,
        phy_backend=spec.phy_backend,
    )


def run_campaign(
    spec: CampaignSpec,
    store_path: str,
    processes: Optional[int] = None,
    max_shards: Optional[int] = None,
    kill_after_shards: Optional[int] = None,
    git_revision: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    use_pool: bool = True,
    retry_quarantined: bool = False,
    supervision: Optional[SupervisionPolicy] = None,
    execution_faults: Any = None,
) -> CampaignStatus:
    """Launch or resume ``spec`` against the store at ``store_path``.

    Launching and resuming are the same operation: shards already
    committed under ``(spec.name, spec hash, git revision)`` are
    skipped, the rest execute in shard-index order.  Re-invoking on a
    finished campaign is a no-op that leaves the store untouched.

    Parameters
    ----------
    processes:
        Worker processes (sizes the persistent pool, or is forwarded
        per shard to ``run_parallel`` with ``use_pool=False``).
        Defaults to the CPUs available to this process.
    max_shards:
        Stop gracefully after executing this many shards (testing and
        budgeted execution); the campaign stays resumable.
    kill_after_shards:
        Testing hook: SIGKILL this process immediately after the
        N-th shard commit, simulating a hard crash mid-campaign.
    git_revision:
        Override the revision key (defaults to ``git rev-parse HEAD``).
    progress:
        Optional line sink for human-readable progress.
    use_pool:
        Drive every shard through one persistent
        :class:`~repro.experiments.pool.WorkerPool`, overlapping each
        shard's commit with the next shard's execution (default).
        ``False`` restores the per-shard-pool engine; the resulting
        store is bit-identical either way.  With a single available
        CPU the persistent pool is skipped automatically — forking one
        worker to do what the parent could do inline is pure overhead.
    retry_quarantined:
        Clear this campaign's quarantine records and re-execute their
        shards.  Plain resume (the default) skips quarantined shards —
        a run that repeatedly killed its worker will do so again
        unless something changed.
    supervision:
        Pool supervision policy override.  Defaults to a policy built
        from the spec's ``max_run_retries`` / ``run_timeout`` knobs,
        so retry budgets are part of the campaign's declarative
        description.
    execution_faults:
        Test-only chaos hook forwarded to the worker boundary (see
        :mod:`repro.faults.execution`); the serial fallback ignores it
        (there is no worker process to kill).
    """
    if max_shards is not None and max_shards < 0:
        raise ConfigurationError("max_shards must be >= 0")
    revision = git_revision or current_git_revision()
    shards = spec.shards()
    spec_hash = spec.spec_hash()
    emit = progress or (lambda line: None)
    registry = current()
    policy = supervision or SupervisionPolicy(
        max_run_retries=spec.max_run_retries,
        run_timeout=spec.run_timeout,
    )

    executed = 0
    runs_executed = 0
    degradations: List[str] = []
    with CampaignStore(store_path) as store:
        if store.salvaged:
            emit(
                f"!! store {store_path} was damaged and has been "
                f"salvaged to its last committed shard set "
                f"({store.salvaged}); lost shards will re-execute"
            )
        store.register_campaign(spec, revision)

        def _record_degradation(
            stage_from: str, stage_to: str, shard_index: int,
            error: BaseException,
        ) -> str:
            """Announce + persist one engine-degradation event."""
            registry.inc(_names.POOL_DEGRADED)
            message = (
                f"supervision gave up on engine {stage_from!r} at "
                f"shard {shard_index} ({error}); degrading to "
                f"{stage_to!r}"
            )
            emit("!! " + message)
            # Negative run indices enumerate degradation events so
            # several steps down the ladder at one shard all persist.
            store.record_failure(
                spec.name, spec_hash, revision, shard_index,
                -(len(degradations) + 1),
                INFRASTRUCTURE_KIND, 0, message,
            )
            degradations.append(message)
            return stage_to

        done = store.completed_shards(spec.name, spec_hash, revision)
        # 'complete' is only ever written by the canonical export, so
        # it also certifies the file is already in canonical form.
        already_complete = (
            store.campaign_status(spec.name, spec_hash, revision)
            == "complete"
        )
        skipped = len(done)
        if skipped:
            registry.inc(_names.CAMPAIGNS_RESUMED)
            registry.inc(_names.CAMPAIGNS_SHARDS_SKIPPED, skipped)
            emit(
                f"resuming: {skipped}/{len(shards)} shards already "
                f"in store"
            )
        quarantined_shards = store.quarantined_shards(
            spec.name, spec_hash, revision
        )
        if quarantined_shards and retry_quarantined:
            cleared = store.clear_failures(
                spec.name, spec_hash, revision, kind=QUARANTINE_KIND
            )
            emit(
                f"retry-quarantined: cleared {cleared} quarantine "
                f"record(s); re-executing "
                f"{len(quarantined_shards)} shard(s)"
            )
            quarantined_shards = frozenset()
        elif quarantined_shards:
            emit(
                f"skipping {len(quarantined_shards)} quarantined "
                f"shard(s); resume with --retry-quarantined to "
                f"re-execute them"
            )
        pending: List[Shard] = []
        for shard in shards:
            if shard.index in done:
                continue
            if shard.index in quarantined_shards:
                continue
            if max_shards is not None and len(pending) >= max_shards:
                break
            pending.append(shard)

        workers = processes or available_cpu_count()
        # The engine ladder: "pool" (persistent, pipelined) degrades
        # to "per-shard" (fresh supervised pool per shard) degrades to
        # "serial" (in-process).  All three are bit-identical.
        engine = (
            "pool" if use_pool and workers > 1 and pending
            else "per-shard"
        )
        pool: Optional[WorkerPool] = None
        if engine == "pool":
            try:
                pool = WorkerPool(
                    processes=workers,
                    cache_size=spec.pool_cache_size,
                    policy=policy,
                    execution_faults=execution_faults,
                )
            except (WorkerPoolError, OSError) as error:
                engine = _record_degradation(
                    "pool", "per-shard", pending[0].index, error
                )
        try:
            handle: Optional[PendingRun] = None
            elapsed_total = 0.0
            for position, shard in enumerate(pending):
                point = shard.point
                started = time.perf_counter()
                result = None
                quarantined_here = False
                while result is None and not quarantined_here:
                    try:
                        if engine == "pool":
                            assert pool is not None
                            if handle is None:
                                handle = pool.submit(
                                    _shard_experiment_spec(spec, shard),
                                    shard.run_indices,
                                    chunksize=spec.pool_chunksize,
                                )
                            outcomes = handle.wait()
                            handle = None
                            # Pipeline one shard deep: hand the pool
                            # the next shard *before* this one's
                            # commit, so the SQLite transaction below
                            # overlaps worker compute.
                            if position + 1 < len(pending):
                                nxt = pending[position + 1]
                                try:
                                    handle = pool.submit(
                                        _shard_experiment_spec(
                                            spec, nxt
                                        ),
                                        nxt.run_indices,
                                        chunksize=spec.pool_chunksize,
                                    )
                                except WorkerPoolError:
                                    # Degrade when we reach it; this
                                    # shard's outcomes are intact.
                                    handle = None
                            result = collect_outcomes(
                                outcomes, shard.n_runs
                            )
                        else:
                            result = run_parallel(
                                spec.point_config(point),
                                seed=point.seed,
                                runs=shard.n_runs,
                                processes=(
                                    workers if engine == "per-shard"
                                    else 1
                                ),
                                strategy=spec.point_strategy(point),
                                mndp_rounds=spec.mndp_rounds,
                                link_model=spec.point_link_model(
                                    point
                                ),
                                collect_metrics=spec.collect_metrics,
                                compute_backend=spec.compute_backend,
                                run_indices=shard.run_indices,
                                phy_backend=spec.phy_backend,
                                chunksize=spec.pool_chunksize,
                                supervision=policy,
                                execution_faults=(
                                    execution_faults
                                    if engine == "per-shard" else None
                                ),
                            )
                    except (WorkerPoolError, OSError) as error:
                        # Infrastructure failure: supervision itself
                        # gave up.  Step down the ladder and re-run
                        # this shard (identical bits on any engine).
                        registry.inc(_names.CAMPAIGNS_SHARDS_RETRIED)
                        if engine == "pool":
                            engine = _record_degradation(
                                "pool", "per-shard", shard.index,
                                error,
                            )
                            handle = None
                            if pool is not None:
                                pool.close()
                                pool = None
                        elif engine == "per-shard":
                            engine = _record_degradation(
                                "per-shard", "serial", shard.index,
                                error,
                            )
                        else:
                            raise
                    except ParallelExecutionError as error:
                        quarantined = [
                            (index, tb)
                            for index, tb in error.failures
                            if is_quarantined_failure(tb)
                        ]
                        if len(quarantined) != len(error.failures):
                            # Genuine run failures (bad config, bug in
                            # a component) are not supervision's
                            # domain: surface them unchanged.
                            raise
                        for run_index, tb in quarantined:
                            store.record_failure(
                                spec.name, spec_hash, revision,
                                shard.index, run_index,
                                QUARANTINE_KIND,
                                policy.max_run_retries + 1, tb,
                            )
                        registry.inc(
                            _names.CAMPAIGNS_SHARDS_QUARANTINED
                        )
                        registry.inc(
                            _names.CAMPAIGNS_RUNS_QUARANTINED,
                            len(quarantined),
                        )
                        emit(
                            f"!! shard {shard.index + 1}/"
                            f"{len(shards)}: {len(quarantined)} "
                            f"run(s) quarantined (worker killed or "
                            f"hung on every attempt); shard left "
                            f"uncommitted — resume with "
                            f"--retry-quarantined to re-execute"
                        )
                        quarantined_here = True
                if quarantined_here:
                    continue
                assert result is not None
                metrics = (
                    result.merged_metrics()
                    if spec.collect_metrics else None
                )
                store.write_shard(
                    spec, revision, shard, result.runs, metrics
                )
                elapsed = time.perf_counter() - started
                elapsed_total += elapsed
                registry.record_seconds(
                    _names.CAMPAIGNS_SHARD_SECONDS, elapsed
                )
                executed += 1
                runs_executed += shard.n_runs
                registry.inc(_names.CAMPAIGNS_SHARDS_COMPLETED)
                registry.inc(
                    _names.CAMPAIGNS_RUNS_EXECUTED, shard.n_runs
                )
                registry.inc(_names.CAMPAIGNS_STORE_COMMITS)
                rate = shard.n_runs / elapsed if elapsed > 0 else 0.0
                eta = (elapsed_total / executed) * (
                    len(pending) - executed
                )
                emit(
                    f"shard {shard.index + 1}/{len(shards)} committed "
                    f"(point {point.index}, runs "
                    f"{shard.run_start}..{shard.run_stop - 1}) "
                    f"[{rate:.1f} runs/s, ETA {eta:.1f}s]"
                )
                if (
                    kill_after_shards is not None
                    and executed >= kill_after_shards
                ):
                    emit(
                        f"kill-after-shards={kill_after_shards}: "
                        f"SIGKILL"
                    )
                    _self_sigkill()
        finally:
            if pool is not None:
                pool.close()
        done = store.completed_shards(spec.name, spec_hash, revision)
        complete = len(done) == len(shards)
        quarantine_records = store.failure_records(
            spec.name, spec_hash, revision, kind=QUARANTINE_KIND
        )

    runs_quarantined = len(quarantine_records)
    shards_quarantined = len(
        {record["shard_index"] for record in quarantine_records}
    )
    if complete and not already_complete:
        _canonicalize(
            store_path, (spec.name, spec_hash, revision)
        )
        with CampaignStore(store_path) as store:
            digest = store.canonical_digest()
        _write_summary_sidecar(store_path, spec, revision, digest)
        emit(f"campaign complete; canonical store at {store_path}")
    else:
        with CampaignStore(store_path) as store:
            digest = store.canonical_digest()
        if complete:
            emit("campaign already complete; store untouched")
        else:
            remaining = len(shards) - len(done)
            note = (
                f" ({shards_quarantined} of them quarantined)"
                if shards_quarantined else ""
            )
            emit(
                f"stopped with {remaining} shards "
                f"remaining{note}; resume with the same spec to "
                f"continue"
            )

    return CampaignStatus(
        campaign_id=spec.name,
        spec_hash=spec_hash,
        git_revision=revision,
        shards_total=len(shards),
        shards_skipped=skipped,
        shards_executed=executed,
        runs_executed=runs_executed,
        complete=complete,
        canonical_digest=digest,
        runs_quarantined=runs_quarantined,
        shards_quarantined=shards_quarantined,
        degraded=tuple(degradations),
    )


def _canonicalize(store_path, campaign_key) -> None:
    """Atomically replace the working store with its canonical form,
    stamping ``campaign_key`` complete in the exported rows."""
    tmp_path = store_path + ".canonical.tmp"
    with CampaignStore(store_path) as store:
        store.export_canonical(tmp_path, mark_complete=campaign_key)
    os.replace(tmp_path, store_path)


def _write_summary_sidecar(
    store_path: str,
    spec: CampaignSpec,
    git_revision: str,
    digest: str,
) -> None:
    """A small JSON sidecar for dashboards and CI artifact diffing.

    Written through the same atomic helper as ``--metrics-out``; an
    interrupt can never leave a truncated sidecar next to a valid
    store.
    """
    import json

    summary = {
        "campaign_id": spec.name,
        "spec_hash": spec.spec_hash(),
        "git_revision": git_revision,
        "canonical_digest": digest,
        "points": len(spec.points()),
        "shards": len(spec.shards()),
        "runs_per_point": spec.runs_per_point,
    }
    atomic_write_text(
        store_path + ".summary.json",
        json.dumps(summary, indent=2, sort_keys=True),
    )

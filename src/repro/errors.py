"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with one ``except`` clause.  Subsystems
define narrower classes here rather than locally so that cross-module code
(e.g. the protocol engines catching decode failures from the ECC layer) does
not need to import deep internals.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class SpreadCodeError(ReproError):
    """Invalid spread-code construction or use."""


class SynchronizationError(ReproError):
    """The sliding-window synchronizer could not lock onto a message."""


class DecodeError(ReproError):
    """A codec failed to decode a (possibly corrupted) message."""


class EccDecodeError(DecodeError):
    """Reed-Solomon (or other ECC) decoding failed: too many errors."""


class AuthenticationError(ReproError):
    """A signature or MAC verification failed."""


class ProtocolError(ReproError):
    """A protocol state machine received an invalid or unexpected message."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class RevokedCodeError(ReproError):
    """An operation was attempted with a locally revoked spread code."""


class WorkerPoolError(ReproError):
    """The worker-pool machinery itself failed beyond repair.

    The execution plane classifies failures into three families:

    - **transient** — a worker died or hung but supervision absorbed
      it: the worker was respawned and the affected runs were retried
      (bit-identically, runs are seed-pure).  Transient failures never
      raise; they are visible only as ``pool.workers_respawned`` /
      ``pool.runs_retried`` counters.
    - **quarantine** — a run exceeded its retry budget (it keeps
      killing or hanging its worker).  The run is reported as a tagged
      failure outcome carrying :data:`QUARANTINE_MARKER` and surfaces
      through :class:`ParallelExecutionError`; the pool survives.
    - **infrastructure** — supervision itself failed (respawn budget
      exhausted, spawn failures, a closed/broken pool).  Only this
      family raises ``WorkerPoolError``; the campaign executor reacts
      by degrading to a simpler engine rather than aborting.
    """


#: Prefix tagging a failure traceback as a *quarantined* run: one that
#: repeatedly killed or hung its worker and was benched after
#: exhausting its retry budget, rather than a run that raised.
QUARANTINE_MARKER = "[quarantined]"


def quarantine_failure(run_index, attempts, reason):
    """The tagged failure text for a quarantined run."""
    return (
        f"{QUARANTINE_MARKER} run {run_index} killed or hung its "
        f"worker on all {attempts} attempts; last failure: {reason}"
    )


def is_quarantined_failure(traceback_text):
    """True if a failure traceback marks a quarantined run."""
    return str(traceback_text).startswith(QUARANTINE_MARKER)


#: The concrete exception families a Monte Carlo worker run may raise
#: and have reported back as data (index + traceback) instead of
#: aborting the whole ``multiprocessing`` map: the package's own error
#: taxonomy, numpy's numeric/shape failures (``ValueError``,
#: ``ArithmeticError``), container/attribute programming errors
#: surfaced by a bad configuration, and OS-level failures.  Anything
#: outside these families — most notably ``KeyboardInterrupt`` and
#: ``SystemExit`` — propagates immediately.
WORKER_TRAPPED_ERRORS = (
    ReproError,
    ValueError,
    TypeError,
    ArithmeticError,
    LookupError,
    AttributeError,
    RuntimeError,
    OSError,
    MemoryError,
)


class ParallelExecutionError(ReproError):
    """One or more Monte Carlo worker runs failed.

    Unlike a bare ``multiprocessing.Pool`` abort, the completed runs are
    not lost: they are attached as ``completed`` (an
    ``ExperimentResult``) alongside ``failures`` — a tuple of
    ``(run_index, traceback_text)`` pairs, one per failed run.
    """

    def __init__(self, message, failures=(), completed=None):
        super().__init__(message)
        self.failures = tuple(failures)
        self.completed = completed

    def __reduce__(self):
        # The default Exception.__reduce__ only preserves ``args``, so
        # an instance crossing a process boundary (e.g. raised inside a
        # multiprocessing pool and re-raised in the parent) would arrive
        # with ``failures``/``completed`` reset — losing the worker
        # tracebacks exactly when they matter most.
        return (
            type(self),
            (self.args[0] if self.args else "", self.failures,
             self.completed),
        )

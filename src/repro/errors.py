"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with one ``except`` clause.  Subsystems
define narrower classes here rather than locally so that cross-module code
(e.g. the protocol engines catching decode failures from the ECC layer) does
not need to import deep internals.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A configuration value is missing, inconsistent, or out of range."""


class SpreadCodeError(ReproError):
    """Invalid spread-code construction or use."""


class SynchronizationError(ReproError):
    """The sliding-window synchronizer could not lock onto a message."""


class DecodeError(ReproError):
    """A codec failed to decode a (possibly corrupted) message."""


class EccDecodeError(DecodeError):
    """Reed-Solomon (or other ECC) decoding failed: too many errors."""


class AuthenticationError(ReproError):
    """A signature or MAC verification failed."""


class ProtocolError(ReproError):
    """A protocol state machine received an invalid or unexpected message."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class RevokedCodeError(ReproError):
    """An operation was attempted with a locally revoked spread code."""


class WorkerPoolError(ReproError):
    """The persistent worker-pool machinery itself failed.

    Raised for *infrastructure* failures — a worker process died, the
    dispatch protocol was violated, or a job was submitted to a closed
    or broken pool.  Failures of individual Monte Carlo runs are never
    reported through this class: they travel back as tagged outcome
    data and surface as :class:`ParallelExecutionError`.
    """


#: The concrete exception families a Monte Carlo worker run may raise
#: and have reported back as data (index + traceback) instead of
#: aborting the whole ``multiprocessing`` map: the package's own error
#: taxonomy, numpy's numeric/shape failures (``ValueError``,
#: ``ArithmeticError``), container/attribute programming errors
#: surfaced by a bad configuration, and OS-level failures.  Anything
#: outside these families — most notably ``KeyboardInterrupt`` and
#: ``SystemExit`` — propagates immediately.
WORKER_TRAPPED_ERRORS = (
    ReproError,
    ValueError,
    TypeError,
    ArithmeticError,
    LookupError,
    AttributeError,
    RuntimeError,
    OSError,
    MemoryError,
)


class ParallelExecutionError(ReproError):
    """One or more Monte Carlo worker runs failed.

    Unlike a bare ``multiprocessing.Pool`` abort, the completed runs are
    not lost: they are attached as ``completed`` (an
    ``ExperimentResult``) alongside ``failures`` — a tuple of
    ``(run_index, traceback_text)`` pairs, one per failed run.
    """

    def __init__(self, message, failures=(), completed=None):
        super().__init__(message)
        self.failures = tuple(failures)
        self.completed = completed

    def __reduce__(self):
        # The default Exception.__reduce__ only preserves ``args``, so
        # an instance crossing a process boundary (e.g. raised inside a
        # multiprocessing pool and re-raised in the parent) would arrive
        # with ``failures``/``completed`` reset — losing the worker
        # tracebacks exactly when they matter most.
        return (
            type(self),
            (self.args[0] if self.args else "", self.failures,
             self.completed),
        )

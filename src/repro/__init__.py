"""repro — a reproduction of JR-SND (ICDCS 2011).

JR-SND is a jamming-resilient secure neighbor discovery scheme for
single-authority mobile ad hoc networks (MANETs).  This package contains a
full, from-scratch implementation of the scheme and of every substrate it
depends on:

``repro.dsss``
    A chip-level Direct Sequence Spread Spectrum physical layer: spread
    codes, spreading, correlation de-spreading, a superposition channel,
    and the sliding-window synchronizer used by the protocol receivers.

``repro.ecc``
    Error-correcting codes: a complete Reed-Solomon codec over GF(2^8)
    (with errors-and-erasures decoding), a repetition code, and the
    rate-``mu`` codec wrapper used by the JR-SND messages.

``repro.crypto``
    A simulated identity-based cryptography substrate (pairwise
    non-interactive keys, ID-based signatures, MACs, session spread-code
    derivation) together with the paper's crypto timing model.

``repro.predistribution``
    The random spread-code pre-distribution scheme of Section V-A, its
    closed-form analysis (Eqs. 1 and 2) and the gamma-counter local
    revocation defense of Section V-D.

``repro.sim``
    A discrete-event network simulator: event kernel, 2-D field geometry,
    mobility models and a code-addressed radio medium.

``repro.adversary``
    Node-compromise, random/reactive jammer, and DoS attacker models.

``repro.core``
    The paper's contribution: the D-NDP and M-NDP protocols and the
    combined JR-SND scheme, plus the timing model of Section V-B.

``repro.analysis``
    Closed forms for Theorems 1-4.

``repro.experiments``
    The Monte Carlo harness that regenerates every figure in the paper's
    evaluation section.

``repro.obs``
    Metrics and tracing: a process-installable registry of counters,
    gauges, timers and histograms that every layer above reports into,
    and JSON-round-trippable snapshots for machine-readable telemetry.

Quickstart::

    from repro import JRSNDConfig, NetworkExperiment

    config = JRSNDConfig()          # Table I defaults
    exp = NetworkExperiment(config, seed=7)
    result = exp.run()
    print(result.discovery_probability("jrsnd"))
"""

from repro.core.config import JRSNDConfig, default_config
from repro.core.jrsnd import JRSNDNode, JRSNDOutcome
from repro.experiments.runner import ExperimentResult, NetworkExperiment
from repro.obs import MetricsRegistry, MetricsSnapshot
from repro.version import __version__

__all__ = [
    "JRSNDConfig",
    "default_config",
    "JRSNDNode",
    "JRSNDOutcome",
    "NetworkExperiment",
    "ExperimentResult",
    "MetricsRegistry",
    "MetricsSnapshot",
    "__version__",
]

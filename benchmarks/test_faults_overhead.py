"""Fault-hook overhead bench: no plan vs the disabled NullFaultPlan.

Every ``RadioMedium`` delivery consults the installed fault hook, and
the default is a disabled :class:`~repro.faults.NullFaultPlan` whose
``enabled`` flag short-circuits the whole injection path.  The unit
tests pin that the disabled plan is *bit-identical* to no plan at all;
this bench gates that it is also (essentially) *free* — the point is
catching a hot-loop regression (e.g. consulting injectors on the
disabled path), not micro-timing.

Environment knobs (on top of ``conftest``'s):

- ``REPRO_BENCH_SMOKE``  set to 1 for CI smoke mode: fewer rounds and
  a relaxed overhead ceiling for noisy shared runners.
"""

import os
import time

from repro.core.config import JRSNDConfig
from repro.experiments.reporting import format_series_table
from repro.experiments.scenarios import build_event_network
from repro.faults import NullFaultPlan

CONFIG = JRSNDConfig(
    n_nodes=8,
    codes_per_node=3,
    share_count=3,
    n_compromised=0,
    field_width=500.0,
    field_height=500.0,
    tx_range=300.0,
    rho=1e-9,
)


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("", "0")


def _time_soak(seed: int, rounds: int, faults) -> float:
    start = time.perf_counter()
    for index in range(rounds):
        net = build_event_network(CONFIG, seed=seed + index, faults=faults)
        for node in net.nodes:
            node.initiate_dndp()
        net.simulator.run(until=30.0)
    return time.perf_counter() - start


def test_null_fault_plan_overhead(benchmark, seed):
    rounds = 2 if _smoke() else 6
    repeats = 2 if _smoke() else 3
    ceiling = 1.25 if _smoke() else 1.05

    def measure():
        # Warm-up evens out allocator and cache effects; best-of-N
        # minima suppress scheduler noise, which at this workload size
        # is far larger than the overhead being gated.
        _time_soak(seed, 1, faults=None)
        plain = min(
            _time_soak(seed, rounds, faults=None)
            for _ in range(repeats)
        )
        nulled = min(
            _time_soak(seed, rounds, faults=NullFaultPlan())
            for _ in range(repeats)
        )
        return plain, nulled

    plain, nulled = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = nulled / plain
    print()
    print(
        format_series_table(
            [{
                "rounds": float(rounds),
                "no_plan_s": plain,
                "null_plan_s": nulled,
                "ratio": ratio,
            }],
            title="Fault-hook overhead (NullFaultPlan / no plan)",
        )
    )
    assert ratio < ceiling, (
        f"disabled fault plan {ratio:.2f}x slower than no plan "
        f"(ceiling {ceiling}x)"
    )

"""Ablation: the revocation threshold gamma vs DoS damage (Section V-D).

The paper bounds the wasted verifications per compromised code at
``(l - 1) * gamma`` for the other holders; with every holder counted as
a victim the per-code cap is ``holders * gamma``, since each holder
revokes on its gamma-th invalid request.  This bench sweeps gamma and
confirms the exact linear bound and the flood saturation.
"""

from repro.adversary.compromise import CompromiseModel
from repro.adversary.dos import DoSAttacker
from repro.experiments.reporting import format_series_table
from repro.predistribution.authority import PreDistributor
from repro.predistribution.revocation import RevocationList
from repro.utils.rng import derive_rng

GAMMAS = (1, 2, 5, 10, 20)


def test_revocation_gamma_sweep(benchmark, seed):
    n, m, l, q = 600, 12, 10, 6
    flood = 200

    def run_sweep():
        rng = derive_rng(seed, "ablation-revocation")
        distributor = PreDistributor(n, m, l)
        assignment = distributor.assign(rng)
        compromise = CompromiseModel(assignment).compromise_random(q, rng)
        attacker = DoSAttacker(sorted(compromise.codes))
        holders = {
            code: sorted(assignment.holders_of(code))
            for code in attacker.codes
        }
        rows = []
        for gamma in GAMMAS:
            victims = {
                node: RevocationList(codes, gamma)
                for node, codes in enumerate(assignment.node_codes)
            }
            impact = attacker.flood(
                victims, holders, flood, derive_rng(seed, f"f{gamma}")
            )
            rows.append(
                {
                    "gamma": float(gamma),
                    "verifications": float(impact.verifications),
                    "worst_code": float(impact.worst_code_verifications()),
                    "bound_l_gamma": float(l * gamma),
                    "revocations": float(impact.revocations),
                }
            )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(
        format_series_table(
            rows,
            title=f"Revocation ablation: {flood} fakes per code, "
                  f"l = {l}",
        )
    )
    for row in rows:
        # The Section V-D bound holds per code, exactly: each holder
        # revokes on its gamma-th invalid request.
        assert row["worst_code"] <= row["bound_l_gamma"]
    # Damage grows linearly with gamma while the flood saturates it.
    totals = [row["verifications"] for row in rows]
    assert all(a < b for a, b in zip(totals, totals[1:]))

"""Ablation: the multi-antenna extension (the paper's future work).

With ``k`` transmit antennas broadcasting distinct codes in parallel,
the code cycle shrinks from ``m`` to ``ceil(m / k)`` slots, shrinking
the buffer, the processing window, and hence the dominant D-NDP latency
term by about ``1/k`` — while the discovery probability is untouched
(the jamming model depends only on code knowledge).  Both the
generalized closed form and the event-driven simulator are measured.
"""

import numpy as np

from repro.analysis.dndp_theory import dndp_expected_latency_antennas
from repro.core.config import JRSNDConfig, default_config
from repro.experiments.reporting import format_series_table
from repro.experiments.scenarios import build_event_network

ANTENNAS = (1, 2, 4, 8)


def _event_latency(k, seeds=range(6)):
    totals = []
    for seed in seeds:
        config = JRSNDConfig(
            n_nodes=2, codes_per_node=8, share_count=2, n_compromised=0,
            field_width=100.0, field_height=100.0, tx_range=300.0,
            rho=1e-9, tx_antennas=k,
        )
        net = build_event_network(config, seed=seed)
        net.nodes[0].initiate_dndp()
        net.simulator.run(until=20.0)
        session = net.nodes[0].session_with(net.nodes[1].node_id)
        if session is not None and session.established_at is not None:
            totals.append(session.established_at)
    return float(np.mean(totals)) if totals else float("nan")


def test_antenna_latency_scaling(benchmark, seed):
    def run_sweep():
        rows = []
        for k in ANTENNAS:
            config = default_config().replace(tx_antennas=k)
            rows.append(
                {
                    "tx_antennas": float(k),
                    "t_dndp_theory": dndp_expected_latency_antennas(config),
                    "t_event_sim": _event_latency(k),
                }
            )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(
        format_series_table(
            rows,
            title="Antenna ablation: D-NDP latency vs transmit antennas "
                  "(theory at Table I scale, event sim at toy scale)",
        )
    )
    theory = [row["t_dndp_theory"] for row in rows]
    measured = [row["t_event_sim"] for row in rows]
    assert all(a > b for a, b in zip(theory, theory[1:]))
    assert theory[0] / theory[-1] > 3.0  # ~1/k on the dominant term
    assert all(a > b for a, b in zip(measured, measured[1:]))
"""Table I validation: defaults, analysis-vs-simulation agreement.

Table I itself is an input table, so the "reproduction" is a check that
the Monte Carlo simulator at those parameters matches the closed forms
the paper derives from them (Theorem 1 bounds and the Eq. 1/2
quantities), plus a throughput benchmark for one 2000-node snapshot.
"""

from repro.adversary.jammer import JammerStrategy
from repro.analysis.dndp_theory import dndp_probability_bounds
from repro.core.config import default_config
from repro.experiments.reporting import format_series_table
from repro.experiments.runner import NetworkExperiment
from repro.predistribution.analysis import (
    code_compromise_probability,
    expected_shared_codes,
    probability_at_least_one_shared,
)


def test_table1_defaults_consistency(benchmark, runs, seed):
    config = default_config()

    def run_experiment():
        reactive = NetworkExperiment(
            config, seed=seed, strategy=JammerStrategy.REACTIVE
        ).run(runs)
        random_ = NetworkExperiment(
            config, seed=seed, strategy=JammerStrategy.RANDOM
        ).run(runs)
        return reactive, random_

    reactive, random_ = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    low, high = dndp_probability_bounds(config, config.n_compromised)
    rows = [
        {
            "quantity": 1.0,
            "alpha_eq2": code_compromise_probability(
                config.n_nodes, config.share_count, config.n_compromised
            ),
            "mean_shared": expected_shared_codes(
                config.n_nodes, config.codes_per_node, config.share_count
            ),
            "p_share": probability_at_least_one_shared(
                config.n_nodes, config.codes_per_node, config.share_count
            ),
        }
    ]
    print()
    print(format_series_table(rows, title="Table I derived quantities"))
    print()
    print(
        format_series_table(
            [
                {
                    "p_dndp_reactive": reactive.discovery_probability("dndp"),
                    "theory_P_minus": low,
                    "p_dndp_random": random_.discovery_probability("dndp"),
                    "theory_P_plus": high,
                    "p_jrsnd": reactive.discovery_probability("jrsnd"),
                }
            ],
            title="Simulation vs Theorem 1 at Table I defaults",
        )
    )

    # Shape assertions: sim brackets and tracks the bounds.
    assert abs(reactive.discovery_probability("dndp") - low) < 0.05
    assert abs(random_.discovery_probability("dndp") - high) < 0.05
    assert reactive.discovery_probability("jrsnd") > 0.9

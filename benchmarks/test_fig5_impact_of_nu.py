"""Figure 5: impact of the M-NDP hop budget ``nu``.

(a) P_M and combined P vs nu at heavy compromise (q = 100, l = 40,
    giving P_D ~ 0.2 as in the paper); the paper's curve rises with nu
    and exceeds 0.9 for nu >= 6.
(b) T_M vs nu (Theorem 4); about 4 s at nu = 6.

Two link models are reported (see EXPERIMENTS.md): the faithful
code-level model saturates by nu ~ 3 because relay-level correlations
make logical paths short; the independent-link model — evidently what
the authors' C++ simulator sampled — reproduces their plotted
nu-dependence.
"""

from repro.experiments.figures import figure5_sweep
from repro.experiments.reporting import format_series_table

NU_VALUES = (1, 2, 3, 4, 5, 6, 7, 8)


def test_figure5_impact_of_nu(benchmark, runs, seed):
    def sweep_both():
        independent = figure5_sweep(
            nu_values=NU_VALUES, q=100, runs=runs, seed=seed,
            link_model="independent",
        )
        faithful = figure5_sweep(
            nu_values=NU_VALUES, q=100, runs=runs, seed=seed,
            link_model="codes",
        )
        return independent, faithful

    independent, faithful = benchmark.pedantic(
        sweep_both, rounds=1, iterations=1
    )
    print()
    print(
        format_series_table(
            independent,
            columns=["nu", "p_dndp", "p_mndp", "p_jrsnd"],
            title="Figure 5(a): probability vs nu — independent-link "
                  "model (matches the paper's plotted curve)",
        )
    )
    print()
    print(
        format_series_table(
            faithful,
            columns=["nu", "p_dndp", "p_mndp", "p_jrsnd"],
            title="Figure 5(a)': same sweep, faithful code-level model "
                  "(correlations shorten logical paths)",
        )
    )
    print()
    print(
        format_series_table(
            independent,
            columns=["nu", "t_mndp"],
            title="Figure 5(b): M-NDP latency vs nu (Theorem 4, seconds)",
        )
    )

    by_nu = {row["nu"]: row for row in independent}
    # P_D ~ 0.2 regardless of nu (plotted for reference in the paper).
    for row in independent:
        assert 0.1 < row["p_dndp"] < 0.35
    # Paper shape: monotone improvement with nu, > 0.9 at nu >= 6.
    p_m = [row["p_mndp"] for row in independent]
    assert all(a <= b + 0.02 for a, b in zip(p_m, p_m[1:]))
    assert by_nu[2.0]["p_jrsnd"] < by_nu[6.0]["p_jrsnd"]
    assert by_nu[6.0]["p_jrsnd"] > 0.9
    # Latency about 4 s at nu = 6 (order-of-magnitude shape).
    assert 2.0 < by_nu[6.0]["t_mndp"] < 8.0
    assert by_nu[8.0]["t_mndp"] > by_nu[1.0]["t_mndp"]
    # Faithful model saturates earlier than the independent one: by
    # nu = 5 it is within two points of its nu = 8 ceiling (isolated
    # nodes, not path length, are what is left).
    faithful_by_nu = {row["nu"]: row for row in faithful}
    assert faithful_by_nu[5.0]["p_mndp"] > (
        faithful_by_nu[8.0]["p_mndp"] - 0.02
    )

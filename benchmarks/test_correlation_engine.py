"""Acquisition hot-path bench: batched engine vs the naive reference.

Times a full sliding-window scan at the paper's physical-layer defaults
(N = 512 chips, m = 4 codes) over a buffer whose only message sits at
the last window position, so every backend walks the entire buffer.
Records the speedup of the batched engine (FFT cross-correlation at
this N) over the per-position naive reference and asserts the 20x
target, plus result identity between the two.

Environment knobs (on top of ``conftest``'s):

- ``REPRO_BENCH_SMOKE``  set to 1 for CI smoke mode: a shorter buffer
  and a relaxed 5x speedup floor, to stay robust on noisy shared
  runners.
"""

import os
import time

import numpy as np

from repro.dsss.channel import ChipChannel
from repro.dsss.spread_code import SpreadCode
from repro.dsss.synchronizer import SlidingWindowSynchronizer
from repro.utils.rng import derive_rng

CODE_LENGTH = 512
N_CODES = 4
MESSAGE_BITS = 4


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("", "0")


def _make_buffer(seed: int, positions: int):
    rng = derive_rng(seed, "engine-bench")
    codes = [
        SpreadCode.random(CODE_LENGTH, rng, code_id=i)
        for i in range(N_CODES)
    ]
    bits = rng.integers(0, 2, size=MESSAGE_BITS, dtype=np.int8)
    channel = ChipChannel(noise_std=0.1)
    # The message sits at the final window position: the scan must walk
    # (and pay for) every earlier position before locking.
    channel.add_message(bits, codes[0], offset=positions - 1)
    return codes, channel.render(rng=rng)


def _scan_time(codes, buffer, backend: str):
    sync = SlidingWindowSynchronizer(
        codes, tau=0.15, message_bits=MESSAGE_BITS, backend=backend
    )
    start = time.perf_counter()
    result = sync.scan(buffer)
    return time.perf_counter() - start, result


def test_batched_speedup_over_naive(benchmark, seed):
    positions = 4_000 if _smoke() else 20_000
    target = 5.0 if _smoke() else 20.0
    codes, buffer = _make_buffer(seed, positions)

    def compare():
        naive_t, naive_r = _scan_time(codes, buffer, "naive")
        batched_t, batched_r = _scan_time(codes, buffer, "batched")
        return naive_t, batched_t, naive_r, batched_r

    naive_t, batched_t, naive_r, batched_r = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    speedup = naive_t / batched_t
    benchmark.extra_info["positions"] = positions
    benchmark.extra_info["naive_seconds"] = round(naive_t, 4)
    benchmark.extra_info["batched_seconds"] = round(batched_t, 4)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    print(
        f"\nN={CODE_LENGTH} m={N_CODES} positions={positions}: "
        f"naive {naive_t:.3f}s, batched {batched_t:.3f}s "
        f"-> {speedup:.1f}x"
    )
    # Same lock, same bits, same work accounting — only faster.
    assert batched_r == naive_r
    assert batched_r is not None
    assert batched_r.position == positions - 1
    assert speedup >= target, (
        f"batched engine only {speedup:.1f}x faster than naive "
        f"(target {target:.0f}x)"
    )

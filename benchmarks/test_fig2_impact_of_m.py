"""Figure 2: impact of the number of preloaded codes ``m``.

(a) Discovery probability of D-NDP / M-NDP / JR-SND vs ``m``
    (reactive jamming, Table I otherwise).
(b) Latency vs ``m``: Theorem 2's T_D grows quadratically, crosses
    Theorem 4's T_M near m ~ 60, and JR-SND stays under 2 s at m = 100.
"""

from repro.experiments.figures import figure2_sweep
from repro.experiments.reporting import format_series_table

M_VALUES = (20, 40, 60, 80, 100, 140, 200)


def test_figure2_impact_of_m(benchmark, runs, seed):
    rows = benchmark.pedantic(
        figure2_sweep,
        kwargs={"m_values": M_VALUES, "runs": runs, "seed": seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_series_table(
            rows,
            columns=["m", "p_dndp", "p_mndp", "p_jrsnd"],
            title="Figure 2(a): discovery probability vs m "
                  "(reactive jamming)",
        )
    )
    print()
    print(
        format_series_table(
            rows,
            columns=["m", "t_dndp", "t_mndp", "t_jrsnd"],
            title="Figure 2(b): latency vs m (seconds, Theorems 2/4)",
        )
    )

    by_m = {row["m"]: row for row in rows}
    # (a) probability grows with m for every curve.
    assert by_m[200]["p_dndp"] > by_m[20]["p_dndp"]
    assert by_m[200]["p_jrsnd"] >= by_m[20]["p_jrsnd"]
    # (b) T_D quadratic; crossover with T_M between m = 40 and m = 80.
    assert by_m[200]["t_dndp"] / by_m[100]["t_dndp"] > 3.5
    assert by_m[40]["t_dndp"] < by_m[40]["t_mndp"]
    assert by_m[80]["t_dndp"] > by_m[80]["t_mndp"]
    # Headline: under 2 s at the default m = 100.
    assert by_m[100]["t_jrsnd"] < 2.0

"""Shared benchmark configuration.

Environment knobs:

- ``REPRO_BENCH_RUNS``   Monte Carlo runs per sweep point (default 5;
  the paper averages 100 — set it for a full reproduction).
- ``REPRO_BENCH_SEED``   root seed (default 2011).
"""

import os

import pytest


def bench_runs() -> int:
    return int(os.environ.get("REPRO_BENCH_RUNS", "5"))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "2011"))


@pytest.fixture
def runs() -> int:
    return bench_runs()


@pytest.fixture
def seed() -> int:
    return bench_seed()

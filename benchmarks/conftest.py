"""Shared benchmark configuration.

Environment knobs:

- ``REPRO_BENCH_RUNS``   Monte Carlo runs per sweep point (default 5;
  the paper averages 100 — set it for a full reproduction).
- ``REPRO_BENCH_SEED``   root seed (default 2011).

Command-line knobs:

- ``--bench-json PATH``  write a machine-readable JSON record of every
  benchmark that called the ``bench_record`` fixture (timings, speedup
  ratios, workload sizes) — CI uploads it as an artifact so perf
  regressions are diffable across commits.
"""

import json
import os
from typing import Any, Dict

import pytest

_BENCH_RECORDS: Dict[str, Dict[str, Any]] = {}


def bench_runs() -> int:
    return int(os.environ.get("REPRO_BENCH_RUNS", "5"))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "2011"))


@pytest.fixture
def runs() -> int:
    return bench_runs()


@pytest.fixture
def seed() -> int:
    return bench_seed()


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        default=None,
        metavar="PATH",
        help="write recorded benchmark timings/speedups as JSON",
    )


@pytest.fixture
def bench_record():
    """Record one benchmark's structured results for ``--bench-json``."""

    def record(name: str, **fields: Any) -> None:
        _BENCH_RECORDS[name] = fields

    return record


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json", default=None)
    if path and _BENCH_RECORDS:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(_BENCH_RECORDS, handle, indent=2, sort_keys=True)
            handle.write("\n")

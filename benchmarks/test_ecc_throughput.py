"""ECC hot-path bench: vectorized GF(256) kernels vs the naive loops.

Two gates:

1. **Jammed-HELLO decode.**  A batch of HELLO-sized Reed-Solomon words
   (the per-pair hot shape: k = 3 data symbols, 3 parity symbols at the
   Table I ``mu = 1``) corrupted with random in-capability
   errors+erasures, decoded by both backends.  Asserts bit-identical
   outputs and a 10x speedup of the vectorized backend (relaxed in
   smoke mode).
2. **End-to-end runner.**  ``NetworkExperiment`` at the Table I
   defaults under ``compute_backend="reference"`` vs ``"vectorized"``:
   identical ``RunResult`` values and a 2x wall-clock improvement
   (relaxed in smoke mode, which also shrinks the field).

Results land in ``--bench-json`` (see ``conftest``) for CI artifacts.

Environment knobs (on top of ``conftest``'s):

- ``REPRO_BENCH_SMOKE``  set to 1 for CI smoke mode: smaller batches
  and relaxed speedup floors, to stay robust on noisy shared runners.
"""

import os
import time

import numpy as np

from repro.core.config import JRSNDConfig
from repro.ecc.reed_solomon import ReedSolomonCodec
from repro.experiments.runner import NetworkExperiment

HELLO_DATA_SYMBOLS = 3   # 21 plain bits -> 3 byte symbols
HELLO_PARITY_SYMBOLS = 3  # ceil(mu * k) at the Table I mu = 1


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("", "0")


def _jammed_hello_batch(seed: int, batch: int):
    """HELLO-sized codewords under the jamming corruption model.

    A jammer destroys correlation blocks, so the receiver sees
    *erasures* (known-bad symbol positions), not silent symbol errors —
    each word gets up to ``n - k`` erased symbols, the erasure-only
    shape the batched decode path is built for.
    """
    rng = np.random.default_rng(seed)
    encoder = ReedSolomonCodec(HELLO_PARITY_SYMBOLS, backend="naive")
    messages = rng.integers(
        0, 256, size=(batch, HELLO_DATA_SYMBOLS), dtype=np.uint8
    ).tolist()
    words = encoder.encode_batch(messages)
    n = HELLO_DATA_SYMBOLS + HELLO_PARITY_SYMBOLS
    erasure_lists = []
    for word in words:
        f = int(rng.integers(0, HELLO_PARITY_SYMBOLS + 1))
        hit = rng.choice(n, size=f, replace=False)
        for position in hit:
            word[int(position)] ^= int(rng.integers(1, 256))
        erasure_lists.append([int(p) for p in hit])
    return messages, words, erasure_lists


def _decode_time(backend: str, words, erasure_lists):
    codec = ReedSolomonCodec(HELLO_PARITY_SYMBOLS, backend=backend)
    copies = [list(word) for word in words]
    start = time.perf_counter()
    decoded = codec.decode_batch(copies, erasure_lists)
    return time.perf_counter() - start, decoded


def test_vectorized_rs_speedup_on_jammed_hellos(
    benchmark, seed, bench_record
):
    batch = 1_500 if _smoke() else 4_000
    target = 4.0 if _smoke() else 10.0
    messages, words, erasure_lists = _jammed_hello_batch(seed, batch)

    def compare():
        # Warm both backends once (table/generator construction, lru
        # caches), then score the best of three timed passes each.
        _decode_time("naive", words[:64], erasure_lists[:64])
        _decode_time("vectorized", words[:64], erasure_lists[:64])
        naive_t, naive_d = min(
            (_decode_time("naive", words, erasure_lists)
             for _ in range(3)),
            key=lambda pair: pair[0],
        )
        vec_t, vec_d = min(
            (_decode_time("vectorized", words, erasure_lists)
             for _ in range(3)),
            key=lambda pair: pair[0],
        )
        return naive_t, vec_t, naive_d, vec_d

    naive_t, vec_t, naive_d, vec_d = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    speedup = naive_t / vec_t
    benchmark.extra_info["batch"] = batch
    benchmark.extra_info["speedup"] = round(speedup, 1)
    bench_record(
        "rs_jammed_hello_decode",
        batch=batch,
        naive_seconds=round(naive_t, 4),
        vectorized_seconds=round(vec_t, 4),
        speedup=round(speedup, 2),
        target=target,
    )
    print(
        f"\nB={batch} n=({HELLO_DATA_SYMBOLS}+{HELLO_PARITY_SYMBOLS}): "
        f"naive {naive_t:.3f}s, vectorized {vec_t:.3f}s "
        f"-> {speedup:.1f}x"
    )
    # Same decoded symbols — only faster.
    assert vec_d == naive_d
    assert vec_d == messages
    assert speedup >= target, (
        f"vectorized RS only {speedup:.1f}x faster than naive "
        f"(target {target:.0f}x)"
    )


def test_runner_speedup_over_reference(benchmark, seed, bench_record):
    if _smoke():
        config = JRSNDConfig(
            n_nodes=600, n_compromised=10, share_count=30
        )
        runs, target = 1, 1.2
    else:
        config = JRSNDConfig()
        runs, target = 2, 2.0

    def timed(backend):
        experiment = NetworkExperiment(
            config, seed=seed, compute_backend=backend
        )
        start = time.perf_counter()
        result = experiment.run(runs)
        return time.perf_counter() - start, result

    def compare():
        # Best of two passes per backend to ride out scheduler noise
        # (the identical seed makes every pass the same workload).
        ref_t, ref_result = min(
            (timed("reference") for _ in range(2)),
            key=lambda pair: pair[0],
        )
        vec_t, vec_result = min(
            (timed("vectorized") for _ in range(2)),
            key=lambda pair: pair[0],
        )
        return ref_t, vec_t, ref_result, vec_result

    ref_t, vec_t, ref_result, vec_result = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    speedup = ref_t / vec_t
    benchmark.extra_info["runs"] = runs
    benchmark.extra_info["speedup"] = round(speedup, 2)
    bench_record(
        "experiment_runner_table1",
        n_nodes=config.n_nodes,
        runs=runs,
        reference_seconds=round(ref_t, 4),
        vectorized_seconds=round(vec_t, 4),
        speedup=round(speedup, 2),
        target=target,
    )
    print(
        f"\nn={config.n_nodes} runs={runs}: reference {ref_t:.3f}s, "
        f"vectorized {vec_t:.3f}s -> {speedup:.2f}x"
    )
    # Identical snapshots — the backends share every rng draw.
    assert vec_result == ref_result
    assert speedup >= target, (
        f"vectorized runner only {speedup:.2f}x faster than reference "
        f"(target {target:.1f}x)"
    )

"""Ablation: GPS false-positive filtering in M-NDP (Section V-C).

Without GPS, a node answers every M-NDP request from an unknown source:
it derives a key (t_key), signs a response (t_sig), and beacons a HELLO
for the full tau_h — all wasted when the source is out of range (the
confirmation exchange prevents the false positive either way).  With
the source position embedded, out-of-range requests are dropped after
signature verification.  This bench measures the wasted responder work
saved on a line topology where most nu-hop "neighbors" are physically
unreachable.
"""

from repro.core.config import JRSNDConfig
from repro.experiments.reporting import format_series_table
from repro.experiments.scenarios import build_event_network


def _chain_network(use_gps, n=6, spacing=250.0, seed=3):
    """Nodes on a line, 250 m apart, 300 m range: only adjacent pairs
    are physical neighbors, but nu-hop requests reach much further.
    Seed 3 makes every adjacent pair share a code, so the D-NDP chain
    forms completely and the M-NDP flood exercises the GPS filter."""
    config = JRSNDConfig(
        n_nodes=n,
        codes_per_node=3,
        share_count=4,
        n_compromised=0,
        field_width=spacing * n + 100.0,
        field_height=50.0,
        tx_range=300.0,
        rho=1e-9,
        nu=4,
        use_gps=use_gps,
    )
    positions = [(50.0 + i * spacing, 25.0) for i in range(n)]
    return build_event_network(config, seed=seed, positions=positions)


def _run(net):
    for node in net.nodes:
        node.initiate_dndp()
    net.simulator.run(until=40.0)
    start = net.simulator.now
    for node in net.nodes:
        node.initiate_mndp()
    net.simulator.run(until=start + 400.0)
    return net


def test_gps_filter_saves_responder_work(benchmark):
    def run_both():
        rows = []
        for use_gps in (False, True):
            net = _run(_chain_network(use_gps))
            counters = net.trace.counters()
            rows.append(
                {
                    "gps": float(use_gps),
                    "logical_pairs": float(len(net.logical_pairs())),
                    "physical_pairs": float(
                        len(net.node_pairs_in_range())
                    ),
                    "filtered": float(
                        counters.get("mndp.gps_filtered", 0)
                    ),
                    "verifications": float(
                        counters.get("mndp.verifications", 0)
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(
        format_series_table(
            rows,
            title="GPS ablation on a 6-node chain (nu = 4): wasted "
                  "responder work with and without position filtering",
        )
    )
    without, with_gps = rows
    # Same correctness either way: logical == physical, no falses.
    assert without["logical_pairs"] == without["physical_pairs"]
    assert with_gps["logical_pairs"] == with_gps["physical_pairs"]
    # The filter fires for the out-of-range sources...
    assert with_gps["filtered"] > 0
    assert without["filtered"] == 0
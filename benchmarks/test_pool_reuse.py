"""Persistent-pool bench: warm workers vs a fresh pool per shard.

The campaign workload this PR targets: hundreds of *small* shards,
where the chipless PHY has made the run bodies cheap enough that the
per-shard ``multiprocessing.Pool`` spin-up (fork, initializer rebuild,
cold artifact caches in every worker, teardown) dominates wall clock.
The persistent :class:`~repro.experiments.pool.WorkerPool` pays those
costs once per campaign instead of once per shard, and overlaps each
shard's SQLite commit with the next shard's execution.

This bench runs the same many-small-shard campaign through both
engines, gates the shard-throughput ratio, and records the trajectory
in the root-level ``BENCH_pool.json`` artifact.  Both campaigns must
also produce the same canonical digest — a perf engine that changed
the bytes would be a correctness bug, not a speedup.

Environment knobs (on top of ``conftest``'s):

- ``REPRO_BENCH_SMOKE``  set to 1 for CI smoke mode: a smaller
  workload and a relaxed floor for noisy shared runners.
"""

import json
import os
import time

from repro.campaigns import CampaignSpec, run_campaign
from repro.experiments.pool import SupervisionPolicy
from repro.experiments.reporting import format_series_table
from repro.obs import MetricsRegistry, installed
from repro.obs import names as _names
from repro.utils.fileio import atomic_write_text

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_pool.json",
)

#: The pool must win by this much on the full workload (CI smoke uses
#: a relaxed floor: shared runners fork slowly and noisily).
FULL_FLOOR = 3.0
SMOKE_FLOOR = 1.2

#: Explicit worker count: sizing from this machine's affinity mask can
#: yield 1 worker (single-CPU CI), which would silently bypass both
#: engines' multiprocess paths and benchmark nothing.
WORKERS = 2


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("", "0")


def _bench_spec(runs_per_point: int, seed: int) -> CampaignSpec:
    # runs_per_shard=2 keeps every shard on the true multiprocess
    # path: a 1-run shard would collapse run_parallel's per-shard
    # baseline to the inline single-worker fast path and measure
    # nothing.
    return CampaignSpec(
        name="poolbench",
        seed=seed,
        runs_per_point=runs_per_point,
        runs_per_shard=2,
        base="tiny-chipless",
        grid={"n_compromised": [5, 10]},
    )


def _time_campaign(spec, store_path, use_pool, supervision=None):
    """``(elapsed, status, pool counters)`` for one full campaign."""
    registry = MetricsRegistry()
    start = time.perf_counter()
    with installed(registry):
        status = run_campaign(
            spec,
            store_path,
            processes=WORKERS,
            git_revision="bench",
            use_pool=use_pool,
            supervision=supervision,
        )
    elapsed = time.perf_counter() - start
    counters = registry.snapshot().counters
    return elapsed, status, {
        name: count
        for name, count in counters.items()
        if name.startswith("pool.")
    }


def test_persistent_pool_shard_throughput(
    benchmark, seed, bench_record, tmp_path
):
    runs_per_point = 8 if _smoke() else 48
    floor = SMOKE_FLOOR if _smoke() else FULL_FLOOR
    spec = _bench_spec(runs_per_point, seed)

    def measure():
        # Warm-up outside the timed comparison: first-campaign import
        # and artifact costs hit whichever engine runs first.
        warm = _bench_spec(2, seed)
        _time_campaign(
            warm, str(tmp_path / "warm.sqlite"), use_pool=False
        )
        baseline_t, baseline_status, _ = _time_campaign(
            spec, str(tmp_path / "per-shard.sqlite"), use_pool=False
        )
        pooled_t, pooled_status, pool_counters = _time_campaign(
            spec, str(tmp_path / "persistent.sqlite"), use_pool=True
        )
        return (
            baseline_t, baseline_status,
            pooled_t, pooled_status, pool_counters,
        )

    (
        baseline_t, baseline_status,
        pooled_t, pooled_status, pool_counters,
    ) = benchmark.pedantic(measure, rounds=1, iterations=1)

    assert baseline_status.complete and pooled_status.complete
    # Same bytes from both engines, or the comparison is meaningless.
    assert (
        pooled_status.canonical_digest
        == baseline_status.canonical_digest
    )
    # The pool must actually have been exercised and stayed warm: one
    # cold configure per point, every later shard a cache hit.
    points = len(spec.points())
    shards = pooled_status.shards_total
    assert pool_counters[_names.POOL_WORKERS_SPAWNED] == WORKERS
    assert pool_counters[_names.POOL_WARM_MISSES] == points
    assert pool_counters[_names.POOL_WARM_HITS] == shards - points

    speedup = baseline_t / pooled_t
    print()
    print(format_series_table(
        [{
            "shards": float(shards),
            "runs": float(pooled_status.runs_executed),
            "per_shard_pool_s": baseline_t,
            "persistent_s": pooled_t,
            "speedup": speedup,
        }],
        title="Campaign engines: fresh pool per shard vs warm pool",
    ))
    record = {
        "workload": {
            "base": spec.base,
            "grid": {"n_compromised": [5, 10]},
            "runs_per_point": runs_per_point,
            "runs_per_shard": 2,
            "shards": shards,
            "runs_executed": pooled_status.runs_executed,
            "workers": WORKERS,
        },
        "per_shard_pool_seconds": round(baseline_t, 4),
        "persistent_pool_seconds": round(pooled_t, 4),
        "speedup": round(speedup, 2),
        "per_shard_pool_runs_per_s": round(
            baseline_status.runs_executed / baseline_t, 2
        ),
        "persistent_pool_runs_per_s": round(
            pooled_status.runs_executed / pooled_t, 2
        ),
        "pool_counters": pool_counters,
        "floor": floor,
        "smoke": _smoke(),
    }
    bench_record("pool_reuse", **record)
    atomic_write_text(
        BENCH_JSON, json.dumps(record, indent=2, sort_keys=True)
    )
    assert speedup >= floor, (
        f"persistent pool only {speedup:.2f}x the per-shard-pool "
        f"baseline (floor {floor}x)"
    )


#: Supervision may cost at most this much wall clock.  The only
#: supervision machinery on the fault-free hot path is the soft-timeout
#: sweep (a deadline-polled wait instead of a blocking one); with
#: ``run_timeout=None`` the dispatcher blocks exactly as an
#: unsupervised pool would.  The throughput floor above separately
#: guards the absolute engine speed against the recorded trajectory.
OVERHEAD_CEILING = 1.05
SMOKE_OVERHEAD_CEILING = 1.25


def test_supervision_overhead(benchmark, seed, bench_record, tmp_path):
    runs_per_point = 8 if _smoke() else 32
    ceiling = (
        SMOKE_OVERHEAD_CEILING if _smoke() else OVERHEAD_CEILING
    )
    spec = _bench_spec(runs_per_point, seed + 1)
    blocking = SupervisionPolicy()  # run_timeout=None: blocking waits
    polling = SupervisionPolicy(run_timeout=60.0)  # never fires

    def measure():
        warm = _bench_spec(2, seed + 1)
        _time_campaign(
            warm, str(tmp_path / "warm.sqlite"), use_pool=True,
            supervision=blocking,
        )
        base_t, base_status, _ = _time_campaign(
            spec, str(tmp_path / "blocking.sqlite"), use_pool=True,
            supervision=blocking,
        )
        timed_t, timed_status, _ = _time_campaign(
            spec, str(tmp_path / "polling.sqlite"), use_pool=True,
            supervision=polling,
        )
        return base_t, base_status, timed_t, timed_status

    base_t, base_status, timed_t, timed_status = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    assert base_status.complete and timed_status.complete
    assert (
        timed_status.canonical_digest == base_status.canonical_digest
    )
    overhead = timed_t / base_t
    print()
    print(format_series_table(
        [{
            "blocking_s": base_t,
            "polling_s": timed_t,
            "overhead": overhead,
        }],
        title="Supervision overhead: blocking vs timeout-polled waits",
    ))
    supervision_record = {
        "blocking_seconds": round(base_t, 4),
        "timeout_polled_seconds": round(timed_t, 4),
        "overhead_ratio": round(overhead, 3),
        "ceiling": ceiling,
        "smoke": _smoke(),
    }
    bench_record("supervision_overhead", **supervision_record)
    # Fold into the shared artifact written by the throughput bench.
    try:
        with open(BENCH_JSON) as handle:
            artifact = json.load(handle)
    except (OSError, ValueError):
        artifact = {}
    artifact["supervision_overhead"] = supervision_record
    atomic_write_text(
        BENCH_JSON, json.dumps(artifact, indent=2, sort_keys=True)
    )
    assert overhead <= ceiling, (
        f"supervision (timeout-polled waits) cost {overhead:.3f}x "
        f"the blocking baseline (ceiling {ceiling}x)"
    )

"""Figure 3: impact of the share count ``l`` (a) and network size
``n`` (b) on discovery probability.

Paper shapes: P rises with ``l`` up to about 100 and then declines
slowly (sharing helps until compromise exposure dominates); with ``n``,
D-NDP first rises (alpha falls) then declines (sharing probability
falls), while M-NDP benefits from density and keeps JR-SND high.
"""

from repro.experiments.figures import figure3a_sweep, figure3b_sweep
from repro.experiments.reporting import format_series_table

L_VALUES = (5, 10, 20, 40, 60, 100, 150, 200)
N_VALUES = (500, 1000, 1500, 2000, 3000, 4000)


def test_figure3a_impact_of_l(benchmark, runs, seed):
    rows = benchmark.pedantic(
        figure3a_sweep,
        kwargs={"l_values": L_VALUES, "runs": runs, "seed": seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_series_table(
            rows,
            columns=["l", "p_dndp", "p_mndp", "p_jrsnd"],
            title="Figure 3(a): discovery probability vs l",
        )
    )
    by_l = {row["l"]: row for row in rows}
    # Rising branch.
    assert by_l[100]["p_dndp"] > by_l[5]["p_dndp"]
    assert by_l[40]["p_dndp"] > by_l[10]["p_dndp"]
    # Declining branch after the optimum (~100).
    assert by_l[200]["p_dndp"] < by_l[100]["p_dndp"]


def test_figure3b_impact_of_n(benchmark, runs, seed):
    rows = benchmark.pedantic(
        figure3b_sweep,
        kwargs={"n_values": N_VALUES, "runs": runs, "seed": seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_series_table(
            rows,
            columns=["n", "p_dndp", "p_mndp", "p_jrsnd", "degree"],
            title="Figure 3(b): discovery probability vs n",
        )
    )
    by_n = {row["n"]: row for row in rows}
    # D-NDP: rise (alpha falls with n at fixed q) to a peak around
    # n ~ 1000, then decline as the sharing probability falls.
    assert by_n[1000]["p_dndp"] > by_n[500]["p_dndp"]
    assert by_n[4000]["p_dndp"] < by_n[1000]["p_dndp"]
    assert by_n[4000]["p_dndp"] < by_n[2000]["p_dndp"]
    # Density helps M-NDP: JR-SND stays high at large n.
    assert by_n[4000]["p_jrsnd"] > 0.9

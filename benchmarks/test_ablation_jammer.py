"""Ablation: random vs reactive jamming across the q sweep.

Theorem 1 says the true D-NDP probability lies between the reactive
(P^-) and random (P^+) outcomes; the paper reports reactive as the
worst case and notes reactive always beat random in its simulations.
This bench measures both and checks the ordering plus the bound gap.
"""

from repro.adversary.jammer import JammerStrategy
from repro.analysis.dndp_theory import (
    dndp_lower_bound,
    dndp_upper_bound,
)
from repro.core.config import default_config
from repro.experiments.reporting import format_series_table
from repro.experiments.runner import NetworkExperiment

Q_VALUES = (20, 40, 60, 80)


def test_jammer_strategy_gap(benchmark, runs, seed):
    config0 = default_config()

    def run_sweep():
        rows = []
        for q in Q_VALUES:
            config = config0.replace(n_compromised=q)
            reactive = NetworkExperiment(
                config, seed=seed, strategy=JammerStrategy.REACTIVE
            ).run(runs)
            random_ = NetworkExperiment(
                config, seed=seed, strategy=JammerStrategy.RANDOM
            ).run(runs)
            rows.append(
                {
                    "q": float(q),
                    "p_reactive": reactive.discovery_probability("dndp"),
                    "theory_P_minus": dndp_lower_bound(config, q),
                    "p_random": random_.discovery_probability("dndp"),
                    "theory_P_plus": dndp_upper_bound(config, q),
                }
            )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(
        format_series_table(
            rows, title="Jammer ablation: reactive vs random (D-NDP)"
        )
    )
    for row in rows:
        # Reactive is always at least as damaging as random.
        assert row["p_reactive"] <= row["p_random"] + 0.02
        # Each strategy tracks its closed form.
        assert abs(row["p_reactive"] - row["theory_P_minus"]) < 0.05
        assert abs(row["p_random"] - row["theory_P_plus"]) < 0.05

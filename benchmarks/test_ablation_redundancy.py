"""Ablation: the D-NDP redundancy design (Section V-B).

The paper argues that spreading the CONFIRM/auth messages with *all*
``x`` shared codes defeats the "intelligent attack" in which the jammer
spares HELLOs and concentrates on the later messages.  This bench pits
both designs against that attacker and against plain reactive jamming.
"""

import numpy as np

from repro.adversary.compromise import CompromiseModel
from repro.adversary.jammer import JammerStrategy, JammingModel
from repro.core.config import default_config
from repro.core.dndp import DNDPSampler
from repro.experiments.reporting import format_series_table
from repro.predistribution.authority import PreDistributor
from repro.utils.rng import derive_rng


def _pair_success_rate(sampler, assignment, pairs, rng, redundancy):
    wins = 0
    for a, b in pairs:
        outcome = sampler.sample_pair(
            assignment.shared_codes(a, b), rng, redundancy=redundancy
        )
        wins += outcome.success
    return wins / len(pairs)


def test_redundancy_defeats_intelligent_attack(benchmark, seed):
    # Parameters chosen so pairs typically share several codes
    # (E[x] ~ 3) with moderate per-code compromise, where the
    # redundancy design's advantage is visible.
    config = default_config().replace(
        n_nodes=400, codes_per_node=60, share_count=20, n_compromised=30
    )

    def run_ablation():
        rng = derive_rng(seed, "ablation-redundancy")
        distributor = PreDistributor(
            config.n_nodes, config.codes_per_node, config.share_count
        )
        assignment = distributor.assign(rng)
        compromise = CompromiseModel(assignment).compromise_random(
            config.n_compromised, rng
        )
        pairs = [
            (a, b)
            for a in range(0, config.n_nodes, 2)
            for b in range(a + 1, min(a + 30, config.n_nodes), 3)
        ]
        rows = []
        for strategy in (
            JammerStrategy.REACTIVE,
            JammerStrategy.INTELLIGENT,
        ):
            jamming = JammingModel.from_compromise(
                strategy, compromise, config.z_jamming_signals, config.mu
            )
            sampler = DNDPSampler(config, jamming)
            rows.append(
                {
                    "strategy": float(
                        1 if strategy is JammerStrategy.REACTIVE else 2
                    ),
                    "with_redundancy": _pair_success_rate(
                        sampler, assignment, pairs, rng, True
                    ),
                    "without_redundancy": _pair_success_rate(
                        sampler, assignment, pairs, rng, False
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(
        format_series_table(
            rows,
            title="Redundancy ablation (strategy 1 = reactive, "
                  "2 = intelligent)",
        )
    )
    reactive, intelligent = rows
    # Under plain reactive jamming the designs tie: HELLO dies with the
    # compromised code either way.
    assert abs(
        reactive["with_redundancy"] - reactive["without_redundancy"]
    ) < 0.03
    # Under the intelligent attack the redundancy design is immune
    # (every surviving HELLO code carries its own sub-session), while
    # the single-code strawman loses whenever it picks a compromised
    # code.
    assert intelligent["with_redundancy"] > (
        intelligent["without_redundancy"] + 0.1
    )

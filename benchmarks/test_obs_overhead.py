"""Observability overhead bench: null registry vs full collection.

The ``repro.obs`` default is a :class:`~repro.obs.NullRegistry` whose
``enabled`` flag lets every instrumentation site skip argument
construction, so an uninstrumented experiment should pay (essentially)
nothing for the hooks.  This bench times the same experiment with no
registry installed and with per-run collection enabled, prints the
ratio, and gates it loosely — the point is catching a hot-loop
regression (e.g. a per-iteration ``current()`` call), not micro-timing.

Environment knobs (on top of ``conftest``'s):

- ``REPRO_BENCH_SMOKE``  set to 1 for CI smoke mode: fewer runs and a
  relaxed overhead ceiling for noisy shared runners.
"""

import os
import time

from repro import obs
from repro.core.config import JRSNDConfig
from repro.experiments.reporting import format_series_table
from repro.experiments.runner import NetworkExperiment

CONFIG = JRSNDConfig(
    n_nodes=400,
    codes_per_node=20,
    share_count=15,
    n_compromised=10,
    field_width=2000.0,
    field_height=2000.0,
    tx_range=300.0,
)


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("", "0")


def _time_run(seed: int, runs: int, collect: bool) -> float:
    exp = NetworkExperiment(CONFIG, seed=seed, collect_metrics=collect)
    start = time.perf_counter()
    exp.run(runs)
    return time.perf_counter() - start


def test_null_registry_overhead(benchmark, seed):
    runs = 2 if _smoke() else 6
    ceiling = 2.0 if _smoke() else 1.5

    def measure():
        # Warm-up evens out allocator and cache effects.
        _time_run(seed, 1, collect=False)
        plain = _time_run(seed, runs, collect=False)
        instrumented = _time_run(seed, runs, collect=True)
        return plain, instrumented

    plain, instrumented = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    ratio = instrumented / plain
    print()
    print(
        format_series_table(
            [{
                "runs": float(runs),
                "plain_s": plain,
                "instrumented_s": instrumented,
                "ratio": ratio,
            }],
            title="Observability overhead (instrumented / plain)",
        )
    )
    # Nothing leaked into the process-global null registry.
    assert obs.current() is obs.NULL
    assert obs.NULL.snapshot().counters == {}
    # Full per-run collection stays within a small constant factor of
    # the uninstrumented path; the no-op path itself is what the unit
    # tests pin (identical RunResults, empty NULL snapshot).
    assert ratio < ceiling, (
        f"instrumented run {ratio:.2f}x slower than plain "
        f"(ceiling {ceiling}x)"
    )

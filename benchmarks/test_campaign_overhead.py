"""Campaign-layer overhead bench: store + checkpointing vs bare sweeps.

A campaign runs the exact same ``run_parallel`` workload as a direct
sweep, plus its bookkeeping: per-shard SQLite commits, metrics
merging/serialization, and the final canonical store rebuild.  That
bookkeeping must stay a small tax on real Monte Carlo work — this
bench gates the ratio and records per-shard throughput in the
root-level ``BENCH_campaign.json`` artifact (written through the same
atomic helper as every other results file).

Environment knobs (on top of ``conftest``'s):

- ``REPRO_BENCH_SMOKE``  set to 1 for CI smoke mode: a relaxed ceiling
  for noisy shared runners.
"""

import json
import os
import time

from repro.campaigns import CampaignSpec, run_campaign
from repro.experiments.parallel import run_parallel
from repro.experiments.reporting import format_series_table
from repro.obs import MetricsRegistry, installed
from repro.utils.fileio import atomic_write_text

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_campaign.json",
)


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("", "0")


def _bench_spec(runs_per_point: int, seed: int) -> CampaignSpec:
    return CampaignSpec(
        name="bench",
        seed=seed,
        runs_per_point=runs_per_point,
        runs_per_shard=max(1, runs_per_point // 2),
        base="tiny",
        grid={"n_compromised": [5, 10]},
    )


def _time_direct(spec: CampaignSpec) -> float:
    """The same workload a campaign executes, without the store."""
    start = time.perf_counter()
    for point in spec.points():
        run_parallel(
            spec.point_config(point),
            seed=point.seed,
            runs=spec.runs_per_point,
            strategy=spec.point_strategy(point),
            mndp_rounds=spec.mndp_rounds,
            link_model=spec.point_link_model(point),
            collect_metrics=spec.collect_metrics,
            compute_backend=spec.compute_backend,
        )
    return time.perf_counter() - start


def _time_campaign(spec: CampaignSpec, store_path: str):
    """``(elapsed, status, shard timer stat)`` for one full campaign."""
    from repro.obs import names as _names

    registry = MetricsRegistry()
    start = time.perf_counter()
    with installed(registry):
        status = run_campaign(spec, store_path, git_revision="bench")
    elapsed = time.perf_counter() - start
    shard_timer = registry.snapshot().timers.get(
        _names.CAMPAIGNS_SHARD_SECONDS
    )
    return elapsed, status, shard_timer


def test_campaign_overhead_and_throughput(
    benchmark, runs, seed, bench_record, tmp_path
):
    # The store's cost is fixed per shard while the Monte Carlo work
    # scales with runs, so the gate needs enough runs per point for a
    # realistic amortization (real campaigns use 100).
    runs_per_point = max(2, min(runs, 8)) if _smoke() else max(runs, 24)
    ceiling = 2.5 if _smoke() else 1.5
    spec = _bench_spec(runs_per_point, seed)

    def measure():
        # Warm-up: pay one-time import/JIT/cache costs outside the
        # timed comparison, then campaign and direct runs of the same
        # workload back to back.
        warm = _bench_spec(1, seed)
        _time_direct(warm)
        campaign_t, status, shard_timer = _time_campaign(
            spec, str(tmp_path / "bench.sqlite")
        )
        direct_t = _time_direct(spec)
        return campaign_t, direct_t, status, shard_timer

    campaign_t, direct_t, status, shard_timer = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert status.complete
    assert shard_timer is not None and shard_timer.count > 0
    ratio = campaign_t / direct_t
    throughput = status.runs_executed / campaign_t
    per_shard = shard_timer.total_seconds / shard_timer.count
    print()
    print(format_series_table(
        [{
            "shards": float(status.shards_total),
            "runs": float(status.runs_executed),
            "campaign_s": campaign_t,
            "direct_s": direct_t,
            "ratio": ratio,
            "runs_per_s": throughput,
        }],
        title="Campaign layer overhead (store + checkpoint vs bare)",
    ))
    record = {
        "workload": {
            "base": spec.base,
            "grid": {"n_compromised": [5, 10]},
            "runs_per_point": runs_per_point,
            "shards": status.shards_total,
            "runs_executed": status.runs_executed,
        },
        "campaign_seconds": round(campaign_t, 4),
        "direct_seconds": round(direct_t, 4),
        "overhead_ratio": round(ratio, 3),
        "per_shard_seconds": round(per_shard, 4),
        "shard_throughput_runs_per_s": round(
            status.runs_executed / shard_timer.total_seconds, 2
        ),
        "throughput_runs_per_s": round(throughput, 2),
        "ceiling": ceiling,
        "smoke": _smoke(),
    }
    bench_record("campaign_overhead", **record)
    atomic_write_text(
        BENCH_JSON, json.dumps(record, indent=2, sort_keys=True)
    )
    assert ratio < ceiling, (
        f"campaign layer {ratio:.2f}x slower than the bare sweep "
        f"(ceiling {ceiling}x)"
    )

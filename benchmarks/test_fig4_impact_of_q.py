"""Figure 4: impact of the number of compromised nodes ``q``.

(a) l = 40 and (b) l = 20, q swept 0..100 under reactive jamming.
Paper shape: every curve decreases in q; at l = 40 JR-SND drops to
about 0.5 around q = 60.
"""

from repro.experiments.figures import figure4_sweep
from repro.experiments.reporting import format_series_table

Q_VALUES = (0, 20, 40, 60, 80, 100)


def test_figure4a_l40(benchmark, runs, seed):
    rows = benchmark.pedantic(
        figure4_sweep,
        kwargs={
            "share_count": 40,
            "q_values": Q_VALUES,
            "runs": runs,
            "seed": seed,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_series_table(
            rows,
            columns=["q", "p_dndp", "p_mndp", "p_jrsnd"],
            title="Figure 4(a): discovery probability vs q at l = 40",
        )
    )
    series = [row["p_jrsnd"] for row in rows]
    assert all(a >= b - 0.03 for a, b in zip(series, series[1:]))
    by_q = {row["q"]: row for row in rows}
    # Paper shape: every curve declines in q, D-NDP fastest; the paper
    # reports JR-SND ~ 0.5 at q = 60, our faithful model reaches that
    # level around q ~ 100 because relay-level correlations make M-NDP
    # recover more (see EXPERIMENTS.md) — the decline and ordering hold.
    assert by_q[0]["p_jrsnd"] > 0.95
    assert by_q[100]["p_dndp"] < 0.3
    assert by_q[100]["p_jrsnd"] < 0.7
    for row in rows:
        assert row["p_jrsnd"] >= row["p_dndp"] - 1e-9


def test_figure4b_l20(benchmark, runs, seed):
    rows = benchmark.pedantic(
        figure4_sweep,
        kwargs={
            "share_count": 20,
            "q_values": Q_VALUES,
            "runs": runs,
            "seed": seed,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_series_table(
            rows,
            columns=["q", "p_dndp", "p_mndp", "p_jrsnd"],
            title="Figure 4(b): discovery probability vs q at l = 20",
        )
    )
    series = [row["p_jrsnd"] for row in rows]
    assert all(a >= b - 0.03 for a, b in zip(series, series[1:]))
    # Smaller l: less exposure per compromised node — at the same q the
    # code-compromise probability alpha is lower, but so is the
    # sharing probability; the q -> 0 endpoint reflects the latter.
    by_q = {row["q"]: row for row in rows}
    assert by_q[0]["p_dndp"] < 0.95
